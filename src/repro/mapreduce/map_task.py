"""The map task process: read, map, sort-buffer spills, merge, commit.

The read and the map function are pipelined (Hadoop streams records),
so they run as concurrent flows and the phase ends when both finish.
Spill and merge I/O follow the :func:`plan_map_spills` plan.

Out-of-memory behaviour: if the configured sort buffer plus the user
code's working set exceeds the container heap, the attempt burns part
of its work and fails -- the penalty that makes infeasible
configurations expensive for the search, exactly as on real clusters.
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.container import Container
from repro.core import parameters as P
from repro.core.configuration import Configuration
from repro.hdfs.block import Block
from repro.mapreduce import task_context as tc
from repro.mapreduce.sortspill import plan_map_spills
from repro.mapreduce.task_context import TaskContext
from repro.monitor.statistics import TaskStats
from repro.sim.events import AllOf, Event

MB = 1024 * 1024


def run_map_task(
    ctx: TaskContext,
    map_index: int,
    block: Block,
    container: Container,
    config: Configuration,
    attempt: int = 1,
    wave: int = -1,
) -> Generator[Event, object, TaskStats]:
    """Execute one map-task attempt; returns its :class:`TaskStats`."""
    sim = ctx.sim
    node = container.node
    profile = ctx.spec.workload
    task_id = ctx.spec.map_task_id(map_index)
    # Flow labels are attempt-scoped (and the container tag kills by the
    # same prefix) so killing one attempt never cancels a concurrent
    # sibling's in-flight flows.
    tag = f"{task_id}.a{attempt}"

    tel = sim.telemetry
    if tel is None or not tel.wants("task"):
        tel = None  # phase spans off: emission sites reduce to a None check

    def _span(name: str, phase_start: float, **detail: object) -> None:
        from repro.telemetry.events import TaskPhaseSpan

        tel.emit(
            TaskPhaseSpan(
                time=sim.now,
                name=name,
                start=phase_start,
                node_id=node.node_id,
                track=f"container-{container.container_id}",
                job_id=task_id.job_id,
                task=str(task_id),
                attempt=attempt,
                detail=detail,
            )
        )

    start = sim.now
    stats = TaskStats(
        task_id=task_id,
        task_type=task_id.task_type,
        node_id=node.node_id,
        attempt=attempt,
        config=config.as_dict(),
        start_time=start,
        end_time=start,
        cpu_seconds=0.0,
        allocated_cores=tc.allocated_cores(
            node.resources.cores_per_vcore, int(config[P.MAP_CPU_VCORES])
        ),
        working_set_bytes=0.0,
        container_memory_bytes=container.memory_bytes,
        wave=wave,
    )

    yield sim.timeout(tc.CONTAINER_LAUNCH_OVERHEAD)

    heap = config.map_heap_bytes
    sort_buffer = config.sort_buffer_bytes
    #: Heap *allocation* -- what the JVM must fit under -Xmx (the sort
    #: buffer array is allocated at full size up front).
    demand = profile.map_fixed_mem_bytes + sort_buffer

    input_bytes = float(block.size_bytes)
    out_bytes, out_records = ctx.dataflow.map_output(map_index)

    # Monitored memory is *resident* pages: an oversized sort buffer is
    # allocated but never touched past the output volume, so the node
    # manager does not see it as used.
    touched = profile.map_fixed_mem_bytes + min(sort_buffer, out_bytes)
    stats.working_set_bytes = tc.CONTAINER_BASE_OVERHEAD_BYTES + min(heap, touched)
    cores_cap = tc.effective_core_cap(
        node.resources.cores_per_vcore,
        int(config[P.MAP_CPU_VCORES]),
        profile.map_cpu_parallelism,
    )

    if demand > heap:
        # OOM: the JVM dies partway through the split.
        burn = 0.5 * (
            profile.map_cpu_fixed_sec + profile.map_cpu_per_mb * input_bytes / MB
        )
        read_ev = ctx.hdfs.read_block(block, node)
        cpu_ev = node.compute(burn, cores_cap, label=f"{tag}.oom")
        yield AllOf(sim, [read_ev, cpu_ev])
        stats.cpu_seconds = burn
        stats.end_time = sim.now
        stats.failed = True
        stats.failure_kind = "oom"
        stats.failure_reason = (
            f"OutOfMemory: sort buffer {sort_buffer // MB} MB + user code "
            f"{profile.map_fixed_mem_bytes // MB} MB exceeds heap {heap // MB} MB"
        )
        return stats

    # ------------------------------------------------------------------
    # Phase 1: read the split while running the map function (pipelined).
    # ------------------------------------------------------------------
    cpu_work = (
        profile.map_cpu_fixed_sec
        + profile.map_cpu_per_mb * input_bytes / MB
        + tc.SORT_CPU_PER_MB * out_bytes / MB
    )
    phase_start = sim.now
    read_ev = ctx.hdfs.read_block(block, node)
    cpu_ev = node.compute(cpu_work, cores_cap, label=f"{tag}.map")
    yield AllOf(sim, [read_ev, cpu_ev])
    stats.cpu_seconds += cpu_work
    if tel is not None:
        _span("map.read", phase_start, input_bytes=input_bytes)
    if ctx.progress is not None:
        ctx.progress.update(task_id, attempt, 0.70)

    # ------------------------------------------------------------------
    # Phase 2: spills and merges.  spill.percent is category-3 (hot
    # swappable): we read it here, mid-task, so an update delivered while
    # the map function was running takes effect.
    # ------------------------------------------------------------------
    plan = plan_map_spills(
        output_records=out_records,
        output_bytes=out_bytes,
        sort_buffer_bytes=sort_buffer,
        spill_percent=float(config[P.SORT_SPILL_PERCENT]),
        sort_factor=int(config[P.IO_SORT_FACTOR]),
        has_combiner=profile.has_combiner,
        combiner_record_ratio=profile.combiner_record_ratio,
        combiner_byte_ratio=profile.combiner_byte_ratio,
    )
    if plan.spill_write_bytes > 0:
        phase_start = sim.now
        yield node.disk_write(plan.spill_write_bytes, label=f"{tag}.spill")
        if tel is not None:
            _span(
                "map.spill",
                phase_start,
                spill_bytes=plan.spill_write_bytes,
                spilled_records=plan.spilled_records,
            )
    if ctx.progress is not None:
        ctx.progress.update(task_id, attempt, 0.85)
    if plan.merge_rounds > 0:
        phase_start = sim.now
        merge_cpu = tc.MERGE_CPU_PER_MB * plan.merge_write_bytes / MB
        yield AllOf(
            sim,
            [
                node.disk_read(plan.merge_read_bytes, label=f"{tag}.mrg.rd"),
                node.disk_write(plan.merge_write_bytes, label=f"{tag}.mrg.wr"),
                node.compute(merge_cpu, cores_cap, label=f"{tag}.mrg"),
            ],
        )
        stats.cpu_seconds += merge_cpu
        if tel is not None:
            _span("map.merge", phase_start, merge_rounds=plan.merge_rounds)

    if ctx.progress is not None:
        ctx.progress.update(task_id, attempt, 0.95)
    yield sim.timeout(tc.TASK_COMMIT_OVERHEAD)

    # Publish the output so reducers can fetch it.  With speculation a
    # backup attempt may have registered first; first wins, and this
    # attempt's output is simply not served.
    partitions = ctx.dataflow.partitions_for_map(map_index, plan.output_bytes)
    ctx.catalog.register_map_output(map_index, node.node_id, partitions)

    stats.end_time = sim.now
    stats.map_output_records = out_records
    stats.map_output_bytes = out_bytes
    stats.combine_output_records = plan.output_records if profile.has_combiner else 0
    stats.spilled_records = plan.spilled_records
    return stats
