"""Shared context handed to task processes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.topology import Cluster
from repro.hdfs.filesystem import HdfsFileSystem
from repro.mapreduce.dataflow import JobDataflow
from repro.mapreduce.jobspec import JobSpec
from repro.mapreduce.shuffle import MapOutputCatalog, ShuffleFetchService
from repro.monitor.statistics import ProgressBoard
from repro.sim.engine import Simulator

# Timing constants shared by both task types (seconds).
CONTAINER_LAUNCH_OVERHEAD = 1.5  # JVM + localization
TASK_COMMIT_OVERHEAD = 0.3
#: Memory a container consumes beyond heap buffers (JVM, stacks, code).
CONTAINER_BASE_OVERHEAD_BYTES = 150 * 1024 * 1024
#: Extra physical-core headroom a container may burst into beyond its
#: strict vcore share (YARN's cgroup shares only bind under contention;
#: the paper observes a 1-vcore BBP mapper at 99% of a core).
CPU_BURST_FACTOR = 4.0
#: CPU cost of sorting/serializing one MB of map output (core-seconds).
SORT_CPU_PER_MB = 0.015
#: CPU cost of merging one MB during reduce-side merges (core-seconds).
MERGE_CPU_PER_MB = 0.008


@dataclass
class TaskContext:
    """Services a task process needs to execute."""

    sim: Simulator
    cluster: Cluster
    hdfs: HdfsFileSystem
    spec: JobSpec
    dataflow: JobDataflow
    catalog: MapOutputCatalog
    #: Live attempt-progress reporting (feeds speculative execution).
    progress: Optional[ProgressBoard] = None
    #: Per-fetch shuffle recovery; ``None`` keeps the legacy aggregated
    #: fetch rounds (fault-free and legacy-fault runs).
    fetch: Optional[ShuffleFetchService] = None


def allocated_cores(node_cores_per_vcore: float, vcores: int) -> float:
    """Physical-core entitlement of a container (with burst headroom)."""
    return vcores * node_cores_per_vcore * CPU_BURST_FACTOR


def effective_core_cap(
    node_cores_per_vcore: float, vcores: int, parallelism: float
) -> float:
    """Cores a task can actually use: entitlement capped by its own parallelism."""
    return min(allocated_cores(node_cores_per_vcore, vcores), max(0.05, parallelism))
