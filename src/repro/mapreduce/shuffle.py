"""The shuffle: map-output catalog and reducer fetch bookkeeping.

Map tasks register their final output (total bytes and the per-reducer
partition vector) with the :class:`MapOutputCatalog`; reduce tasks
consume completed outputs in arrival order, fetching everything new in
aggregated rounds (Hadoop's fetchers also batch by event polls).

Per-fetch throughput is bounded by ``shuffle.parallelcopies`` times a
per-stream service rate: serving a map segment is a seek-bound read on
the source node, so a single copier stream cannot saturate a NIC --
which is exactly why the parameter is worth tuning (S6.3).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.events import Event

MB = 1024 * 1024

#: Service rate of one shuffle copier stream (seek-bound map-output
#: serving; the tuning rule "increase parallelcopies in increments of
#: 10" only makes sense if single streams are slow).
SHUFFLE_STREAM_BW = 12 * MB


class MapOutputCatalog:
    """Tracks completed map outputs for one job's shuffle."""

    def __init__(self, sim: Simulator, num_maps: int, num_reducers: int) -> None:
        self.sim = sim
        self.num_maps = num_maps
        self.num_reducers = num_reducers
        #: map index -> (node_id, partition byte vector)
        self._outputs: Dict[int, tuple[int, np.ndarray]] = {}
        self._completed_order: List[int] = []
        self._waiters: List[Event] = []
        self.maps_done = False

    # -- producer side -----------------------------------------------------
    def register_map_output(
        self, map_index: int, node_id: int, partitions: np.ndarray
    ) -> bool:
        """Publish a finished map's output; returns False for a duplicate.

        With speculative execution two attempts of the same map can both
        finish; the first registration wins and the loser's output is
        ignored (reducers have already fetched, or will fetch, the
        winner's segments).
        """
        if map_index in self._outputs:
            return False
        if len(partitions) != self.num_reducers:
            raise ValueError(
                f"partition vector has {len(partitions)} entries, "
                f"expected {self.num_reducers}"
            )
        self._outputs[map_index] = (node_id, np.asarray(partitions, dtype=float))
        self._completed_order.append(map_index)
        if len(self._outputs) >= self.num_maps:
            self.maps_done = True
        self._wake()
        return True

    def mark_all_maps_done(self) -> None:
        """Called by the app master when no further map outputs will appear."""
        self.maps_done = True
        self._wake()

    def _wake(self) -> None:
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed()

    # -- consumer side -----------------------------------------------------
    @property
    def completed_maps(self) -> int:
        return len(self._outputs)

    def new_outputs_since(self, cursor: int) -> tuple[int, List[int]]:
        """Map indices completed since *cursor*; returns (new_cursor, indices)."""
        fresh = self._completed_order[cursor:]
        return len(self._completed_order), fresh

    def wait_for_news(self) -> Event:
        """An event that fires when another map output lands (or maps end)."""
        ev = self.sim.event()
        self._waiters.append(ev)
        return ev

    def partition_bytes(self, map_index: int, reduce_index: int) -> float:
        _node, parts = self._outputs[map_index]
        return float(parts[reduce_index])

    def batch_bytes_for_reducer(
        self, map_indices: Sequence[int], reduce_index: int
    ) -> float:
        return float(
            sum(self._outputs[m][1][reduce_index] for m in map_indices)
        )

    def total_bytes_for_reducer(self, reduce_index: int) -> float:
        return float(sum(parts[reduce_index] for _n, parts in self._outputs.values()))

    def source_nodes(self, map_indices: Sequence[int]) -> List[int]:
        return [self._outputs[m][0] for m in map_indices]
