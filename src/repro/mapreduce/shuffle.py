"""The shuffle: map-output catalog and reducer fetch bookkeeping.

Map tasks register their final output (total bytes and the per-reducer
partition vector) with the :class:`MapOutputCatalog`; reduce tasks
consume completed outputs in arrival order, fetching everything new in
aggregated rounds (Hadoop's fetchers also batch by event polls).

Per-fetch throughput is bounded by ``shuffle.parallelcopies`` times a
per-stream service rate: serving a map segment is a seek-bound read on
the source node, so a single copier stream cannot saturate a NIC --
which is exactly why the parameter is worth tuning (S6.3).

Under network faults the aggregated rounds are replaced by per-source
fetches with real failure semantics (timeout, exponential backoff,
capped retries, per-source penalty box) coordinated through a
:class:`ShuffleFetchService`; exhausted retries are reported to the app
master, which may declare the map output lost (:meth:`mark_lost`) and
re-execute the map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Sequence

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import Cluster

MB = 1024 * 1024

#: Service rate of one shuffle copier stream (seek-bound map-output
#: serving; the tuning rule "increase parallelcopies in increments of
#: 10" only makes sense if single streams are slow).
SHUFFLE_STREAM_BW = 12 * MB


class MapOutputCatalog:
    """Tracks completed map outputs for one job's shuffle."""

    def __init__(self, sim: Simulator, num_maps: int, num_reducers: int) -> None:
        self.sim = sim
        self.num_maps = num_maps
        self.num_reducers = num_reducers
        #: map index -> (node_id, partition byte vector)
        self._outputs: Dict[int, tuple[int, np.ndarray]] = {}
        self._completed_order: List[int] = []
        self._waiters: List[Event] = []
        self._closed = False

    # -- producer side -----------------------------------------------------
    def register_map_output(
        self, map_index: int, node_id: int, partitions: np.ndarray
    ) -> bool:
        """Publish a finished map's output; returns False for a duplicate.

        With speculative execution two attempts of the same map can both
        finish; the first registration wins and the loser's output is
        ignored (reducers have already fetched, or will fetch, the
        winner's segments).  An output that was declared lost
        (:meth:`mark_lost`) may be registered again by the re-executed
        map; the fresh registration is appended to the completion order
        so polling reducers discover the new location.
        """
        if map_index in self._outputs:
            return False
        if len(partitions) != self.num_reducers:
            raise ValueError(
                f"partition vector has {len(partitions)} entries, "
                f"expected {self.num_reducers}"
            )
        self._outputs[map_index] = (node_id, np.asarray(partitions, dtype=float))
        self._completed_order.append(map_index)
        self._wake()
        return True

    def mark_lost(self, map_index: int) -> bool:
        """Retract a map output the AM declared lost; False if absent.

        The completion-order log keeps the stale entry (reducer cursors
        are positional and must never move backwards); consumers check
        :meth:`has_output` before fetching.
        """
        entry = self._outputs.pop(map_index, None)
        if entry is None:
            return False
        self._wake()
        return True

    def mark_all_maps_done(self) -> None:
        """Called by the app master when no further map outputs will appear."""
        self._closed = True
        self._wake()

    def _wake(self) -> None:
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed()

    # -- consumer side -----------------------------------------------------
    @property
    def maps_done(self) -> bool:
        """True when every map output is live, or no more will appear."""
        return self._closed or len(self._outputs) >= self.num_maps

    @property
    def closed(self) -> bool:
        """True once the AM gave up on producing further outputs."""
        return self._closed

    @property
    def completed_maps(self) -> int:
        return len(self._outputs)

    def new_outputs_since(self, cursor: int) -> tuple[int, List[int]]:
        """Map indices completed since *cursor*; returns (new_cursor, indices)."""
        fresh = self._completed_order[cursor:]
        return len(self._completed_order), fresh

    def wait_for_news(self) -> Event:
        """An event that fires when another map output lands (or maps end)."""
        ev = self.sim.event()
        self._waiters.append(ev)
        return ev

    def has_output(self, map_index: int) -> bool:
        return map_index in self._outputs

    def node_of(self, map_index: int) -> int:
        return self._outputs[map_index][0]

    def partition_bytes(self, map_index: int, reduce_index: int) -> float:
        _node, parts = self._outputs[map_index]
        return float(parts[reduce_index])

    def batch_bytes_for_reducer(
        self, map_indices: Sequence[int], reduce_index: int
    ) -> float:
        return float(
            sum(self._outputs[m][1][reduce_index] for m in map_indices)
        )

    def total_bytes_for_reducer(self, reduce_index: int) -> float:
        return float(sum(parts[reduce_index] for _n, parts in self._outputs.values()))

    def source_nodes(self, map_indices: Sequence[int]) -> List[int]:
        return [self._outputs[m][0] for m in map_indices]


@dataclass(frozen=True)
class FetchRecoverySettings:
    """Knobs of the gray-failure fetch path (Hadoop-flavored defaults).

    ``fetch_timeout`` plays the role of ``mapreduce.reduce.shuffle.
    read.timeout``: a fetch that has not completed by then is abandoned
    and retried.  Retries back off exponentially from ``backoff_base``
    up to ``backoff_max``; after ``max_retries`` failed attempts the
    source lands in the reducer's penalty box for ``penalty_seconds``
    and one fetch-failure report goes to the AM.
    """

    fetch_timeout: float = 15.0
    max_retries: int = 3
    backoff_base: float = 1.0
    backoff_max: float = 8.0
    penalty_seconds: float = 20.0
    #: Simulated time a refused/failed connection burns before erroring
    #: (a TCP-level failure is fast, not instant).
    failure_latency: float = 0.5


class ShuffleFetchService:
    """Per-job coordinator of the per-fetch shuffle recovery path.

    Installed on ``TaskContext.fetch`` by the app master only when the
    network's gray-failure state is armed; reducers fall back to the
    legacy aggregated rounds when it is absent, keeping fault-free and
    legacy-fault digests byte-identical.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: "Cluster",
        catalog: MapOutputCatalog,
        settings: FetchRecoverySettings,
        report_failure: Callable[[int, int, str], None],
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.catalog = catalog
        self.settings = settings
        #: ``report_failure(map_index, src_node_id, reducer_task_id)`` --
        #: wired to the AM's fetch-failure aggregation.
        self.report_failure = report_failure

    def draw_failure(self, src_node_id: int, dst_node_id: int) -> bool:
        """One connection-level failure draw against the flaky windows."""
        state = self.cluster.network.faults
        if state is None:
            return False
        return state.draw_fetch_failure(src_node_id, dst_node_id, self.sim.now)
