"""Job and task counters, mirroring Hadoop's counter groups.

The tuner is gray-box: it reads exactly these counters (plus node
statistics) through the JobClient, never the simulator's internals.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, Mapping


class Counter(enum.Enum):
    """The counter names MRONLINE's monitor consumes."""

    MAP_INPUT_RECORDS = "MAP_INPUT_RECORDS"
    MAP_INPUT_BYTES = "MAP_INPUT_BYTES"
    MAP_OUTPUT_RECORDS = "MAP_OUTPUT_RECORDS"
    MAP_OUTPUT_BYTES = "MAP_OUTPUT_BYTES"
    COMBINE_INPUT_RECORDS = "COMBINE_INPUT_RECORDS"
    COMBINE_OUTPUT_RECORDS = "COMBINE_OUTPUT_RECORDS"
    SPILLED_RECORDS = "SPILLED_RECORDS"
    REDUCE_INPUT_RECORDS = "REDUCE_INPUT_RECORDS"
    REDUCE_INPUT_BYTES = "REDUCE_INPUT_BYTES"
    REDUCE_OUTPUT_RECORDS = "REDUCE_OUTPUT_RECORDS"
    REDUCE_OUTPUT_BYTES = "REDUCE_OUTPUT_BYTES"
    SHUFFLED_BYTES = "SHUFFLED_BYTES"
    LOCAL_BYTES_READ = "LOCAL_BYTES_READ"
    LOCAL_BYTES_WRITTEN = "LOCAL_BYTES_WRITTEN"
    HDFS_BYTES_READ = "HDFS_BYTES_READ"
    HDFS_BYTES_WRITTEN = "HDFS_BYTES_WRITTEN"
    CPU_MILLISECONDS = "CPU_MILLISECONDS"
    FAILED_TASK_ATTEMPTS = "FAILED_TASK_ATTEMPTS"
    #: Attempts killed for environmental reasons (preemption, node loss,
    #: speculation losers); Hadoop reports these as KILLED, not FAILED.
    KILLED_TASK_ATTEMPTS = "KILLED_TASK_ATTEMPTS"
    #: Backup attempts launched by speculative execution.
    SPECULATIVE_TASK_ATTEMPTS = "SPECULATIVE_TASK_ATTEMPTS"
    MERGE_PASSES = "MERGE_PASSES"


class Counters:
    """A bag of named numeric counters."""

    __slots__ = ("_values",)

    def __init__(self, initial: Mapping[Counter, float] = ()) -> None:
        self._values: Dict[Counter, float] = dict(initial) if initial else {}

    def increment(self, counter: Counter, amount: float = 1) -> None:
        self._values[counter] = self._values.get(counter, 0) + amount

    def get(self, counter: Counter) -> float:
        return self._values.get(counter, 0)

    def __getitem__(self, counter: Counter) -> float:
        return self.get(counter)

    def __iter__(self) -> Iterator[Counter]:
        return iter(self._values)

    def merge(self, other: "Counters") -> None:
        """Accumulate *other* into this bag (job <- task aggregation)."""
        for counter, value in other._values.items():
            self.increment(counter, value)

    def snapshot(self) -> Dict[str, float]:
        return {c.value: v for c, v in sorted(self._values.items(), key=lambda kv: kv[0].value)}

    def copy(self) -> "Counters":
        return Counters(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        inner = ", ".join(f"{c.value}={v:g}" for c, v in self._values.items())
        return f"Counters({inner})"
