"""The MapReduce engine: jobs, tasks, sort/spill/merge, shuffle.

Task behaviour is an analytic per-phase cost model driven by the exact
Table-2 parameters, executed against the simulated cluster's shared
resources.  Spill and merge accounting mirrors Hadoop's semantics so
the SPILLED_RECORDS counters reproduced in Figures 7-9 are meaningful.
"""

from repro.mapreduce.counters import Counter, Counters
from repro.mapreduce.dataflow import JobDataflow
from repro.mapreduce.jobspec import JobSpec, TaskType, WorkloadProfile
from repro.mapreduce.sortspill import (
    MapSpillPlan,
    ReduceMergePlan,
    plan_map_spills,
    plan_reduce_merge,
)

__all__ = [
    "Counter",
    "Counters",
    "JobDataflow",
    "JobSpec",
    "MapSpillPlan",
    "ReduceMergePlan",
    "TaskType",
    "WorkloadProfile",
    "plan_map_spills",
    "plan_reduce_merge",
]
