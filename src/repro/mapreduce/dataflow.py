"""Per-job dataflow: split sizes, map outputs, and reducer partitions.

Given a :class:`~repro.mapreduce.jobspec.JobSpec` and the input file's
blocks, this module answers, deterministically under a seed:

* how many bytes/records does map *i* read and emit, and
* how do map *i*'s output bytes partition across the reducers,

including per-map volume noise and reducer-partition skew (MapReduce
jobs "commonly exhibit data skew", S1).  Skewed partition weights are
drawn once per job, so every map shards the same way -- exactly how a
hash partitioner behaves on a skewed key distribution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.hdfs.filesystem import HdfsFile
from repro.mapreduce.jobspec import JobSpec


class JobDataflow:
    """Deterministic data volumes for every task of one job."""

    def __init__(
        self,
        spec: JobSpec,
        input_file: HdfsFile,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.spec = spec
        self.input_file = input_file
        rng = rng if rng is not None else np.random.default_rng(0)
        profile = spec.workload

        self.num_maps = max(1, len(input_file.blocks))
        self.num_reducers = spec.num_reducers

        # --- per-map input/output volumes --------------------------------
        self.split_bytes = np.array([b.size_bytes for b in input_file.blocks], dtype=float)
        if len(self.split_bytes) == 0:
            self.split_bytes = np.array([0.0])
        noise = profile.map_output_noise
        if noise > 0:
            factors = rng.lognormal(mean=-0.5 * noise**2, sigma=noise, size=self.num_maps)
        else:
            factors = np.ones(self.num_maps)
        self.map_output_bytes = self.split_bytes * profile.map_output_ratio * factors
        rec_size = max(1.0, profile.map_output_record_size)
        self.map_output_records = np.maximum(
            0, np.round(self.map_output_bytes / rec_size)
        ).astype(np.int64)

        # --- reducer partition weights (job-wide, skewed) -----------------
        skew = profile.partition_skew
        if skew > 0:
            raw = rng.lognormal(mean=0.0, sigma=skew, size=self.num_reducers)
        else:
            raw = np.ones(self.num_reducers)
        self.partition_weights = raw / raw.sum()

    # ------------------------------------------------------------------
    # Map side
    # ------------------------------------------------------------------
    def map_input_bytes(self, map_index: int) -> float:
        return float(self.split_bytes[map_index])

    def map_input_records(self, map_index: int) -> int:
        # Input record size is irrelevant to tuning; derive from the map
        # output record count and selectivity for consistent counters.
        profile = self.spec.workload
        if profile.map_output_ratio <= 0:
            return int(self.split_bytes[map_index] / 100.0)
        return int(self.map_output_records[map_index] / max(profile.map_output_ratio, 1e-9))

    def map_output(self, map_index: int) -> tuple[float, int]:
        """(bytes, records) emitted by map *map_index* before the combiner."""
        return float(self.map_output_bytes[map_index]), int(self.map_output_records[map_index])

    def partitions_for_map(self, map_index: int, post_combine_bytes: float) -> np.ndarray:
        """Split one map's final output across reducers (bytes per reducer)."""
        return self.partition_weights * post_combine_bytes

    # ------------------------------------------------------------------
    # Reduce side
    # ------------------------------------------------------------------
    def reduce_input_bytes(self, reduce_index: int, total_shuffle_bytes: float) -> float:
        return float(self.partition_weights[reduce_index] * total_shuffle_bytes)

    def reduce_output_bytes(self, reduce_input: float) -> float:
        return reduce_input * self.spec.workload.reduce_output_ratio

    # ------------------------------------------------------------------
    # Job-level expectations (used by tests and the knowledge base)
    # ------------------------------------------------------------------
    @property
    def total_input_bytes(self) -> float:
        return float(self.split_bytes.sum())

    @property
    def expected_shuffle_bytes(self) -> float:
        """Post-combiner bytes crossing the shuffle, at full combiner efficiency."""
        profile = self.spec.workload
        ratio = profile.combiner_byte_ratio if profile.has_combiner else 1.0
        return float(self.map_output_bytes.sum() * ratio)

    @property
    def expected_output_bytes(self) -> float:
        return self.expected_shuffle_bytes * self.spec.workload.reduce_output_ratio
