"""The reduce task process: shuffle, merge, reduce, output commit.

The shuffle loop consumes map outputs as they complete (overlapping
with the map phase once slowstart admits the reducer), fetching every
newly available segment batch through an aggregated network flow whose
rate is bounded by ``shuffle.parallelcopies`` copier streams.  The
merge behaviour follows :func:`plan_reduce_merge`.

``shuffle.merge.percent``, ``merge.inmem.threshold`` and
``parallelcopies`` are read from the live configuration at each use, so
category-3 (hot-swappable) updates land mid-task.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Set, Tuple

from repro.cluster.container import Container
from repro.cluster.node import Node
from repro.core import parameters as P
from repro.core.configuration import Configuration
from repro.mapreduce import task_context as tc
from repro.mapreduce.jobspec import TaskId
from repro.mapreduce.shuffle import SHUFFLE_STREAM_BW
from repro.mapreduce.sortspill import plan_reduce_merge
from repro.mapreduce.task_context import TaskContext
from repro.monitor.statistics import TaskStats
from repro.sim.events import AllOf, AnyOf, Event, Interrupt
from repro.sim.resources import Link
from repro.util.backoff import BackoffPolicy

MB = 1024 * 1024

#: How long a fetcher waits after news before re-scanning the event
#: list, batching bursts of map completions into one aggregated fetch.
SHUFFLE_POLL_INTERVAL = 5.0


def attempt_output_dir(output_path: str, task_id: object, attempt: int) -> str:
    """Temporary output directory of one reduce attempt (pre-commit)."""
    return f"{output_path}/_temporary/{task_id}_att{attempt}"


def _shuffle_with_recovery(
    ctx: TaskContext,
    reduce_index: int,
    node: Node,
    config: Configuration,
    copier_link: Link,
    task_id: TaskId,
    attempt: int,
    stats: TaskStats,
) -> Generator[Event, object, Tuple[float, int]]:
    """Per-source shuffle with Hadoop-style fetch-failure recovery.

    Active only when ``ctx.fetch`` is armed (a plan with network fault
    kinds).  Each segment is fetched from its *source* node through
    :meth:`Network.fetch_from`, up to ``shuffle.parallelcopies`` at a
    time; a fetch races a per-fetch timeout, retries with exponential
    backoff on timeout or (flaky-window) connection failure, and after
    the retry budget is spent the source lands in this reducer's
    penalty box and one fetch-failure report goes to the AM.  A segment
    whose output was declared lost stays pending until the re-executed
    map registers its replacement (cursor entries are never consumed
    twice: ``done``/``pending`` membership dedupes re-registrations).
    """
    sim = ctx.sim
    fetch = ctx.fetch
    assert fetch is not None
    s = fetch.settings
    catalog = ctx.catalog
    network = ctx.cluster.network
    bus = sim.telemetry
    task_tel = bus is not None and bus.wants("task")

    fetched_bytes = 0.0
    cursor = 0
    done: Set[int] = set()
    pending: List[int] = []
    #: source node_id -> simulated time its penalty box opens again
    penalized: Dict[int, float] = {}
    seq = 0
    cancelled = False

    def fetch_segment(m: int) -> Generator[Event, object, Tuple[str, int, int, float]]:
        nonlocal seq
        retries = 0
        delays = BackoffPolicy(base=s.backoff_base, cap=s.backoff_max).delays()
        while True:
            if cancelled:
                return ("cancelled", m, -1, 0.0)
            if not catalog.has_output(m):
                # Declared lost while queued; the parent keeps it
                # pending until the re-run registers a replacement.
                return ("gone", m, -1, 0.0)
            src_id = catalog.node_of(m)
            nbytes = catalog.partition_bytes(m, reduce_index)
            if nbytes <= 0:
                # Zero-length segment: only the header exchange, free.
                return ("ok", m, src_id, 0.0)
            src = ctx.cluster.node(src_id)
            if fetch.draw_failure(src_id, node.node_id):
                reason = "connection"
                yield sim.timeout(s.failure_latency)
            else:
                seq += 1
                # Attempt-scoped: two live attempts of the same reducer
                # draw identical (m, seq) pairs, and the timeout cancel
                # below must never abandon the sibling's flow.
                label = f"{task_id}.a{attempt}.shuffle.m{m}.f{seq}"
                flow = network.fetch_from(
                    src, node, nbytes, extra_links=[copier_link], label=label
                )
                idx, _value = yield AnyOf(sim, [flow, sim.timeout(s.fetch_timeout)])
                if idx == 0:
                    return ("ok", m, src_id, nbytes)
                # Timed out: abandon the stalled flow before retrying.
                network.scheduler.cancel_prefix(label)
                reason = "timeout"
            retries += 1
            stats.fetch_retries += 1
            if bus is not None:
                bus.increment("shuffle.fetch_retries")
            if task_tel:
                from repro.telemetry.events import FetchRetry

                bus.emit(
                    FetchRetry(
                        time=sim.now,
                        task=str(task_id),
                        attempt=attempt,
                        map_index=m,
                        src_node_id=src_id,
                        dst_node_id=node.node_id,
                        reason=reason,
                        retry=retries,
                    )
                )
            if retries > s.max_retries:
                return ("failed", m, src_id, 0.0)
            pause = next(delays)
            stats.fetch_penalty_seconds += pause
            yield sim.timeout(pause)

    while True:
        cursor, fresh = catalog.new_outputs_since(cursor)
        for m in fresh:
            if m not in done and m not in pending:
                pending.append(m)
        if len(done) >= catalog.num_maps:
            break
        now = sim.now
        ready = [
            m
            for m in pending
            if catalog.has_output(m) and penalized.get(catalog.node_of(m), 0.0) <= now
        ]
        if ready:
            # parallelcopies is hot-swappable: it bounds both the
            # copier pool's aggregate rate and the fetch fan-out.
            copies = max(1, int(config[P.SHUFFLE_PARALLELCOPIES]))
            copier_link.capacity = copies * SHUFFLE_STREAM_BW
            batch = ready[:copies]
            procs = [
                sim.process(fetch_segment(m), name=f"{task_id}.fetch.m{m}")
                for m in batch
            ]
            try:
                results = yield AllOf(sim, procs)
            except Interrupt:
                # Killed mid-round (preemption, photo-finish loss): the
                # flag makes orphaned fetchers drain at their next wake
                # instead of fetching for a dead reducer.
                cancelled = True
                raise
            for outcome, m, src_id, nbytes in results:
                if outcome == "ok":
                    done.add(m)
                    pending.remove(m)
                    fetched_bytes += nbytes
                elif outcome == "failed":
                    penalized[src_id] = sim.now + s.penalty_seconds
                    fetch.report_failure(m, src_id, str(task_id))
                # "gone" stays pending until re-registered (or the AM
                # closes the catalog for good).
            if ctx.progress is not None:
                ctx.progress.update(
                    task_id, attempt, 0.33 * len(done) / max(1, catalog.num_maps)
                )
            continue
        # Nothing fetchable right now: wait for news, but re-poll on a
        # timer too so penalty-box expiry is noticed without an event.
        live = [m for m in pending if catalog.has_output(m)]
        if catalog.maps_done and not pending:
            break
        if catalog.closed and not live:
            # Remaining segments are permanently gone (a map failed for
            # good); stop fetching so the job fails instead of hanging.
            break
        yield AnyOf(sim, [catalog.wait_for_news(), sim.timeout(SHUFFLE_POLL_INTERVAL)])
    return fetched_bytes, len(done)


def run_reduce_task(
    ctx: TaskContext,
    reduce_index: int,
    container: Container,
    config: Configuration,
    attempt: int = 1,
    wave: int = -1,
) -> Generator[Event, object, TaskStats]:
    """Execute one reduce-task attempt; returns its :class:`TaskStats`."""
    sim = ctx.sim
    node = container.node
    profile = ctx.spec.workload
    task_id = ctx.spec.reduce_task_id(reduce_index)
    # Flow labels are attempt-scoped (and the container tag kills by the
    # same prefix) so killing one attempt never cancels a concurrent
    # sibling's in-flight flows.
    tag = f"{task_id}.a{attempt}"

    tel = sim.telemetry
    if tel is None or not tel.wants("task"):
        tel = None  # phase spans off: emission sites reduce to a None check

    def _span(name: str, phase_start: float, **detail: object) -> None:
        from repro.telemetry.events import TaskPhaseSpan

        tel.emit(
            TaskPhaseSpan(
                time=sim.now,
                name=name,
                start=phase_start,
                node_id=node.node_id,
                track=f"container-{container.container_id}",
                job_id=task_id.job_id,
                task=str(task_id),
                attempt=attempt,
                detail=detail,
            )
        )

    start = sim.now
    stats = TaskStats(
        task_id=task_id,
        task_type=task_id.task_type,
        node_id=node.node_id,
        attempt=attempt,
        config=config.as_dict(),
        start_time=start,
        end_time=start,
        cpu_seconds=0.0,
        allocated_cores=tc.allocated_cores(
            node.resources.cores_per_vcore, int(config[P.REDUCE_CPU_VCORES])
        ),
        working_set_bytes=0.0,
        container_memory_bytes=container.memory_bytes,
        wave=wave,
    )

    yield sim.timeout(tc.CONTAINER_LAUNCH_OVERHEAD)

    heap = config.reduce_heap_bytes
    shuffle_buf = heap * float(config[P.SHUFFLE_INPUT_BUFFER_PERCENT])
    cores_cap = tc.effective_core_cap(
        node.resources.cores_per_vcore,
        int(config[P.REDUCE_CPU_VCORES]),
        profile.reduce_cpu_parallelism,
    )

    # ------------------------------------------------------------------
    # Phase 1: shuffle.  One aggregated fetch per availability round.
    # ------------------------------------------------------------------
    copier_link = Link(f"{task_id}.copiers", SHUFFLE_STREAM_BW)
    shuffle_start = sim.now
    if ctx.fetch is not None:
        # Gray-failure fetch path: per-source fetches with timeout,
        # retry/backoff, penalty box, and AM failure reports.
        fetched_bytes, num_segments = yield from _shuffle_with_recovery(
            ctx, reduce_index, node, config, copier_link, task_id, attempt, stats
        )
    else:
        cursor = 0
        fetched_bytes = 0.0
        num_segments = 0
        while True:
            cursor, fresh = ctx.catalog.new_outputs_since(cursor)
            if fresh:
                batch = ctx.catalog.batch_bytes_for_reducer(fresh, reduce_index)
                num_segments += len(fresh)
                if batch > 0:
                    # parallelcopies is hot-swappable: refresh the copier
                    # pool's aggregate service rate each round.
                    copies = max(1, int(config[P.SHUFFLE_PARALLELCOPIES]))
                    copier_link.capacity = copies * SHUFFLE_STREAM_BW
                    yield ctx.cluster.network.fetch_into(
                        node, batch, extra_links=[copier_link], label=f"{tag}.shuffle"
                    )
                    fetched_bytes += batch
                if ctx.progress is not None:
                    ctx.progress.update(
                        task_id, attempt, 0.33 * cursor / max(1, ctx.catalog.num_maps)
                    )
            elif ctx.catalog.maps_done:
                break
            else:
                yield ctx.catalog.wait_for_news()
                # Batch availability into poll windows (Hadoop's fetchers
                # likewise poll completion events periodically) so a burst
                # of map completions becomes one aggregated fetch.
                yield sim.timeout(SHUFFLE_POLL_INTERVAL)

    input_records = int(round(fetched_bytes / max(1.0, profile.map_output_record_size)))
    stats.shuffled_bytes = fetched_bytes
    stats.reduce_input_records = input_records
    if tel is not None:
        _span(
            "reduce.shuffle",
            shuffle_start,
            fetched_bytes=fetched_bytes,
            segments=num_segments,
        )

    # ------------------------------------------------------------------
    # Phase 2: merge planning and shuffle-phase disk traffic.
    # ------------------------------------------------------------------
    plan = plan_reduce_merge(
        input_bytes=fetched_bytes,
        input_records=input_records,
        num_segments=max(1, num_segments),
        heap_bytes=heap,
        shuffle_input_buffer_percent=float(config[P.SHUFFLE_INPUT_BUFFER_PERCENT]),
        shuffle_merge_percent=float(config[P.SHUFFLE_MERGE_PERCENT]),
        shuffle_memory_limit_percent=float(config[P.SHUFFLE_MEMORY_LIMIT_PERCENT]),
        merge_inmem_threshold=int(config[P.MERGE_INMEM_THRESHOLD]),
        reduce_input_buffer_percent=float(config[P.REDUCE_INPUT_BUFFER_PERCENT]),
        sort_factor=int(config[P.IO_SORT_FACTOR]),
    )

    retained = plan.retained_in_memory_bytes
    # Resident memory peaks at the larger of the two phases: the shuffle
    # buffer's *touched* portion, or the reduce phase's retained segments
    # plus the user code's state.  An oversized buffer that the input
    # never fills does not show up as used.
    touched_buf = min(shuffle_buf, fetched_bytes)
    stats.working_set_bytes = tc.CONTAINER_BASE_OVERHEAD_BYTES + min(
        heap,
        max(touched_buf, retained + profile.reduce_fixed_mem_bytes),
    )

    if retained + profile.reduce_fixed_mem_bytes > heap:
        # OOM during the reduce phase: retained segments plus user state
        # exceed the heap.
        stats.end_time = sim.now
        stats.failed = True
        stats.failure_kind = "oom"
        stats.failure_reason = (
            f"OutOfMemory: retained {retained / MB:.0f} MB + user code "
            f"{profile.reduce_fixed_mem_bytes // MB} MB exceeds heap {heap // MB} MB"
        )
        return stats

    sort_start = sim.now
    shuffle_disk_in = plan.direct_to_disk_bytes + plan.inmem_spill_bytes
    if shuffle_disk_in > 0:
        yield node.disk_write(shuffle_disk_in, label=f"{tag}.shufspill")
    if plan.disk_merge_rounds > 0:
        merge_cpu = tc.MERGE_CPU_PER_MB * plan.disk_merge_write_bytes / MB
        yield AllOf(
            sim,
            [
                node.disk_read(plan.disk_merge_read_bytes, label=f"{tag}.mrg.rd"),
                node.disk_write(plan.disk_merge_write_bytes, label=f"{tag}.mrg.wr"),
                node.compute(merge_cpu, cores_cap, label=f"{tag}.mrg"),
            ],
        )
        stats.cpu_seconds += merge_cpu
    if tel is not None and (shuffle_disk_in > 0 or plan.disk_merge_rounds > 0):
        _span(
            "reduce.sort",
            sort_start,
            spill_bytes=shuffle_disk_in,
            merge_rounds=plan.disk_merge_rounds,
        )
    if ctx.progress is not None:
        ctx.progress.update(task_id, attempt, 0.66)

    # ------------------------------------------------------------------
    # Phase 3: the reduce function, streaming the final merge from disk.
    # ------------------------------------------------------------------
    reduce_start = sim.now
    cpu_work = (
        profile.reduce_cpu_fixed_sec + profile.reduce_cpu_per_mb * fetched_bytes / MB
    )
    waits = [node.compute(cpu_work, cores_cap, label=f"{tag}.reduce")]
    if plan.final_read_bytes > 0:
        waits.append(node.disk_read(plan.final_read_bytes, label=f"{tag}.final.rd"))
    yield AllOf(sim, waits)
    stats.cpu_seconds += cpu_work
    if tel is not None:
        _span("reduce.reduce", reduce_start, cpu_seconds=cpu_work)
    if ctx.progress is not None:
        ctx.progress.update(task_id, attempt, 0.90)

    # ------------------------------------------------------------------
    # Phase 4: write the partition to an attempt-scoped temporary path,
    # then commit with an atomic rename (Hadoop's OutputCommitter).  A
    # killed attempt leaves only temp files, which the app master sweeps;
    # a speculative loser that finishes sees the winner's committed file
    # and discards its own output.
    # ------------------------------------------------------------------
    output_bytes = ctx.dataflow.reduce_output_bytes(fetched_bytes)
    if output_bytes > 0:
        final_path = f"{ctx.spec.output_path}/part-{reduce_index:05d}"
        tmp_path = attempt_output_dir(ctx.spec.output_path, task_id, attempt) + (
            f"/part-{reduce_index:05d}"
        )
        if ctx.hdfs.exists(tmp_path):
            ctx.hdfs.delete(tmp_path)  # stale leftovers from this attempt
        yield ctx.hdfs.write_file(tmp_path, int(output_bytes), node)
        if ctx.hdfs.exists(final_path):
            ctx.hdfs.delete(tmp_path)  # lost the commit race to a backup
        else:
            ctx.hdfs.rename(tmp_path, final_path)

    yield sim.timeout(tc.TASK_COMMIT_OVERHEAD)

    stats.end_time = sim.now
    stats.spilled_records = plan.spilled_records
    return stats
