"""Analytic sort/spill/merge planning -- the Hadoop buffer mechanics.

These are pure functions: given data volumes and the buffer parameters
from Table 2, they return how many spills happen, how many records are
(re)written to disk, and how many bytes of disk traffic each merge pass
costs.  The task processes turn the byte figures into simulated I/O;
the record figures feed the SPILLED_RECORDS counter (Figures 7-9).

Semantics follow Hadoop's MapTask/MergeManager:

* Map side: the serialized output stream fills ``io.sort.mb``; a spill
  triggers at ``sort.spill.percent`` of the buffer.  One spill means the
  spill file *is* the map output (records hit disk once -- the paper's
  "Optimal").  k > 1 spills require merging, and every merge pass
  rewrites every record, so spilled records grow by one output-volume
  per pass (the paper's "3x the map output records in the worst case").
* Reduce side: fetched segments land in memory if they fit under
  ``shuffle.memory.limit.percent`` of the shuffle buffer
  (``shuffle.input.buffer.percent`` of the heap); the in-memory merger
  flushes to disk at ``shuffle.merge.percent`` (or
  ``merge.inmem.threshold`` segments); on-disk runs merge with fan-in
  ``io.sort.factor``; ``reduce.input.buffer.percent`` of the heap may
  retain segments in memory while the reduce function runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def merge_passes(num_segments: int, fan_in: int) -> int:
    """Number of merge passes to combine *num_segments* sorted runs.

    Each pass merges up to ``fan_in`` runs into one.  0 or 1 segments
    need no merging.
    """
    if fan_in < 2:
        raise ValueError(f"merge fan-in must be >= 2, got {fan_in}")
    if num_segments <= 1:
        return 0
    return max(1, math.ceil(math.log(num_segments, fan_in)))


@dataclass(frozen=True)
class MapSpillPlan:
    """Disk/record consequences of one map task's buffer configuration."""

    num_spills: int
    #: SPILLED_RECORDS contribution of this task.
    spilled_records: int
    #: Bytes written by the initial spills (the post-combiner stream).
    spill_write_bytes: float
    #: Bytes read and written by intermediate+final merge passes.
    merge_read_bytes: float
    merge_write_bytes: float
    merge_rounds: int
    #: The final map-output file (what the shuffle serves).
    output_bytes: float
    output_records: int

    @property
    def total_disk_write_bytes(self) -> float:
        return self.spill_write_bytes + self.merge_write_bytes

    @property
    def total_disk_read_bytes(self) -> float:
        return self.merge_read_bytes


def plan_map_spills(
    output_records: int,
    output_bytes: float,
    sort_buffer_bytes: float,
    spill_percent: float,
    sort_factor: int,
    has_combiner: bool = False,
    combiner_record_ratio: float = 1.0,
    combiner_byte_ratio: float = 1.0,
) -> MapSpillPlan:
    """Plan the map-side spill/merge behaviour.

    ``output_records``/``output_bytes`` are the *map function's* output,
    before any combiner.  The combiner is applied per spill chunk, as
    Hadoop does.
    """
    if output_records < 0 or output_bytes < 0:
        raise ValueError("negative map output")
    if sort_buffer_bytes <= 0:
        raise ValueError("sort buffer must be positive")
    if not 0.0 < spill_percent <= 1.0:
        raise ValueError(f"spill percent {spill_percent} outside (0, 1]")

    if output_bytes == 0:
        return MapSpillPlan(0, 0, 0.0, 0.0, 0.0, 0, 0.0, 0)

    usable = sort_buffer_bytes * spill_percent
    num_spills = max(1, math.ceil(output_bytes / usable))

    if has_combiner:
        combined_records = max(1, math.ceil(output_records * combiner_record_ratio))
        combined_bytes = max(1.0, output_bytes * combiner_byte_ratio)
    else:
        combined_records = output_records
        combined_bytes = output_bytes

    if num_spills == 1:
        # The single spill file is the output: records hit disk once.
        return MapSpillPlan(
            num_spills=1,
            spilled_records=combined_records,
            spill_write_bytes=combined_bytes,
            merge_read_bytes=0.0,
            merge_write_bytes=0.0,
            merge_rounds=0,
            output_bytes=combined_bytes,
            output_records=combined_records,
        )

    rounds = merge_passes(num_spills, max(2, int(sort_factor)))
    # Initial spills write the combined stream once; every merge pass
    # rewrites it (the final pass writes the output file).
    spilled_records = combined_records * (1 + rounds)
    return MapSpillPlan(
        num_spills=num_spills,
        spilled_records=spilled_records,
        spill_write_bytes=combined_bytes,
        merge_read_bytes=combined_bytes * rounds,
        merge_write_bytes=combined_bytes * rounds,
        merge_rounds=rounds,
        output_bytes=combined_bytes,
        output_records=combined_records,
    )


@dataclass(frozen=True)
class ReduceMergePlan:
    """Disk/record consequences of one reduce task's buffer configuration."""

    #: Segment bytes that bypassed memory entirely (too large to admit).
    direct_to_disk_bytes: float
    #: Bytes flushed from the in-memory merger to disk during shuffle.
    inmem_spill_bytes: float
    #: Bytes retained in memory and fed straight to the reduce function.
    retained_in_memory_bytes: float
    #: On-disk run count entering the disk merge.
    disk_segments: int
    #: Intermediate disk-merge passes (each rereads+rewrites disk bytes).
    disk_merge_rounds: int
    disk_merge_read_bytes: float
    disk_merge_write_bytes: float
    #: Disk bytes streamed during the reduce phase (the final merge).
    final_read_bytes: float
    #: SPILLED_RECORDS contribution of this task.
    spilled_records: int

    @property
    def total_disk_write_bytes(self) -> float:
        return self.direct_to_disk_bytes + self.inmem_spill_bytes + self.disk_merge_write_bytes

    @property
    def total_disk_read_bytes(self) -> float:
        return self.disk_merge_read_bytes + self.final_read_bytes


def plan_reduce_merge(
    input_bytes: float,
    input_records: int,
    num_segments: int,
    heap_bytes: float,
    shuffle_input_buffer_percent: float,
    shuffle_merge_percent: float,
    shuffle_memory_limit_percent: float,
    merge_inmem_threshold: int,
    reduce_input_buffer_percent: float,
    sort_factor: int,
) -> ReduceMergePlan:
    """Plan the reduce-side shuffle-merge behaviour for one reducer."""
    if input_bytes < 0 or input_records < 0:
        raise ValueError("negative reduce input")
    if num_segments < 1:
        num_segments = 1
    if heap_bytes <= 0:
        raise ValueError("heap must be positive")

    if input_bytes == 0:
        return ReduceMergePlan(0.0, 0.0, 0.0, 0, 0, 0.0, 0.0, 0.0, 0)

    shuffle_buf = heap_bytes * shuffle_input_buffer_percent
    seg_limit = shuffle_buf * shuffle_memory_limit_percent
    avg_seg = input_bytes / num_segments

    if shuffle_buf <= 0 or avg_seg > seg_limit:
        # Segments are too big for the in-memory path: everything lands
        # on disk as it is fetched.
        direct = input_bytes
        inmem_in = 0.0
    else:
        direct = 0.0
        inmem_in = input_bytes

    # In-memory merger: flush a batch once the buffered bytes pass the
    # merge trigger or the segment count passes the threshold.
    batch = shuffle_buf * shuffle_merge_percent
    if merge_inmem_threshold > 0:
        batch = min(batch, merge_inmem_threshold * avg_seg)
    batch = max(batch, avg_seg)  # a batch holds at least one segment

    inmem_spill = 0.0
    inmem_flushes = 0
    pending = 0.0
    if inmem_in > 0:
        if inmem_in <= batch:
            pending = inmem_in
        else:
            inmem_flushes = int(inmem_in // batch)
            inmem_spill = inmem_flushes * batch
            pending = inmem_in - inmem_spill

    # While the reduce function runs, only reduce.input.buffer.percent
    # of the heap may keep segments resident; the excess is spilled.
    allowance = heap_bytes * reduce_input_buffer_percent
    extra_spill = max(0.0, pending - allowance)
    retained = pending - extra_spill
    if extra_spill > 0:
        inmem_spill += extra_spill
        inmem_flushes += 1

    disk_bytes = direct + inmem_spill
    disk_segments = (num_segments if direct > 0 else 0) + inmem_flushes

    fan_in = max(2, int(sort_factor))
    total_passes = merge_passes(disk_segments, fan_in)
    # The last pass streams directly into the reduce function (no write).
    inter_rounds = max(0, total_passes - 1)
    merge_read = disk_bytes * inter_rounds
    merge_write = disk_bytes * inter_rounds
    final_read = disk_bytes

    if input_bytes > 0:
        frac_disk = disk_bytes / input_bytes
    else:
        frac_disk = 0.0
    spilled_records = int(round(input_records * frac_disk * (1 + inter_rounds)))

    return ReduceMergePlan(
        direct_to_disk_bytes=direct,
        inmem_spill_bytes=inmem_spill,
        retained_in_memory_bytes=retained,
        disk_segments=disk_segments,
        disk_merge_rounds=inter_rounds,
        disk_merge_read_bytes=merge_read,
        disk_merge_write_bytes=merge_write,
        final_read_bytes=final_read,
        spilled_records=spilled_records,
    )
