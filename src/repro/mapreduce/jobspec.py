"""Job specifications, task identities, and workload profiles."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.core.configuration import Configuration

MB = 1024 * 1024
GB = 1024 * MB

_job_ids = itertools.count(1)


class TaskType(enum.Enum):
    MAP = "map"
    REDUCE = "reduce"


@dataclass(frozen=True)
class TaskId:
    """Identifies one task within a job (Hadoop: ``task_<job>_<m|r>_<idx>``)."""

    job_id: str
    task_type: TaskType
    index: int

    def __str__(self) -> str:
        kind = "m" if self.task_type is TaskType.MAP else "r"
        return f"task_{self.job_id}_{kind}_{self.index:06d}"


@dataclass(frozen=True)
class WorkloadProfile:
    """Application characteristics that drive the dataflow model.

    All ratios are averages over the dataset; per-task variation and
    reducer skew are layered on by :class:`~repro.mapreduce.dataflow.JobDataflow`.
    """

    name: str
    #: Map function selectivity: map-output bytes per input byte
    #: (*before* the combiner).
    map_output_ratio: float
    #: Average map-output record size in bytes.
    map_output_record_size: float
    #: Whether the job registers a combiner.
    has_combiner: bool = False
    #: Combiner selectivity when it sees a full buffer of records
    #: (output/input, in records and bytes).  1.0 = identity.
    combiner_record_ratio: float = 1.0
    combiner_byte_ratio: float = 1.0
    #: Reduce selectivity: output bytes per shuffled input byte.
    reduce_output_ratio: float = 1.0
    #: Compute demand, in core-seconds per input MB (map) and per
    #: shuffled MB (reduce).  A value of 0.4 means a 128 MB split costs
    #: ~51 core-seconds of pure compute.
    map_cpu_per_mb: float = 0.1
    reduce_cpu_per_mb: float = 0.05
    #: Fixed per-task compute cost in core-seconds (dominates for
    #: compute-bound applications such as BBP, whose input is tiny).
    map_cpu_fixed_sec: float = 0.0
    reduce_cpu_fixed_sec: float = 0.0
    #: Maximum physical cores one task can exploit (>1 only for tasks
    #: with internal parallelism, e.g. BBP's multi-threaded digits).
    map_cpu_parallelism: float = 1.0
    reduce_cpu_parallelism: float = 1.0
    #: Resident working set of the user code itself (excludes framework
    #: buffers, which the configuration controls).
    map_fixed_mem_bytes: int = 200 * MB
    reduce_fixed_mem_bytes: int = 300 * MB
    #: Reducer-partition skew: coefficient of variation of partition
    #: weights (0 = perfectly uniform).
    partition_skew: float = 0.1
    #: Per-map-task variation of output volume (lognormal sigma).
    map_output_noise: float = 0.05

    def __post_init__(self) -> None:
        if self.map_output_ratio < 0:
            raise ValueError("map_output_ratio must be >= 0")
        if not self.has_combiner and (
            self.combiner_record_ratio != 1.0 or self.combiner_byte_ratio != 1.0
        ):
            raise ValueError("combiner ratios set but has_combiner is False")


@dataclass
class JobSpec:
    """Everything needed to submit one MapReduce job."""

    name: str
    workload: WorkloadProfile
    input_path: str
    num_reducers: int
    #: Category-1 parameter: fraction of maps that must complete before
    #: reducers launch.
    slowstart: float = 0.05
    #: Job-level base configuration (tasks may override per-task).
    base_config: Configuration = field(default_factory=Configuration)
    output_path: Optional[str] = None
    job_id: str = field(default_factory=lambda: f"job_{next(_job_ids):04d}")

    def __post_init__(self) -> None:
        if self.num_reducers < 1:
            raise ValueError("num_reducers must be >= 1")
        if not 0.0 <= self.slowstart <= 1.0:
            raise ValueError("slowstart must be in [0, 1]")
        if self.output_path is None:
            self.output_path = f"/out/{self.job_id}"

    def map_task_id(self, index: int) -> TaskId:
        return TaskId(self.job_id, TaskType.MAP, index)

    def reduce_task_id(self, index: int) -> TaskId:
        return TaskId(self.job_id, TaskType.REDUCE, index)
