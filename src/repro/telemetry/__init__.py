"""Unified telemetry: typed events, the bus, and trace exporters.

The observability layer for the whole stack.  A
:class:`~repro.telemetry.bus.TelemetryBus` attached to the simulator
(``sim.telemetry``) carries typed events -- spans, decisions, monitor
samples -- from every layer (sim engine, task models, YARN, faults,
tuner) to any number of subscribers: the central monitor, the JSONL /
Chrome-trace exporters, and the metrics summary.  With no bus attached
(or no subscriber for a category) emission sites are a pointer check,
so fault-free run digests stay bit-identical and hot paths stay cheap.
"""

from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import (
    CATEGORIES,
    DEFAULT_EXPORT_CATEGORIES,
    AttemptRetry,
    AttemptSpan,
    CapacityChange,
    ContainerGranted,
    ContainerKilled,
    ContainerReleased,
    FaultInjected,
    FetchFailureReport,
    FetchRetry,
    JobFinished,
    JobSubmitted,
    MapOutputLost,
    NodeBlacklisted,
    NodeDecommission,
    NodeJoin,
    NodeLost,
    NodeSampled,
    PreemptKill,
    PreemptNotice,
    ProcessFinished,
    ProcessStarted,
    RuleFired,
    SearchDecision,
    SimEventExecuted,
    SpanEvent,
    SpeculativeLaunch,
    TaskPhaseSpan,
    TaskStatsRecorded,
    TelemetryEvent,
    TunerRollback,
    WaveOpened,
)
from repro.telemetry.export import ChromeTraceExporter, JsonlExporter, MetricsSummary

__all__ = [
    "CATEGORIES",
    "DEFAULT_EXPORT_CATEGORIES",
    "AttemptRetry",
    "AttemptSpan",
    "CapacityChange",
    "ChromeTraceExporter",
    "ContainerGranted",
    "ContainerKilled",
    "ContainerReleased",
    "FaultInjected",
    "FetchFailureReport",
    "FetchRetry",
    "JobFinished",
    "JobSubmitted",
    "JsonlExporter",
    "MapOutputLost",
    "MetricsSummary",
    "NodeBlacklisted",
    "NodeDecommission",
    "NodeJoin",
    "NodeLost",
    "NodeSampled",
    "PreemptKill",
    "PreemptNotice",
    "ProcessFinished",
    "ProcessStarted",
    "RuleFired",
    "SearchDecision",
    "SimEventExecuted",
    "SpanEvent",
    "SpeculativeLaunch",
    "TaskPhaseSpan",
    "TaskStatsRecorded",
    "TelemetryBus",
    "TelemetryEvent",
    "TunerRollback",
    "WaveOpened",
]
