"""The telemetry bus: category-keyed dispatch with zero-cost disable.

The bus is attached to a :class:`~repro.sim.engine.Simulator` (as
``sim.telemetry``) and every layer reaches it from there.  Emission
sites follow one pattern::

    tel = self.sim.telemetry
    if tel is not None and tel.wants("yarn"):
        tel.emit(ContainerGranted(time=tel.now, ...))

so when no bus is attached -- or no subscriber cares about the
category -- the event object is never even constructed.  Dispatch is
synchronous and in subscription order, so subscribers observe events
in deterministic order; subscribers must not mutate simulation state,
which keeps run digests bit-identical whether or not exporters are
attached.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

from repro.telemetry.events import CATEGORIES, TelemetryEvent

Sink = Callable[[TelemetryEvent], None]


class TelemetryBus:
    """Synchronous, deterministic pub/sub for :class:`TelemetryEvent`.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulated time;
        normally ``lambda: sim.now``.
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._sinks: Dict[str, List[Sink]] = {}
        self._wildcard: List[Sink] = []
        #: Free-form monotonic counters (``increment``); the metrics
        #: summary exporter reads these, no event is emitted for them.
        self.counters: Dict[str, float] = {}
        #: Fast-path flag for the engine's per-event hot loop: True only
        #: while some subscriber wants the ``sim`` category.  Kept as a
        #: plain attribute (not a method call) because ``step()`` checks
        #: it once per calendar event.
        self.sim_events_wanted: bool = False

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def subscribe(self, sink: Sink, categories: Iterable[str] = ("*",)) -> None:
        """Register *sink* for the given categories (``"*"`` = all)."""
        for category in categories:
            if category == "*":
                self._wildcard.append(sink)
            elif category in CATEGORIES:
                self._sinks.setdefault(category, []).append(sink)
            else:
                raise ValueError(
                    f"unknown telemetry category {category!r}; "
                    f"want one of {CATEGORIES} or '*'"
                )
        self.sim_events_wanted = self.wants("sim")

    def wants(self, category: str) -> bool:
        """True when at least one subscriber would receive *category*."""
        return bool(self._wildcard) or category in self._sinks

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (for stamping events)."""
        return self._clock()

    def emit(self, event: TelemetryEvent) -> None:
        """Deliver *event* to its category's sinks, then wildcards."""
        for sink in self._sinks.get(event.category, ()):
            sink(event)
        for sink in self._wildcard:
            sink(event)

    def increment(self, name: str, delta: float = 1.0) -> None:
        """Bump a named counter (no event dispatch)."""
        self.counters[name] = self.counters.get(name, 0.0) + delta
