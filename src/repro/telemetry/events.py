"""Typed telemetry events.

Every record on the bus is a frozen dataclass with two class-level
identifiers -- ``category`` (the subscription key) and ``kind`` (the
record type within a category) -- plus a ``time`` stamp in *simulated*
seconds.  Because all timestamps come from the simulation clock, a
serialized event stream is bit-identical across same-seed runs, which
is what makes trace digests CI-gateable.

Categories
----------
``sim``
    Engine internals: event execution and process lifecycle.  High
    volume (one record per calendar event); only exported on request.
``task``
    Task-model phase spans (map read/spill/merge, reduce
    shuffle/sort/reduce) and per-attempt spans.
``stats`` / ``node``
    The monitor feeds: completed-attempt :class:`TaskStats` and
    periodic :class:`NodeStats` samples.  The central monitor is a bus
    subscriber on these two categories.
``yarn``
    RM allocation decisions, NM container lifecycle, AM retry /
    speculation / blacklisting decisions.
``fault``
    Fault-plan injections (applied and skipped).
``tuner``
    Wave openings, rule firings, and hill-climber search decisions.
``job``
    Job submission and completion spans.
``service``
    The multi-tenant tuning service: queueing, dispatch, preemption,
    per-job completion, and the steady-state report.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Dict, Mapping, Tuple

from repro.monitor.statistics import NodeStats, TaskStats

#: Subscription keys, in the order exporters present them.
CATEGORIES: Tuple[str, ...] = (
    "sim", "task", "stats", "node", "yarn", "fault", "tuner", "job", "service",
)

#: Categories exported by default (everything but the per-event ``sim``
#: firehose, which multiplies trace size by orders of magnitude).
DEFAULT_EXPORT_CATEGORIES: Tuple[str, ...] = tuple(
    c for c in CATEGORIES if c != "sim"
)


def _plain(value: Any) -> Any:
    """Reduce a field value to JSON-serializable plain data."""
    if isinstance(value, enum.Enum):
        return value.name.lower()
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


@dataclass(frozen=True)
class TelemetryEvent:
    """Base event: a category/kind pair plus a simulated timestamp."""

    category: ClassVar[str] = ""
    kind: ClassVar[str] = ""

    time: float = 0.0

    def to_record(self) -> Dict[str, Any]:
        """Flatten to a dict with deterministic key order.

        The first three keys are always ``time``, ``category``, and
        ``kind``; the rest follow dataclass field order.
        """
        record: Dict[str, Any] = {
            "time": self.time,
            "category": self.category,
            "kind": self.kind,
        }
        for f in fields(self):
            if f.name != "time":
                record[f.name] = _plain(getattr(self, f.name))
        return record


@dataclass(frozen=True)
class SpanEvent(TelemetryEvent):
    """A completed interval: emitted once, at ``end`` (== ``time``).

    Spans are emitted at completion rather than as begin/end pairs so a
    generator-based task model never leaves a dangling open span, and
    so each span maps directly onto one Chrome-trace complete event.
    """

    name: str = ""
    start: float = 0.0
    #: Node the span ran on; ``-1`` places it on the cluster track.
    node_id: int = -1
    #: Track within the node (one per container, per the trace layout).
    track: str = ""

    @property
    def end(self) -> float:
        return self.time

    @property
    def duration(self) -> float:
        return max(0.0, self.time - self.start)


# ----------------------------------------------------------------------
# sim: engine internals
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SimEventExecuted(TelemetryEvent):
    """One calendar event fired (the successor of ``trace_log``)."""

    category: ClassVar[str] = "sim"
    kind: ClassVar[str] = "event"

    description: str = ""


@dataclass(frozen=True)
class ProcessStarted(TelemetryEvent):
    category: ClassVar[str] = "sim"
    kind: ClassVar[str] = "process_start"

    name: str = ""


@dataclass(frozen=True)
class ProcessFinished(TelemetryEvent):
    category: ClassVar[str] = "sim"
    kind: ClassVar[str] = "process_end"

    name: str = ""
    failed: bool = False


# ----------------------------------------------------------------------
# task: phase and attempt spans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskPhaseSpan(SpanEvent):
    """One task-model phase (``map.read``, ``reduce.shuffle``, ...)."""

    category: ClassVar[str] = "task"
    kind: ClassVar[str] = "phase"

    job_id: str = ""
    task: str = ""
    attempt: int = 0
    detail: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class AttemptSpan(SpanEvent):
    """A whole task attempt, emitted when its stats are recorded."""

    category: ClassVar[str] = "task"
    kind: ClassVar[str] = "attempt"

    job_id: str = ""
    task: str = ""
    attempt: int = 0
    failed: bool = False
    speculative: bool = False


@dataclass(frozen=True)
class FetchRetry(TelemetryEvent):
    """One failed shuffle fetch attempt (timeout or connection error)."""

    category: ClassVar[str] = "task"
    kind: ClassVar[str] = "fetch_retry"

    task: str = ""
    attempt: int = 0
    map_index: int = -1
    src_node_id: int = -1
    dst_node_id: int = -1
    reason: str = ""
    retry: int = 0


# ----------------------------------------------------------------------
# stats / node: the monitor feeds
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskStatsRecorded(TelemetryEvent):
    """A completed attempt's counters, as the AM reports them."""

    category: ClassVar[str] = "stats"
    kind: ClassVar[str] = "task_stats"

    stats: TaskStats = None  # type: ignore[assignment]

    def to_record(self) -> Dict[str, Any]:
        s = self.stats
        return {
            "time": self.time,
            "category": self.category,
            "kind": self.kind,
            "job_id": s.task_id.job_id,
            "task": str(s.task_id),
            "task_type": s.task_type.name.lower(),
            "attempt": s.attempt,
            "node_id": s.node_id,
            "start": s.start_time,
            "end": s.end_time,
            "cpu_utilization": s.cpu_utilization,
            "memory_utilization": s.memory_utilization,
            "spill_ratio": s.spill_ratio,
            "failed": s.failed,
            "failure_kind": s.failure_kind,
            "speculative": s.speculative,
            "wave": s.wave,
        }


@dataclass(frozen=True)
class NodeSampled(TelemetryEvent):
    """One slave-monitor sample of a node's resource state."""

    category: ClassVar[str] = "node"
    kind: ClassVar[str] = "node_sample"

    stats: NodeStats = None  # type: ignore[assignment]

    def to_record(self) -> Dict[str, Any]:
        s = self.stats
        return {
            "time": self.time,
            "category": self.category,
            "kind": self.kind,
            "node_id": s.node_id,
            "cpu_utilization": s.cpu_utilization,
            "memory_utilization": s.memory_utilization,
            "running_containers": s.running_containers,
            "rx_utilization": s.rx_utilization,
            "tx_utilization": s.tx_utilization,
        }


# ----------------------------------------------------------------------
# yarn: RM / NM / AM decisions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ContainerGranted(TelemetryEvent):
    """The RM satisfied an allocation request."""

    category: ClassVar[str] = "yarn"
    kind: ClassVar[str] = "container_granted"

    node_id: int = -1
    container_id: int = -1
    memory_bytes: float = 0.0
    cores: float = 0.0


@dataclass(frozen=True)
class ContainerReleased(TelemetryEvent):
    category: ClassVar[str] = "yarn"
    kind: ClassVar[str] = "container_released"

    node_id: int = -1
    container_id: int = -1


@dataclass(frozen=True)
class ContainerKilled(TelemetryEvent):
    """An NM killed a running container (fault, preemption, OOM...)."""

    category: ClassVar[str] = "yarn"
    kind: ClassVar[str] = "container_killed"

    node_id: int = -1
    container_id: int = -1
    reason: str = ""
    detail: str = ""


@dataclass(frozen=True)
class NodeLost(TelemetryEvent):
    """The RM expired a node's liveness (crash / decommission)."""

    category: ClassVar[str] = "yarn"
    kind: ClassVar[str] = "node_lost"

    node_id: int = -1


@dataclass(frozen=True)
class NodeBlacklisted(TelemetryEvent):
    """An AM stopped requesting containers on a failing node."""

    category: ClassVar[str] = "yarn"
    kind: ClassVar[str] = "node_blacklisted"

    node_id: int = -1
    job_id: str = ""
    failures: int = 0


@dataclass(frozen=True)
class NodeDecommission(TelemetryEvent):
    """A node entered graceful drain: no new containers, running tasks
    finish, then the node leaves the cluster."""

    category: ClassVar[str] = "yarn"
    kind: ClassVar[str] = "node_decommission"

    node_id: int = -1
    running_containers: int = 0


@dataclass(frozen=True)
class NodeJoin(TelemetryEvent):
    """A new node registered mid-run and entered scheduling."""

    category: ClassVar[str] = "yarn"
    kind: ClassVar[str] = "node_join"

    node_id: int = -1
    rack: int = 0


@dataclass(frozen=True)
class PreemptNotice(TelemetryEvent):
    """A spot-preemption notice landed: the node will be hard-killed at
    ``deadline`` and stops accepting containers immediately."""

    category: ClassVar[str] = "yarn"
    kind: ClassVar[str] = "preempt_notice"

    node_id: int = -1
    deadline: float = 0.0
    running_containers: int = 0


@dataclass(frozen=True)
class PreemptKill(TelemetryEvent):
    """The grace window expired: remaining containers were killed and
    the node was reclaimed."""

    category: ClassVar[str] = "yarn"
    kind: ClassVar[str] = "preempt_kill"

    node_id: int = -1
    killed_containers: int = 0


@dataclass(frozen=True)
class CapacityChange(TelemetryEvent):
    """Cluster capacity changed: a node joined or departed."""

    category: ClassVar[str] = "node"
    kind: ClassVar[str] = "capacity_change"

    node_id: int = -1
    action: str = ""  # "join" | "depart"
    live_nodes: int = 0
    live_yarn_memory_bytes: float = 0.0


@dataclass(frozen=True)
class AttemptRetry(TelemetryEvent):
    """An AM re-queued a failed attempt (the retry ladder)."""

    category: ClassVar[str] = "yarn"
    kind: ClassVar[str] = "attempt_retry"

    job_id: str = ""
    task: str = ""
    attempt: int = 0
    next_attempt: int = 0
    failure_kind: str = ""
    reason: str = ""


@dataclass(frozen=True)
class FetchFailureReport(TelemetryEvent):
    """A reducer reported repeated fetch failures against a map output."""

    category: ClassVar[str] = "yarn"
    kind: ClassVar[str] = "fetch_failure_report"

    job_id: str = ""
    map_index: int = -1
    src_node_id: int = -1
    reporter: str = ""
    distinct_reporters: int = 0


@dataclass(frozen=True)
class MapOutputLost(TelemetryEvent):
    """Fetch-failure reports crossed the threshold; the map re-executes."""

    category: ClassVar[str] = "yarn"
    kind: ClassVar[str] = "map_output_lost"

    job_id: str = ""
    map_index: int = -1
    src_node_id: int = -1
    reports: int = 0


@dataclass(frozen=True)
class SpeculativeLaunch(TelemetryEvent):
    """The AM launched a backup attempt for a straggler."""

    category: ClassVar[str] = "yarn"
    kind: ClassVar[str] = "speculative_launch"

    job_id: str = ""
    task: str = ""
    attempt: int = 0


# ----------------------------------------------------------------------
# fault: injected scenario steps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultInjected(TelemetryEvent):
    """One fault-plan entry was applied (or skipped as moot)."""

    category: ClassVar[str] = "fault"
    kind: ClassVar[str] = "fault"

    fault_kind: str = ""
    node_id: int = -1
    applied: bool = True
    detail: str = ""


# ----------------------------------------------------------------------
# tuner: MRONLINE decisions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WaveOpened(TelemetryEvent):
    """The tuner handed a fresh batch of test configs to a wave."""

    category: ClassVar[str] = "tuner"
    kind: ClassVar[str] = "wave_opened"

    job_id: str = ""
    task_type: str = ""
    wave: int = 0
    num_configs: int = 0


@dataclass(frozen=True)
class RuleFired(TelemetryEvent):
    """A tuning rule adjusted bounds (aggressive) or config (conservative)."""

    category: ClassVar[str] = "tuner"
    kind: ClassVar[str] = "rule_fired"

    job_id: str = ""
    task_type: str = ""
    rule: str = ""
    detail: str = ""


@dataclass(frozen=True)
class TunerRollback(TelemetryEvent):
    """A candidate wave tripped the failure-cost gate; the search voided
    it and re-proposed around the last-known-good configuration."""

    category: ClassVar[str] = "tuner"
    kind: ClassVar[str] = "tuner_rollback"

    job_id: str = ""
    task_type: str = ""
    wave: int = 0
    suspect_samples: int = 0
    total_samples: int = 0


@dataclass(frozen=True)
class SearchDecision(TelemetryEvent):
    """One hill-climber step: accept / reject / shrink / infeasible..."""

    category: ClassVar[str] = "tuner"
    kind: ClassVar[str] = "search_decision"

    job_id: str = ""
    task_type: str = ""
    decision: str = ""
    detail: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class TunerCrash(TelemetryEvent):
    """The tuner process died; wave gates fall back to releasing tasks
    immediately on the last-known-good configuration until recovery."""

    category: ClassVar[str] = "tuner"
    kind: ClassVar[str] = "tuner_crash"

    down_until: float = 0.0
    open_searches: int = 0
    voided_waves: int = 0


@dataclass(frozen=True)
class TunerRecovered(TelemetryEvent):
    """The tuner restarted after a crash: outage-spanning waves were
    quarantined and the search resumed from the incumbent."""

    category: ClassVar[str] = "tuner"
    kind: ClassVar[str] = "tuner_recovered"

    downtime: float = 0.0
    reopened_waves: int = 0


@dataclass(frozen=True)
class MonitorOutage(TelemetryEvent):
    """The central monitor went dark: slave-stats samples in the window
    are lost and Eq-1 windows bridge the gap instead of reading zeros."""

    category: ClassVar[str] = "fault"
    kind: ClassVar[str] = "monitor_outage"

    until: float = 0.0


@dataclass(frozen=True)
class StatsGap(TelemetryEvent):
    """One slave monitor stopped reporting for a window."""

    category: ClassVar[str] = "fault"
    kind: ClassVar[str] = "stats_gap"

    node_id: int = -1
    until: float = 0.0


@dataclass(frozen=True)
class WorkerHang(TelemetryEvent):
    """The local backend's watchdog SIGKILLed a worker that blew its
    wall-clock liveness deadline; the task retries as ``hang``."""

    category: ClassVar[str] = "fault"
    kind: ClassVar[str] = "worker_hang"

    task: str = ""
    deadline: float = 0.0
    attempt: int = 0


# ----------------------------------------------------------------------
# service: the multi-tenant tuning service
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServiceJobQueued(TelemetryEvent):
    """A tenant's job arrived and entered its per-tenant queue."""

    category: ClassVar[str] = "service"
    kind: ClassVar[str] = "job_queued"

    tenant: str = ""
    job_name: str = ""
    arrival: float = 0.0


@dataclass(frozen=True)
class ServiceJobDispatched(TelemetryEvent):
    """The fair-share dispatcher started a queued job on the cluster."""

    category: ClassVar[str] = "service"
    kind: ClassVar[str] = "job_dispatched"

    tenant: str = ""
    job_id: str = ""
    job_name: str = ""
    queue_delay: float = 0.0
    warm_started: bool = False


@dataclass(frozen=True)
class ServicePreemption(TelemetryEvent):
    """A starved tenant preempted capacity: the most over-share running
    job was down-weighted and the waiting job dispatched over it."""

    category: ClassVar[str] = "service"
    kind: ClassVar[str] = "preemption"

    tenant: str = ""
    victim_tenant: str = ""
    victim_job_id: str = ""
    waited: float = 0.0


@dataclass(frozen=True)
class ServiceJobCompleted(TelemetryEvent):
    """One service job finished; latency is completion minus arrival."""

    category: ClassVar[str] = "service"
    kind: ClassVar[str] = "job_completed"

    tenant: str = ""
    job_id: str = ""
    job_name: str = ""
    latency: float = 0.0
    slo_met: bool = True


@dataclass(frozen=True)
class ServiceSteadyState(TelemetryEvent):
    """The end-of-run steady-state report, as one summary record."""

    category: ClassVar[str] = "service"
    kind: ClassVar[str] = "steady_state"

    jobs_completed: int = 0
    throughput_jobs_per_sec: float = 0.0
    p50_latency: float = 0.0
    p95_latency: float = 0.0
    slo_attainment: float = 0.0
    preemptions: int = 0


# ----------------------------------------------------------------------
# job: submission and completion
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSubmitted(TelemetryEvent):
    category: ClassVar[str] = "job"
    kind: ClassVar[str] = "job_submitted"

    job_id: str = ""
    name: str = ""
    num_maps: int = 0
    num_reduces: int = 0


@dataclass(frozen=True)
class JobFinished(SpanEvent):
    """The whole job as a span, emitted when its result materializes."""

    category: ClassVar[str] = "job"
    kind: ClassVar[str] = "job_finished"

    job_id: str = ""
    succeeded: bool = True
