"""Exporters: JSONL event log, Chrome trace, and a metrics summary.

All three are plain bus subscribers.  Because every timestamp is
simulated time and dispatch order is deterministic, two same-seed runs
produce byte-identical exports -- the CI trace-digest gate depends on
this.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import Counter
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import (
    DEFAULT_EXPORT_CATEGORIES,
    SpanEvent,
    TelemetryEvent,
)

#: Simulated seconds -> Chrome trace microseconds.
_US = 1_000_000.0


class JsonlExporter:
    """Serializes events to JSON Lines: one object per line.

    Key order is fixed (``time``, ``category``, ``kind``, then event
    fields in declaration order) and floats are emitted verbatim, so
    the byte stream is a function of the event stream alone.
    """

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def attach(
        self,
        bus: TelemetryBus,
        categories: Iterable[str] = DEFAULT_EXPORT_CATEGORIES,
    ) -> "JsonlExporter":
        bus.subscribe(self.on_event, categories)
        return self

    def on_event(self, event: TelemetryEvent) -> None:
        self.records.append(event.to_record())

    def dumps(self) -> str:
        return "".join(
            json.dumps(r, separators=(",", ":")) + "\n" for r in self.records
        )

    def digest(self) -> str:
        """sha256 of the serialized log (the CI determinism gate)."""
        return hashlib.sha256(self.dumps().encode()).hexdigest()

    def save(self, path: str) -> None:
        """Crash-safe write: the log appears atomically or not at all.

        The bytes land in a sibling ``<path>.tmp`` first and are
        fsynced, then renamed over *path* -- a crash mid-write leaves
        any previous log intact instead of a torn half-file.
        """
        tmp = path + ".tmp"
        try:
            with open(tmp, "w") as fh:
                fh.write(self.dumps())
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise


def replay_records(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL file, tolerating a torn final line.

    Append-mode writers (the recovery journal) can die mid-line; every
    complete line before the tear is intact by construction, so replay
    returns those and silently drops a trailing partial record.  A
    malformed line *before* the end still raises -- that is corruption,
    not a crash artifact.
    """
    records: List[Dict[str, Any]] = []
    with open(path) as fh:
        lines = fh.read().split("\n")
    # A well-formed file ends with "\n", leaving a final empty chunk.
    for i, line in enumerate(lines):
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn final line: the crash ate the tail
            raise
    return records


class ChromeTraceExporter:
    """Renders events in Chrome trace-event JSON (Perfetto-viewable).

    Layout: one trace *process* per cluster node (pid ``node_id + 1``;
    pid 0 is the cluster-wide track for tuner/job/fault events), one
    *thread* per span track (container / task lane) within it.  Spans
    become complete ("ph": "X") slices; point events become
    thread-scoped instants ("ph": "i").
    """

    def __init__(self) -> None:
        self.events: List[TelemetryEvent] = []

    def attach(
        self,
        bus: TelemetryBus,
        categories: Iterable[str] = DEFAULT_EXPORT_CATEGORIES,
    ) -> "ChromeTraceExporter":
        bus.subscribe(self.on_event, categories)
        return self

    def on_event(self, event: TelemetryEvent) -> None:
        self.events.append(event)

    @staticmethod
    def _pid(event: TelemetryEvent) -> int:
        node_id = getattr(event, "node_id", -1)
        if isinstance(node_id, int) and node_id >= 0:
            return node_id + 1
        return 0

    @staticmethod
    def _track(event: TelemetryEvent) -> str:
        track = getattr(event, "track", "")
        return track if track else event.category

    def trace_events(self) -> List[Dict[str, Any]]:
        """The ``traceEvents`` array, metadata first."""
        # Stable thread ids: assign per-pid ordinals over the sorted
        # track names so the layout does not depend on event order.
        tracks: Dict[Tuple[int, str], int] = {}
        pids = sorted({self._pid(ev) for ev in self.events})
        for pid in pids:
            names = sorted(
                {self._track(ev) for ev in self.events if self._pid(ev) == pid}
            )
            for tid, name in enumerate(names, start=1):
                tracks[(pid, name)] = tid

        out: List[Dict[str, Any]] = []
        for pid in pids:
            name = "cluster" if pid == 0 else f"node-{pid - 1}"
            out.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        for (pid, track), tid in sorted(tracks.items()):
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )

        for ev in self.events:
            pid = self._pid(ev)
            tid = tracks[(pid, self._track(ev))]
            record = ev.to_record()
            args = {
                k: v
                for k, v in record.items()
                if k not in ("time", "category", "kind")
            }
            if isinstance(ev, SpanEvent):
                out.append(
                    {
                        "name": ev.name or ev.kind,
                        "cat": ev.category,
                        "ph": "X",
                        "ts": ev.start * _US,
                        "dur": ev.duration * _US,
                        "pid": pid,
                        "tid": tid,
                        "args": args,
                    }
                )
            else:
                out.append(
                    {
                        "name": ev.kind,
                        "cat": ev.category,
                        "ph": "i",
                        "ts": ev.time * _US,
                        "pid": pid,
                        "tid": tid,
                        "s": "t",
                        "args": args,
                    }
                )
        return out

    def to_json(self) -> str:
        doc = {
            "traceEvents": self.trace_events(),
            "displayTimeUnit": "ms",
        }
        return json.dumps(doc, separators=(",", ":"))

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())


class MetricsSummary:
    """Aggregates the stream into a compact per-kind summary table."""

    def __init__(self, bus: Optional[TelemetryBus] = None) -> None:
        self.bus = bus
        self.counts: Counter = Counter()
        self.span_totals: Dict[str, float] = {}
        self.span_counts: Counter = Counter()
        self.first_time: Optional[float] = None
        self.last_time: float = 0.0

    def attach(
        self,
        bus: TelemetryBus,
        categories: Iterable[str] = ("*",),
    ) -> "MetricsSummary":
        self.bus = bus
        bus.subscribe(self.on_event, categories)
        return self

    def on_event(self, event: TelemetryEvent) -> None:
        self.counts[(event.category, event.kind)] += 1
        if self.first_time is None:
            self.first_time = event.time
        self.last_time = max(self.last_time, event.time)
        if isinstance(event, SpanEvent):
            name = event.name or event.kind
            self.span_totals[name] = self.span_totals.get(name, 0.0) + event.duration
            self.span_counts[name] += 1

    def as_dict(self) -> Dict[str, Any]:
        return {
            "events": {
                f"{cat}.{kind}": n
                for (cat, kind), n in sorted(self.counts.items())
            },
            "spans": {
                name: {
                    "count": self.span_counts[name],
                    "total_seconds": self.span_totals[name],
                }
                for name in sorted(self.span_totals)
            },
            "counters": dict(sorted(self.bus.counters.items())) if self.bus else {},
            "span_seconds": [self.first_time or 0.0, self.last_time],
        }

    def render(self) -> str:
        from repro.experiments.reporting import format_table

        lines = []
        if self.counts:
            rows = [
                [f"{cat}.{kind}", n]
                for (cat, kind), n in sorted(self.counts.items())
            ]
            lines.append(format_table(["event", "count"], rows))
        if self.span_totals:
            rows = [
                [name, self.span_counts[name], f"{self.span_totals[name]:.1f}"]
                for name in sorted(self.span_totals)
            ]
            lines.append(format_table(["span", "count", "total (s)"], rows))
        if self.bus and self.bus.counters:
            rows = [[k, v] for k, v in sorted(self.bus.counters.items())]
            lines.append(format_table(["counter", "value"], rows))
        return "\n\n".join(lines) if lines else "(no telemetry events)"
