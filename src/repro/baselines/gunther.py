"""A Gunther-style genetic-algorithm offline tuner.

Gunther [25] searches the configuration space with a GA where every
fitness evaluation is a **full test run** with a single configuration;
the paper reports 20-40 such runs to converge.  This baseline exists to
reproduce that comparison: MRONLINE finishes its search inside one test
run, Gunther needs tens.

The GA itself is standard: tournament selection, uniform crossover,
Gaussian mutation in the unit cube, elitism of one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.configuration import Configuration, enforce_dependencies
from repro.core.parameters import PARAMETER_SPACE, ParameterSpace


@dataclass(frozen=True)
class GuntherSettings:
    population: int = 8
    generations: int = 4
    tournament: int = 3
    crossover_rate: float = 0.8
    mutation_sigma: float = 0.12
    elitism: int = 1

    @property
    def total_runs(self) -> int:
        """Test runs consumed: one per individual per generation."""
        return self.population * self.generations


class GeneticTuner:
    """Offline GA tuning: one full job run per fitness evaluation."""

    def __init__(
        self,
        evaluate: Callable[[Configuration], float],
        rng: np.random.Generator,
        settings: Optional[GuntherSettings] = None,
        space: Optional[ParameterSpace] = None,
    ) -> None:
        self.evaluate = evaluate
        self.rng = rng
        self.settings = settings or GuntherSettings()
        self.space = space or PARAMETER_SPACE
        #: (config, fitness) of every test run performed, in order.
        self.evaluations: List[Tuple[Configuration, float]] = []

    def _decode(self, point: np.ndarray) -> Configuration:
        return enforce_dependencies(Configuration(self.space.decode(point)))

    def _fitness(self, point: np.ndarray) -> float:
        config = self._decode(point)
        value = float(self.evaluate(config))
        self.evaluations.append((config, value))
        return value

    def run(self) -> Tuple[Configuration, float]:
        """Run the GA; returns (best configuration, best fitness).

        Fitness is minimized (it is typically the job execution time).
        """
        st = self.settings
        dims = len(self.space)
        population = self.rng.random((st.population, dims))
        fitness = np.array([self._fitness(p) for p in population])
        for _gen in range(1, st.generations):
            order = np.argsort(fitness)
            next_pop: List[np.ndarray] = [
                population[i].copy() for i in order[: st.elitism]
            ]
            while len(next_pop) < st.population:
                a = self._tournament(population, fitness)
                b = self._tournament(population, fitness)
                child = self._crossover(a, b)
                child = self._mutate(child)
                next_pop.append(child)
            population = np.stack(next_pop)
            fitness = np.array([self._fitness(p) for p in population])
        best = int(np.argmin(fitness))
        return self._decode(population[best]), float(fitness[best])

    def best_after_runs(self, runs: int) -> float:
        """Best fitness seen within the first *runs* test runs."""
        if not self.evaluations:
            raise RuntimeError("run() has not been called")
        window = self.evaluations[: max(1, runs)]
        return min(v for _c, v in window)

    # -- GA operators ------------------------------------------------------
    def _tournament(self, population: np.ndarray, fitness: np.ndarray) -> np.ndarray:
        idx = self.rng.integers(0, len(population), size=self.settings.tournament)
        winner = idx[np.argmin(fitness[idx])]
        return population[winner]

    def _crossover(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.rng.random() > self.settings.crossover_rate:
            return a.copy()
        mask = self.rng.random(len(a)) < 0.5
        return np.where(mask, a, b)

    def _mutate(self, point: np.ndarray) -> np.ndarray:
        noise = self.rng.normal(0.0, self.settings.mutation_sigma, size=len(point))
        return np.clip(point + noise, 0.0, 1.0)
