"""Comparison baselines for the evaluation.

* :mod:`repro.baselines.default_config` -- the stock YARN defaults.
* :mod:`repro.baselines.offline_guide` -- the static expert
  configuration an administrator derives from a vendor tuning guide
  (the paper compares against Cloudera's guide).
* :mod:`repro.baselines.gunther` -- a genetic-algorithm offline tuner
  in the style of Gunther [25], one full test run per configuration.
* :mod:`repro.baselines.random_search` -- uniform random search, the
  sampling-quality foil for LHS.
* :mod:`repro.baselines.starfish` -- a Starfish-style profile + what-if
  + cost-based-optimizer pipeline [15].
"""

from repro.baselines.default_config import default_configuration
from repro.baselines.gunther import GeneticTuner, GuntherSettings
from repro.baselines.offline_guide import offline_guide_config
from repro.baselines.random_search import random_configurations
from repro.baselines.starfish import (
    AnalyticWhatIfEngine,
    CostBasedOptimizer,
    JobProfile,
    starfish_tune,
)

__all__ = [
    "AnalyticWhatIfEngine",
    "CostBasedOptimizer",
    "GeneticTuner",
    "GuntherSettings",
    "JobProfile",
    "default_configuration",
    "offline_guide_config",
    "random_configurations",
    "starfish_tune",
]
