"""The offline tuning-guide baseline.

Models what an administrator produces after profiling test runs with a
vendor guide (the paper uses Cloudera's "Optimizing MapReduce job
performance" [2]): a single static configuration per job, derived from
the job's *known* aggregate characteristics.  The guide's standard
recommendations:

* size ``io.sort.mb`` to hold the average map output (plus headroom),
  and the map container to hold the buffer plus the JVM;
* set a high spill threshold so in-memory sorts don't trigger writes;
* size the reduce heap so the average partition fits in the shuffle
  buffer; keep merged segments in memory through the reduce phase;
* scale ``parallelcopies`` with cluster size; raise ``io.sort.factor``
  for jobs with many spills.

Unlike MRONLINE this requires up-front knowledge of the job's data
volumes (which the admin gets from profiling runs -- the very test runs
the paper wants to eliminate), applies one configuration to every task,
and cannot react to runtime conditions.
"""

from __future__ import annotations

import math

from repro.core import parameters as P
from repro.core.configuration import HEAP_FRACTION, Configuration, enforce_dependencies
from repro.workloads.suite import BenchmarkCase

MB = 1024 * 1024


def offline_guide_config(case: BenchmarkCase, num_nodes: int = 18) -> Configuration:
    """Derive the guide's static configuration for one benchmark case."""
    profile = case.profile
    avg_split = case.dataset.block_size

    # --- map side -----------------------------------------------------
    map_output_mb = avg_split * profile.map_output_ratio / MB
    sort_mb = max(100, math.ceil(map_output_mb * 1.2 / 10) * 10)
    # Container: buffer + typical user code (the guide budgets ~0.5 GB).
    map_mb = math.ceil((sort_mb + 512) / HEAP_FRACTION / 64) * 64

    # --- reduce side ----------------------------------------------------
    shuffle_per_reducer_mb = case.expected_shuffle_bytes / case.num_reducers / MB
    reduce_heap_mb = shuffle_per_reducer_mb / 0.7 + 512
    reduce_mb = math.ceil(reduce_heap_mb / HEAP_FRACTION / 64) * 64

    config = Configuration(
        {
            P.MAP_MEMORY_MB: map_mb,
            P.REDUCE_MEMORY_MB: reduce_mb,
            P.IO_SORT_MB: sort_mb,
            P.SORT_SPILL_PERCENT: 0.95,
            P.SHUFFLE_INPUT_BUFFER_PERCENT: 0.7,
            P.SHUFFLE_MERGE_PERCENT: 0.66,
            P.SHUFFLE_MEMORY_LIMIT_PERCENT: 0.25,
            P.MERGE_INMEM_THRESHOLD: 0,
            P.REDUCE_INPUT_BUFFER_PERCENT: 0.7,
            P.MAP_CPU_VCORES: 1,
            P.REDUCE_CPU_VCORES: 1,
            P.IO_SORT_FACTOR: 64,
            P.SHUFFLE_PARALLELCOPIES: max(5, num_nodes),
        }
    )
    return enforce_dependencies(config)
