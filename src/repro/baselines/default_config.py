"""The default YARN configuration (Table 2's "Default Value" column)."""

from __future__ import annotations

from repro.core.configuration import Configuration


def default_configuration() -> Configuration:
    """Stock YARN defaults: exactly the paper's comparison baseline.

    :class:`~repro.core.configuration.Configuration` already fills every
    parameter with its Table-2 default; this function exists so that
    experiment code names its baseline explicitly.
    """
    return Configuration()
