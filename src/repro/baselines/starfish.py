"""A Starfish-style cost-based offline optimizer.

Starfish [15] (Herodotou et al., CIDR'11) profiles one job run, then
uses an analytic *what-if engine* to predict the execution time of
candidate configurations and a cost-based optimizer to pick one -- no
further test runs.  The paper contrasts MRONLINE with it: "the
effectiveness of this approach depends on the accuracy of the what-if
engine".

This baseline reproduces that architecture honestly:

* :class:`JobProfile` -- the measurements a profiling run yields
  (volumes, per-phase rates), taken from real task statistics;
* :class:`AnalyticWhatIfEngine` -- closed-form per-phase time
  estimates driven by the same Table-2 parameters, but **without** the
  simulator's contention effects (that is precisely the fidelity gap
  the paper exploits);
* :class:`CostBasedOptimizer` -- recursive random search over the
  what-if estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import parameters as P
from repro.core.configuration import HEAP_FRACTION, Configuration, enforce_dependencies
from repro.core.parameters import PARAMETER_SPACE, ParameterSpace
from repro.mapreduce.jobspec import TaskType
from repro.mapreduce.sortspill import plan_map_spills, plan_reduce_merge
from repro.yarn.app_master import JobResult

MB = 1024 * 1024


@dataclass(frozen=True)
class JobProfile:
    """What one profiling run measures (Starfish's "job profile")."""

    num_maps: int
    num_reducers: int
    map_input_bytes: float  # per map
    map_output_bytes: float  # per map, pre-combiner
    map_output_records: int  # per map
    combiner_byte_ratio: float
    combiner_record_ratio: float
    has_combiner: bool
    reduce_input_bytes: float  # per reducer
    reduce_output_bytes: float  # per reducer
    map_cpu_seconds: float  # per map
    reduce_cpu_seconds: float  # per reducer
    #: Profiled user-code working sets (Starfish profiles memory too;
    #: without these the what-if engine recommends OOM-lethal buffers).
    map_user_mem_bytes: float = 200 * 1024 * 1024
    reduce_user_mem_bytes: float = 300 * 1024 * 1024
    # Cluster constants the profiler reads from configuration.
    nodes: int = 18
    disk_read_bw: float = 110 * MB
    disk_write_bw: float = 90 * MB
    node_memory_bytes: float = 6 * 1024 * MB
    node_vcores: int = 28
    shuffle_stream_bw: float = 12 * MB

    @classmethod
    def from_result(cls, result: JobResult, nodes: int = 18) -> "JobProfile":
        """Extract a profile from a (typically default-config) run."""
        maps = [s for s in result.stats_of(TaskType.MAP) if not s.failed]
        reds = [s for s in result.stats_of(TaskType.REDUCE) if not s.failed]
        if not maps or not reds:
            raise ValueError("profiling run must have successful map and reduce tasks")
        map_out = float(np.mean([s.map_output_bytes for s in maps]))
        combine_out = float(np.mean([s.combine_output_records for s in maps]))
        map_records = float(np.mean([s.map_output_records for s in maps]))
        has_combiner = combine_out > 0
        ratio = combine_out / map_records if has_combiner and map_records else 1.0
        base = 150 * MB  # container overhead outside the heap buffers
        map_user = max(
            s.working_set_bytes
            - base
            - min(float(s.config.get(P.IO_SORT_MB, 100)) * MB, s.map_output_bytes)
            for s in maps
        )
        reduce_user = max(
            s.working_set_bytes
            - base
            - min(
                float(s.config.get(P.REDUCE_MEMORY_MB, 1024))
                * MB
                * HEAP_FRACTION
                * float(s.config.get(P.SHUFFLE_INPUT_BUFFER_PERCENT, 0.7)),
                s.shuffled_bytes,
            )
            for s in reds
        )
        return cls(
            num_maps=len(maps),
            num_reducers=len(reds),
            map_input_bytes=128 * MB,
            map_output_bytes=map_out,
            map_output_records=int(map_records),
            combiner_byte_ratio=ratio,
            combiner_record_ratio=ratio,
            has_combiner=has_combiner,
            reduce_input_bytes=float(np.mean([s.shuffled_bytes for s in reds])),
            reduce_output_bytes=float(np.mean([s.shuffled_bytes for s in reds])),
            map_cpu_seconds=float(np.mean([s.cpu_seconds for s in maps])),
            reduce_cpu_seconds=float(np.mean([s.cpu_seconds for s in reds])),
            map_user_mem_bytes=max(0.0, map_user),
            reduce_user_mem_bytes=max(0.0, reduce_user),
            nodes=nodes,
        )


class AnalyticWhatIfEngine:
    """Closed-form job-time prediction (no contention modelling)."""

    def __init__(self, profile: JobProfile) -> None:
        self.profile = profile

    # -- per-task estimates ----------------------------------------------
    def map_task_time(self, config: Configuration) -> float:
        p = self.profile
        # Infeasible: sort buffer + user code cannot fit the heap.
        if p.map_user_mem_bytes + config.sort_buffer_bytes > config.map_heap_bytes:
            return float("inf")
        plan = plan_map_spills(
            output_records=p.map_output_records,
            output_bytes=p.map_output_bytes,
            sort_buffer_bytes=config.sort_buffer_bytes,
            spill_percent=float(config[P.SORT_SPILL_PERCENT]),
            sort_factor=int(config[P.IO_SORT_FACTOR]),
            has_combiner=p.has_combiner,
            combiner_record_ratio=p.combiner_record_ratio,
            combiner_byte_ratio=p.combiner_byte_ratio,
        )
        read = p.map_input_bytes / p.disk_read_bw
        write = plan.total_disk_write_bytes / p.disk_write_bw
        reread = plan.total_disk_read_bytes / p.disk_read_bw
        return 1.5 + max(read, p.map_cpu_seconds) + write + reread

    def reduce_task_time(self, config: Configuration) -> float:
        p = self.profile
        heap = config.reduce_heap_bytes
        plan = plan_reduce_merge(
            input_bytes=p.reduce_input_bytes,
            input_records=max(1, int(p.reduce_input_bytes / 100)),
            num_segments=p.num_maps,
            heap_bytes=heap,
            shuffle_input_buffer_percent=float(config[P.SHUFFLE_INPUT_BUFFER_PERCENT]),
            shuffle_merge_percent=float(config[P.SHUFFLE_MERGE_PERCENT]),
            shuffle_memory_limit_percent=float(config[P.SHUFFLE_MEMORY_LIMIT_PERCENT]),
            merge_inmem_threshold=int(config[P.MERGE_INMEM_THRESHOLD]),
            reduce_input_buffer_percent=float(config[P.REDUCE_INPUT_BUFFER_PERCENT]),
            sort_factor=int(config[P.IO_SORT_FACTOR]),
        )
        # Infeasible: retained segments + user code exceed the heap.
        if plan.retained_in_memory_bytes + p.reduce_user_mem_bytes > heap:
            return float("inf")
        copies = max(1, int(config[P.SHUFFLE_PARALLELCOPIES]))
        shuffle = p.reduce_input_bytes / (copies * p.shuffle_stream_bw)
        disk = (
            plan.total_disk_write_bytes / p.disk_write_bw
            + plan.total_disk_read_bytes / p.disk_read_bw
        )
        output = 2 * p.reduce_output_bytes / p.disk_write_bw  # local + replica
        return 1.5 + shuffle + disk + max(p.reduce_cpu_seconds, 0.0) + output

    # -- slot arithmetic ----------------------------------------------------
    def _concurrent(self, memory_mb: float, vcores: float) -> int:
        p = self.profile
        per_node = min(
            p.node_memory_bytes / (memory_mb * MB), p.node_vcores / max(1, vcores)
        )
        return max(1, int(per_node)) * p.nodes

    def predict(self, config: Configuration) -> float:
        """Predicted job execution time for *config*."""
        p = self.profile
        map_slots = self._concurrent(
            float(config[P.MAP_MEMORY_MB]), float(config[P.MAP_CPU_VCORES])
        )
        reduce_slots = self._concurrent(
            float(config[P.REDUCE_MEMORY_MB]), float(config[P.REDUCE_CPU_VCORES])
        )
        map_waves = math.ceil(p.num_maps / map_slots)
        reduce_waves = math.ceil(p.num_reducers / reduce_slots)
        map_phase = map_waves * self.map_task_time(config)
        # The first reduce wave's shuffle overlaps the map phase.
        reduce_phase = reduce_waves * self.reduce_task_time(config)
        return map_phase + max(0.0, reduce_phase - 0.3 * map_phase)


@dataclass
class StarfishRecommendation:
    config: Configuration
    predicted_time: float
    evaluations: int


class CostBasedOptimizer:
    """Recursive random search over the analytic what-if engine."""

    def __init__(
        self,
        engine: AnalyticWhatIfEngine,
        rng: np.random.Generator,
        space: Optional[ParameterSpace] = None,
        budget: int = 2000,
    ) -> None:
        self.engine = engine
        self.rng = rng
        self.space = space or PARAMETER_SPACE
        self.budget = budget

    def optimize(self) -> StarfishRecommendation:
        """Global random sample, then shrink around the best point."""
        dims = len(self.space)
        best_point = None
        best_time = float("inf")
        evaluations = 0

        def evaluate(point: np.ndarray) -> float:
            nonlocal evaluations
            evaluations += 1
            cfg = enforce_dependencies(Configuration(self.space.decode(point)))
            return self.engine.predict(cfg)

        # Phase 1: global scatter.
        n_global = max(10, self.budget // 2)
        for point in self.rng.random((n_global, dims)):
            t = evaluate(point)
            if t < best_time:
                best_time, best_point = t, point
        if best_point is None or not math.isfinite(best_time):
            # Everything sampled was infeasible: restart from defaults.
            best_point = self.space.default_point()
            best_time = evaluate(best_point)
        # Phase 2: recursive shrinking neighborhoods.
        radius = 0.25
        remaining = self.budget - n_global
        per_round = max(5, remaining // 6)
        while remaining > 0 and radius > 0.02:
            lo = np.clip(best_point - radius, 0, 1)
            hi = np.clip(best_point + radius, 0, 1)
            improved = False
            for point in lo + self.rng.random((min(per_round, remaining), dims)) * (hi - lo):
                t = evaluate(point)
                remaining -= 1
                if t < best_time:
                    best_time, best_point, improved = t, point, True
            if not improved:
                radius *= 0.5
        config = enforce_dependencies(Configuration(self.space.decode(best_point)))
        return StarfishRecommendation(config, best_time, evaluations)


def starfish_tune(
    profiling_result: JobResult,
    rng: Optional[np.random.Generator] = None,
    budget: int = 2000,
) -> StarfishRecommendation:
    """End-to-end Starfish flow: profile -> what-if -> optimize."""
    profile = JobProfile.from_result(profiling_result)
    engine = AnalyticWhatIfEngine(profile)
    optimizer = CostBasedOptimizer(
        engine, rng if rng is not None else np.random.default_rng(0), budget=budget
    )
    return optimizer.optimize()
