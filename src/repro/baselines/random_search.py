"""Uniform random configuration sampling.

The foil for the LHS ablation (smart hill climbing's property 3: LHS
"helps improve the sampling quality").  Random sampling has no marginal
stratification guarantee, so with small budgets it routinely leaves
whole slabs of a dimension unexplored.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.configuration import Configuration, enforce_dependencies
from repro.core.parameters import PARAMETER_SPACE, ParameterSpace


def random_points(
    rng: np.random.Generator,
    n: int,
    dims: int,
    bounds: Optional[Sequence[Tuple[float, float]]] = None,
) -> np.ndarray:
    """*n* uniform points in the unit cube (or within per-dim bounds)."""
    if n < 1 or dims < 1:
        raise ValueError("n and dims must be >= 1")
    u = rng.random((n, dims))
    if bounds is not None:
        lo = np.array([b[0] for b in bounds])
        hi = np.array([b[1] for b in bounds])
        u = lo + u * (hi - lo)
    return u


def random_configurations(
    rng: np.random.Generator,
    n: int,
    space: Optional[ParameterSpace] = None,
) -> List[Configuration]:
    """*n* feasible configurations drawn uniformly at random."""
    space = space or PARAMETER_SPACE
    points = random_points(rng, n, len(space))
    return [
        enforce_dependencies(Configuration(space.decode(p))) for p in points
    ]
