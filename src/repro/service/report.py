"""The steady-state report: what a run of the service amounts to.

All numbers are simulated-time quantities computed from the per-job
completion records, so the report of a seeded run is bit-stable and
:meth:`ServiceReport.digest` can be pinned in CI like every other
subsystem digest.  Identity is (tenant, profile, arrival index)
throughout -- never process-global job ids.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.service.tuner_service import JobTuningRecord


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class CompletedJob:
    """One finished service job, stamped in simulated seconds."""

    tenant: str
    profile: str
    index: int
    arrival: float
    dispatch: float
    completion: float
    slo_seconds: float
    warm_started: bool = False
    preempted_into: bool = False

    @property
    def latency(self) -> float:
        return self.completion - self.arrival

    @property
    def queue_delay(self) -> float:
        return self.dispatch - self.arrival

    @property
    def execution(self) -> float:
        return self.completion - self.dispatch

    @property
    def slo_met(self) -> bool:
        return self.latency <= self.slo_seconds


@dataclass(frozen=True)
class TenantReport:
    """Per-tenant slice of the steady state."""

    tenant: str
    weight: float
    jobs: int
    p50_latency: float
    p95_latency: float
    mean_queue_delay: float
    slo_attainment: float


@dataclass(frozen=True)
class ServiceReport:
    """The end-of-run summary the service exports."""

    seed: int
    backend: str
    warm_start: bool
    jobs_completed: int
    #: Last completion time (simulated seconds; wall seconds on local).
    makespan: float
    throughput_jobs_per_sec: float
    p50_latency: float
    p95_latency: float
    slo_attainment: float
    preemptions: int
    tenants: Tuple[TenantReport, ...]
    tuning: Tuple[JobTuningRecord, ...] = ()
    #: Mean wave-of-best over warm-started / cold-started sessions
    #: (0.0 when the group is empty).
    warm_mean_wave_of_best: float = 0.0
    cold_mean_wave_of_best: float = 0.0
    warm_sessions: int = 0
    cold_sessions: int = 0
    #: Mean best Equation-1 cost per group (0.0 when empty).
    warm_mean_best_cost: float = 0.0
    cold_mean_best_cost: float = 0.0
    #: Per-profile mean execution time, for tuned-vs-default deltas.
    profile_mean_execution: Tuple[Tuple[str, float], ...] = ()

    def digest(self) -> str:
        return hashlib.sha256(self.render().encode()).hexdigest()

    def render(self) -> str:
        lines = [
            f"service report (seed={self.seed}, backend={self.backend}, "
            f"warm_start={self.warm_start})",
            f"  jobs completed:  {self.jobs_completed}",
            f"  makespan:        {self.makespan:.3f} s",
            f"  throughput:      {self.throughput_jobs_per_sec:.6f} jobs/s",
            f"  latency p50/p95: {self.p50_latency:.3f} / {self.p95_latency:.3f} s",
            f"  SLO attainment:  {self.slo_attainment:.4f}",
            f"  preemptions:     {self.preemptions}",
        ]
        for t in self.tenants:
            lines.append(
                f"  tenant {t.tenant} (w={t.weight:g}): {t.jobs} jobs, "
                f"p50={t.p50_latency:.3f} p95={t.p95_latency:.3f} "
                f"queue={t.mean_queue_delay:.3f} slo={t.slo_attainment:.4f}"
            )
        if self.warm_sessions or self.cold_sessions:
            lines.append(
                f"  warm sessions:   {self.warm_sessions} "
                f"(mean wave_of_best={self.warm_mean_wave_of_best:.3f}, "
                f"mean best_cost={self.warm_mean_best_cost:.6f})"
            )
            lines.append(
                f"  cold sessions:   {self.cold_sessions} "
                f"(mean wave_of_best={self.cold_mean_wave_of_best:.3f}, "
                f"mean best_cost={self.cold_mean_best_cost:.6f})"
            )
        for profile, mean_exec in self.profile_mean_execution:
            lines.append(f"  profile {profile}: mean execution {mean_exec:.3f} s")
        for record in self.tuning:
            lines.append(f"  session {record.line()}")
        return "\n".join(lines) + "\n"


@dataclass
class _Accumulator:
    jobs: List[CompletedJob] = field(default_factory=list)


def build_report(
    seed: int,
    backend: str,
    warm_start: bool,
    completed: Sequence[CompletedJob],
    tenant_weights: Dict[str, float],
    tuning: Sequence[JobTuningRecord] = (),
    preemptions: int = 0,
) -> ServiceReport:
    """Fold completion + tuning records into the steady-state report."""
    jobs = sorted(completed, key=lambda j: (j.tenant, j.index))
    latencies = [j.latency for j in jobs]
    makespan = max((j.completion for j in jobs), default=0.0)
    per_tenant: Dict[str, _Accumulator] = {
        name: _Accumulator() for name in tenant_weights
    }
    for job in jobs:
        per_tenant.setdefault(job.tenant, _Accumulator()).jobs.append(job)
    tenant_reports = []
    for name in sorted(per_tenant):
        acc = per_tenant[name].jobs
        tenant_reports.append(
            TenantReport(
                tenant=name,
                weight=tenant_weights.get(name, 1.0),
                jobs=len(acc),
                p50_latency=percentile([j.latency for j in acc], 50),
                p95_latency=percentile([j.latency for j in acc], 95),
                mean_queue_delay=(
                    sum(j.queue_delay for j in acc) / len(acc) if acc else 0.0
                ),
                slo_attainment=(
                    sum(1 for j in acc if j.slo_met) / len(acc) if acc else 0.0
                ),
            )
        )
    records = sorted(tuning, key=lambda r: (r.tenant, r.profile, r.index))
    warm = [r for r in records if r.warm_started]
    cold = [r for r in records if not r.warm_started]

    def _mean(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    by_profile: Dict[str, List[float]] = {}
    for job in jobs:
        by_profile.setdefault(job.profile, []).append(job.execution)
    profile_means = tuple(
        (profile, _mean(execs)) for profile, execs in sorted(by_profile.items())
    )
    return ServiceReport(
        seed=seed,
        backend=backend,
        warm_start=warm_start,
        jobs_completed=len(jobs),
        makespan=makespan,
        throughput_jobs_per_sec=(len(jobs) / makespan if makespan > 0 else 0.0),
        p50_latency=percentile(latencies, 50),
        p95_latency=percentile(latencies, 95),
        slo_attainment=(
            sum(1 for j in jobs if j.slo_met) / len(jobs) if jobs else 0.0
        ),
        preemptions=preemptions,
        tenants=tuple(tenant_reports),
        tuning=tuple(records),
        warm_mean_wave_of_best=_mean([float(r.wave_of_best) for r in warm]),
        cold_mean_wave_of_best=_mean([float(r.wave_of_best) for r in cold]),
        warm_sessions=len(warm),
        cold_sessions=len(cold),
        warm_mean_best_cost=_mean([r.best_cost for r in warm]),
        cold_mean_best_cost=_mean([r.best_cost for r in cold]),
        profile_mean_execution=profile_means,
    )
