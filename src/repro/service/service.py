"""The long-running service loop: arrivals in, steady-state report out.

One simulated cluster under the fair scheduler serves the whole trace.
Arrivals are scheduled as absolute-time callbacks on the simulation
calendar; the fair-share dispatcher bounds concurrent jobs to the
service ``capacity`` and picks who goes next; every dispatched job gets
a tenant-weighted app-master registration (so the YARN fair scheduler
applies the same weights *within* the cluster) and, when tuning is on,
its own warm-startable tuning session from the :class:`TunerService`.

Preemption: a job stuck at the head of its tenant's queue for
``preempt_after`` seconds while the slot pool is full down-weights the
most over-share running tenant's oldest job (scheduler-level weight
drop -- "preemption without kill") and force-starts over capacity.

The local-backend variant replays the same kind of trace against real
worker processes at smoke scale: jobs run one at a time in dispatch
order (the backend owns the machine's process slots), latencies are
wall-clock, and no digest is pinned -- it proves the service loop works
off-simulator, not that wall time is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.service.arrivals import JobArrival, TenantSpec, generate_arrivals
from repro.service.queues import FairShareDispatcher
from repro.service.report import CompletedJob, ServiceReport, build_report
from repro.service.tuner_service import TunerService
from repro.workloads.suite import make_job_spec, service_case

#: Tenant templates for :func:`default_tenants`, cycled in order:
#: (weight, pattern, job mix, SLO seconds).
_TENANT_TEMPLATES: Tuple[Tuple[float, str, Tuple[str, ...], float], ...] = (
    (3.0, "poisson", ("terasort", "bigram-freebase"), 5000.0),
    (2.0, "diurnal", ("wordcount-wikipedia", "inverted-index-wikipedia"), 5000.0),
    (1.0, "poisson", ("text-search-freebase", "bbp"), 5000.0),
    (1.0, "diurnal", ("wordcount-wikipedia", "bbp"), 5000.0),
)


def default_tenants(count: int = 3, rate: float = 1.0 / 400.0) -> Tuple[TenantSpec, ...]:
    """*count* tenants with distinct weights, mixes, and arrival shapes."""
    if count < 1:
        raise ValueError("count must be >= 1")
    tenants = []
    for i in range(count):
        weight, pattern, profiles, slo = _TENANT_TEMPLATES[i % len(_TENANT_TEMPLATES)]
        tenants.append(
            TenantSpec(
                name=f"tenant-{chr(ord('a') + i)}",
                weight=weight,
                rate=rate,
                pattern=pattern,
                profiles=profiles,
                slo_seconds=slo,
                peak_time=1800.0 * i,
                amplitude=0.8,
                period=14400.0,
            )
        )
    return tuple(tenants)


@dataclass(frozen=True)
class ServiceConfig:
    """One service run, fully determined by its fields."""

    tenants: Tuple[TenantSpec, ...]
    jobs_per_tenant: int = 10
    seed: int = 1
    #: Concurrent job slots the dispatcher hands out.
    capacity: int = 3
    #: Tune every job (False = every job runs its default config).
    tuned: bool = True
    #: Seed searches from the tenant knowledge base (the warm/cold arm
    #: switch; meaningless when ``tuned`` is False).
    warm_start: bool = True
    #: Head-of-queue wait that triggers preemption (None disables it).
    preempt_after: Optional[float] = 2000.0
    #: Victim down-weight multiplier on preemption.
    preempt_weight_factor: float = 0.1
    #: Write-ahead journal path (arms crash recovery; None disables).
    #: Rerunning against an existing journal resumes the killed run.
    journal_path: Optional[str] = None
    #: Simulate a hard crash: raise :class:`ServiceKilled` after this
    #: many *newly journaled* completions (0 disables; needs a journal).
    kill_after_jobs: int = 0
    #: JSON fault plan (``repro.faults.plan_to_json``) injected into the
    #: simulated cluster before the stream starts (sim backend only).
    #: Kept as the JSON string so the frozen config stays hashable.
    fault_plan: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("need at least one tenant")
        if self.jobs_per_tenant < 0:
            raise ValueError("jobs_per_tenant must be >= 0")
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if self.preempt_after is not None and self.preempt_after <= 0:
            raise ValueError("preempt_after must be positive (or None)")
        if not 0.0 < self.preempt_weight_factor <= 1.0:
            raise ValueError("preempt_weight_factor must be in (0, 1]")
        if self.kill_after_jobs < 0:
            raise ValueError("kill_after_jobs must be >= 0")
        if self.kill_after_jobs and not self.journal_path:
            raise ValueError("kill_after_jobs requires journal_path")

    def fingerprint(self) -> str:
        """sha256 identity of the run the journal binds itself to.

        The journal/kill knobs are excluded on purpose: the killed run
        and its resume differ exactly there, yet must share a journal.
        """
        import hashlib

        identity = (
            self.tenants,
            self.jobs_per_tenant,
            self.seed,
            self.capacity,
            self.tuned,
            self.warm_start,
            self.preempt_after,
            self.preempt_weight_factor,
            self.fault_plan,
        )
        return hashlib.sha256(repr(identity).encode()).hexdigest()


@dataclass
class _RunningJob:
    tenant: str
    arrival: JobArrival
    dispatch_time: float
    tuner: Optional[object]
    forced: bool


@dataclass
class _ServiceState:
    """Mutable bookkeeping of one in-flight service run."""

    completed: List[CompletedJob] = field(default_factory=list)
    running: Dict[str, _RunningJob] = field(default_factory=dict)
    queued: set = field(default_factory=set)
    preemptions: int = 0


def run_service(config: ServiceConfig, backend=None) -> ServiceReport:
    """Serve the whole trace on the simulator; return the report.

    *backend* may be a pre-built :class:`~repro.backends.sim.SimBackend`
    (its cluster must use the fair scheduler); by default one is
    constructed from the config seed.
    """
    from repro.backends.sim import SimBackend
    from repro.telemetry.events import (
        ServiceJobCompleted,
        ServiceJobDispatched,
        ServiceJobQueued,
        ServicePreemption,
        ServiceSteadyState,
    )

    if backend is None:
        backend = SimBackend(seed=config.seed, scheduler="fair")
    sc = backend.cluster
    sim = sc.sim
    bus = sc.telemetry
    if config.fault_plan:
        from repro.faults import plan_from_json

        sc.inject_faults(plan=plan_from_json(config.fault_plan))
    tenant_specs = {t.name: t for t in config.tenants}
    arrivals = generate_arrivals(config.tenants, config.jobs_per_tenant, config.seed)
    tuner_service = TunerService(config.seed, warm_start=config.warm_start)
    dispatcher: FairShareDispatcher[JobArrival] = FairShareDispatcher(config.capacity)
    for tenant in config.tenants:
        dispatcher.add_tenant(tenant.name, tenant.weight)
    state = _ServiceState()
    total = len(arrivals)
    done = sim.event()

    # Crash recovery: the simulator resumes by *re-running* the whole
    # trace (it is deterministic) and cross-validating every replayed
    # completion against the journaled prefix -- so a killed and
    # recovered run reproduces the uninterrupted report byte-for-byte,
    # and any code/config drift surfaces as JournalDivergence instead
    # of a silently different report.
    journal = None
    prior_jobs: Dict[Tuple[str, int], CompletedJob] = {}
    prior_preemptions: List[Dict[str, object]] = []
    fresh_jobs = 0
    if config.journal_path:
        from repro.recovery import JournalDivergence, ServiceJournal, ServiceKilled

        journal = ServiceJournal(config.journal_path)
        prior = journal.open(config.fingerprint())
        prior_jobs = {(j.tenant, j.index): j for j in prior.jobs}
        prior_preemptions = list(prior.preemptions)

    def emit(event) -> None:
        if bus.wants("service"):
            bus.emit(event)

    def launch(tenant: str, arrival: JobArrival, forced: bool = False) -> None:
        state.queued.discard((tenant, arrival.index))
        spec = make_job_spec(service_case(arrival.profile), sc.hdfs)
        tuner = None
        warm = False
        if config.tuned:
            tuner = tuner_service.tuner_for(tenant, arrival.profile, arrival.index)
            am = tuner.submit(sc, spec, weight=tenant_specs[tenant].weight)
            warm = tuner.warm_start_seeds.get(spec.job_id) is not None
        else:
            am = sc.submit(spec, weight=tenant_specs[tenant].weight)
        state.running[spec.job_id] = _RunningJob(
            tenant=tenant,
            arrival=arrival,
            dispatch_time=sim.now,
            tuner=tuner,
            forced=forced,
        )
        emit(
            ServiceJobDispatched(
                time=sim.now,
                tenant=tenant,
                job_id=spec.job_id,
                job_name=spec.name,
                queue_delay=sim.now - arrival.time,
                warm_started=warm,
            )
        )
        bus.increment("service.dispatched")
        am.completion.add_callback(
            lambda ev, job_id=spec.job_id: on_complete(job_id, ev.value)
        )

    def drain() -> None:
        while True:
            pick = dispatcher.start_next()
            if pick is None:
                return
            launch(pick[0], pick[1])

    def journal_completion(record, session, job, job_id) -> None:
        """Validate against the journaled prefix or append-and-fsync.

        A completion inside the recovered prefix must replay exactly
        (same identity, same timestamps); one beyond it is written
        ahead -- job record, tuning summary, optimizer checkpoints, and
        the tenant's knowledge-base snapshot -- before the service
        reacts to it.  The ``kill_after_jobs`` crash fires only on
        *newly* journaled jobs, so a resumed run replays the prefix and
        then dies N jobs further in (or finishes).
        """
        nonlocal fresh_jobs
        key = (record.tenant, record.index)
        prior_record = prior_jobs.pop(key, None)
        if prior_record is not None:
            if prior_record != record:
                raise JournalDivergence(
                    f"resumed run diverged from journal at "
                    f"{record.tenant}#{record.index}: journaled "
                    f"{prior_record}, replayed {record}"
                )
            return
        journal.record_job(record)
        if session is not None:
            journal.record_tuning(session)
            journal.record_checkpoint(
                record.tenant,
                record.profile,
                record.index,
                job.tuner.session_checkpoint(job_id)["searches"],
            )
            journal.record_knowledge(
                record.tenant, tuner_service.knowledge_base(record.tenant)
            )
        fresh_jobs += 1
        if config.kill_after_jobs and fresh_jobs >= config.kill_after_jobs:
            raise ServiceKilled(len(state.completed))

    def on_complete(job_id: str, result) -> None:
        job = state.running.pop(job_id)
        tenant = tenant_specs[job.tenant]
        record = CompletedJob(
            tenant=job.tenant,
            profile=job.arrival.profile,
            index=job.arrival.index,
            arrival=job.arrival.time,
            dispatch=job.dispatch_time,
            completion=sim.now,
            slo_seconds=tenant.slo_seconds,
            warm_started=(
                job.tuner is not None
                and job.tuner.warm_start_seeds.get(job_id) is not None
            ),
            preempted_into=job.forced,
        )
        state.completed.append(record)
        session = None
        if job.tuner is not None:
            session = tuner_service.record_session(
                job.tenant, job.arrival.profile, job.arrival.index, job.tuner, job_id
            )
        if journal is not None:
            journal_completion(record, session, job, job_id)
        dispatcher.finish(job.tenant)
        emit(
            ServiceJobCompleted(
                time=sim.now,
                tenant=job.tenant,
                job_id=job_id,
                job_name=job.arrival.profile,
                latency=record.latency,
                slo_met=record.slo_met,
            )
        )
        bus.increment("service.completed")
        if len(state.completed) == total:
            done.succeed()
        else:
            drain()

    def check_preemption(arrival: JobArrival) -> None:
        key = (arrival.tenant, arrival.index)
        if key not in state.queued:
            return  # already dispatched (or completed)
        if dispatcher.idle_capacity > 0:
            drain()
            return
        if dispatcher.head(arrival.tenant) is not arrival:
            return  # a sibling ahead of it will raise its own alarm
        victim_tenant = dispatcher.preemption_victim(exclude=(arrival.tenant,))
        if victim_tenant is None:
            return  # every slot is already ours; just wait
        # The victim's *oldest* job vacates share: it is furthest along
        # and will release its containers soonest anyway.
        victims = [
            (job.dispatch_time, job_id)
            for job_id, job in state.running.items()
            if job.tenant == victim_tenant
        ]
        if not victims:
            return
        _, victim_job_id = min(victims)
        new_weight = (
            tenant_specs[victim_tenant].weight * config.preempt_weight_factor
        )
        sc.rm.set_app_weight(victim_job_id, new_weight)
        state.preemptions += 1
        if journal is not None:
            decision = {
                "time": sim.now,
                "tenant": arrival.tenant,
                "victim_tenant": victim_tenant,
            }
            if prior_preemptions:
                prior_decision = prior_preemptions.pop(0)
                if prior_decision != decision:
                    raise JournalDivergence(
                        f"resumed run diverged from journal: journaled "
                        f"preemption {prior_decision}, replayed {decision}"
                    )
            else:
                journal.record_preemption(
                    sim.now, arrival.tenant, victim_tenant
                )
        emit(
            ServicePreemption(
                time=sim.now,
                tenant=arrival.tenant,
                victim_tenant=victim_tenant,
                victim_job_id=victim_job_id,
                waited=sim.now - arrival.time,
            )
        )
        bus.increment("service.preemptions")
        item = dispatcher.force_start(arrival.tenant)
        launch(arrival.tenant, item, forced=True)

    def on_arrival(arrival: JobArrival) -> None:
        state.queued.add((arrival.tenant, arrival.index))
        dispatcher.enqueue(arrival.tenant, arrival)
        emit(
            ServiceJobQueued(
                time=sim.now,
                tenant=arrival.tenant,
                job_name=arrival.profile,
                arrival=arrival.time,
            )
        )
        bus.increment("service.queued")
        drain()
        if config.preempt_after is not None:
            sim.call_at(
                sim.now + config.preempt_after,
                lambda a=arrival: check_preemption(a),
            )

    for arrival in arrivals:
        sim.call_at(arrival.time, lambda a=arrival: on_arrival(a))
    try:
        if total:
            sim.run_until_complete(done)
    finally:
        if journal is not None:
            journal.close()
    if journal is not None and prior_jobs:
        leftover = sorted(prior_jobs)
        raise JournalDivergence(
            f"{len(leftover)} journaled job(s) never replayed on resume: "
            f"{leftover[:5]}"
        )

    report = build_report(
        seed=config.seed,
        backend="sim",
        warm_start=config.warm_start,
        completed=state.completed,
        tenant_weights={t.name: t.weight for t in config.tenants},
        tuning=tuner_service.records,
        preemptions=state.preemptions,
    )
    emit(
        ServiceSteadyState(
            time=sim.now,
            jobs_completed=report.jobs_completed,
            throughput_jobs_per_sec=report.throughput_jobs_per_sec,
            p50_latency=report.p50_latency,
            p95_latency=report.p95_latency,
            slo_attainment=report.slo_attainment,
            preemptions=report.preemptions,
        )
    )
    return report


def run_service_local(
    config: ServiceConfig,
    num_splits: int = 6,
    split_kb: int = 8,
    num_reducers: int = 2,
    workspace: Optional[str] = None,
) -> ServiceReport:
    """Smoke-scale service loop on the real local-process backend.

    Tenants' profiles must name local workloads (``wordcount``,
    ``grep``, ``inverted-index``).  Jobs run sequentially in arrival
    order over one shared corpus; each still gets its own warm-startable
    tuning session, so the warm-vs-cold bookkeeping is exercised against
    real task executions.  Latencies are wall-clock and the report's
    digest is *not* pinned anywhere.

    With ``config.journal_path`` set, resume is a genuine skip-ahead:
    wall-clock work is not replayable, so journaled jobs are loaded
    from disk instead of re-executed and the tenant knowledge bases are
    restored so later warm starts still see the pre-crash sessions.
    """
    import json as _json
    import os
    import shutil
    import tempfile

    from repro.backends.local import (
        LocalProcessBackend,
        generate_corpus,
        local_job_spec,
    )

    if config.fault_plan:
        raise ValueError("fault_plan is simulator-only; the local backend "
                         "meets real crashes, not injected ones")
    arrivals = generate_arrivals(config.tenants, config.jobs_per_tenant, config.seed)
    tenant_specs = {t.name: t for t in config.tenants}
    tuner_service = TunerService(config.seed, warm_start=config.warm_start)
    journal = None
    journaled_keys: set = set()
    fresh_jobs = 0
    clock_floor = 0.0
    if config.journal_path:
        from repro.recovery import ServiceJournal, ServiceKilled

        journal = ServiceJournal(config.journal_path)
        prior = journal.open(config.fingerprint())
        journaled_keys = prior.completed_keys()
        clock_floor = max((j.completion for j in prior.jobs), default=0.0)
        tuner_service.records.extend(prior.tuning)
        for tenant, entries in prior.knowledge.items():
            tuner_service.restore_knowledge(tenant, _json.dumps(entries))
    own_workspace = workspace is None
    if own_workspace:
        workspace = tempfile.mkdtemp(prefix="repro-service-")
    corpus_dir = os.path.join(workspace, "corpus")
    generate_corpus(
        corpus_dir, num_splits=num_splits, split_kb=split_kb, seed=config.seed
    )
    completed: List[CompletedJob] = []
    if journal is not None:
        completed.extend(prior.jobs)
    backend = LocalProcessBackend(
        workspace=os.path.join(workspace, "jobs"), seed=config.seed
    )
    try:
        clock = clock_floor
        for arrival in arrivals:
            if (arrival.tenant, arrival.index) in journaled_keys:
                continue  # recovered from the journal, not re-executed
            # An open stream replayed at full speed: a job "arrives" at
            # its trace time and starts when the machine frees up.
            clock = max(clock, arrival.time)
            spec = local_job_spec(
                arrival.profile,
                corpus_dir,
                num_reducers,
                name=f"{arrival.profile}-{arrival.tenant}-{arrival.index}",
            )
            import time as _time

            start_wall = _time.monotonic()
            if config.tuned:
                tuner = tuner_service.tuner_for(
                    arrival.tenant, arrival.profile, arrival.index
                )
                handle = tuner.submit_to(backend, spec)
            else:
                tuner = None
                handle = backend.submit(spec)
            backend.wait(handle)
            execution = _time.monotonic() - start_wall
            dispatch = clock
            clock += execution
            record = CompletedJob(
                tenant=arrival.tenant,
                profile=arrival.profile,
                index=arrival.index,
                arrival=arrival.time,
                dispatch=dispatch,
                completion=clock,
                slo_seconds=tenant_specs[arrival.tenant].slo_seconds,
                warm_started=(
                    tuner is not None
                    and tuner.warm_start_seeds.get(spec.job_id) is not None
                ),
            )
            completed.append(record)
            session = None
            if tuner is not None:
                session = tuner_service.record_session(
                    arrival.tenant,
                    arrival.profile,
                    arrival.index,
                    tuner,
                    spec.job_id,
                )
            if journal is not None:
                journal.record_job(record)
                if session is not None:
                    journal.record_tuning(session)
                    journal.record_checkpoint(
                        arrival.tenant,
                        arrival.profile,
                        arrival.index,
                        tuner.session_checkpoint(spec.job_id)["searches"],
                    )
                    journal.record_knowledge(
                        arrival.tenant,
                        tuner_service.knowledge_base(arrival.tenant),
                    )
                fresh_jobs += 1
                if config.kill_after_jobs and fresh_jobs >= config.kill_after_jobs:
                    raise ServiceKilled(len(completed))
    finally:
        backend.close()
        if journal is not None:
            journal.close()
        if own_workspace:
            shutil.rmtree(workspace, ignore_errors=True)
    return build_report(
        seed=config.seed,
        backend="local",
        warm_start=config.warm_start,
        completed=completed,
        tenant_weights={t.name: t.weight for t in config.tenants},
        tuning=tuner_service.records,
        preemptions=0,
    )
