"""The tuner as a service: per-tenant state, cross-job warm starts.

One :class:`~repro.core.tuner.OnlineTuner` session per dispatched job
(aggressive strategy, service-sized search budget), all sessions of a
tenant sharing that tenant's
:class:`~repro.core.knowledge_base.TuningKnowledgeBase`.  Because the
knowledge base is keyed by (workload, input-size bucket), the shared
store *is* the (tenant, profile) keying the service needs: a finished
terasort session seeds the next terasort of the same tenant, and never
leaks across tenants.

Warm starting rides the tuner's existing mechanism -- the knowledge-base
hit becomes the search's seed point, which the optimizers evaluate in
their very first wave -- so "reaches its best cost in fewer waves" is a
measured property (:attr:`JobTuningRecord.wave_of_best`), not a policy
claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.hill_climbing import HillClimbSettings
from repro.core.knowledge_base import TuningKnowledgeBase
from repro.core.tuner import OnlineTuner, TunerSettings, TuningStrategy
from repro.sim.rng import derive_seed

#: The service-scale search budget: small waves so a continuous stream
#: of short jobs still completes several waves per job, cheap global
#: restarts so warm starts dominate the trajectory.
SERVICE_HILL_CLIMB = HillClimbSettings(
    m=6, n=4, lhs_intervals=6, global_search_limit=2
)


@dataclass(frozen=True)
class JobTuningRecord:
    """One finished tuning session, in stable (tenant, index) identity.

    Deliberately free of process-global identifiers (job ids, sample
    ids): two identical service runs must produce byte-identical record
    lists, whatever ran earlier in the process.
    """

    tenant: str
    profile: str
    index: int
    warm_started: bool
    #: ``repr`` of the knowledge-base seed configuration ("" when cold).
    seed_config: str
    #: Summed best Equation-1 cost over the map and reduce searches.
    best_cost: float
    #: Latest wave (max over task types) in which the running best cost
    #: last improved -- the warm-vs-cold comparison metric.
    wave_of_best: int
    #: Total waves opened (max over task types).
    waves: int

    def line(self) -> str:
        start = "warm" if self.warm_started else "cold"
        return (
            f"{self.tenant}/{self.profile}#{self.index}: {start} "
            f"best_cost={self.best_cost:.6f} "
            f"wave_of_best={self.wave_of_best}/{self.waves}"
        )


class TunerService:
    """Mint per-job tuners; accumulate per-tenant tuning knowledge."""

    def __init__(
        self,
        seed: int,
        warm_start: bool = True,
        hill_climb: Optional[HillClimbSettings] = None,
        optimizer: str = "hill_climb",
    ) -> None:
        self.seed = seed
        self.warm_start = warm_start
        self.hill_climb = hill_climb or SERVICE_HILL_CLIMB
        self.optimizer = optimizer
        self._knowledge: Dict[str, TuningKnowledgeBase] = {}
        self.records: List[JobTuningRecord] = []

    def knowledge_base(self, tenant: str) -> TuningKnowledgeBase:
        kb = self._knowledge.get(tenant)
        if kb is None:
            kb = self._knowledge[tenant] = TuningKnowledgeBase()
        return kb

    def restore_knowledge(self, tenant: str, payload: str) -> None:
        """Reinstate a journaled knowledge-base snapshot (JSON).

        Used by the local-backend resume path: skipped (already
        journaled) sessions never re-run, so their knowledge must come
        off disk for later warm starts to see it.
        """
        self._knowledge[tenant] = TuningKnowledgeBase.from_json(payload)

    def tuner_for(self, tenant: str, profile: str, index: int) -> OnlineTuner:
        """A fresh aggressive tuning session for one dispatched job.

        The RNG stream is derived from (service seed, tenant, profile,
        arrival index) alone -- independent of dispatch order -- so the
        *search trajectory* of tenant A's third terasort is identical
        whether or not tenant B's jobs interleave with it.
        """
        rng = np.random.default_rng(
            derive_seed(self.seed, "service-tuner", tenant, profile, index)
        )
        return OnlineTuner(
            TuningStrategy.AGGRESSIVE,
            settings=TunerSettings(
                hill_climb=self.hill_climb,
                use_knowledge_base=self.warm_start,
                optimizer=self.optimizer,
            ),
            rng=rng,
            knowledge_base=self.knowledge_base(tenant),
        )

    def record_session(
        self, tenant: str, profile: str, index: int, tuner: OnlineTuner, job_id: str
    ) -> JobTuningRecord:
        """Summarize a completed session into a stable record."""
        seed_config = tuner.warm_start_seeds.get(job_id)
        summary = tuner.session_summary(job_id)
        best = 0.0
        wave_of_best = 0
        waves = 0
        for search in summary.get("searches", {}).values():
            cost = search.get("best_cost")
            if cost is not None:
                best += float(cost)
            wb = search.get("wave_of_best")
            if wb is not None:
                wave_of_best = max(wave_of_best, int(wb))
            waves = max(waves, int(search.get("waves", 0)))
        record = JobTuningRecord(
            tenant=tenant,
            profile=profile,
            index=index,
            warm_started=seed_config is not None,
            seed_config=repr(seed_config) if seed_config is not None else "",
            best_cost=best,
            wave_of_best=wave_of_best,
            waves=waves,
        )
        self.records.append(record)
        return record
