"""Trace-driven workload generation: per-tenant seeded arrival streams.

Each tenant owns an independent RNG stream derived from the service
seed and the tenant name, so adding a tenant never perturbs anyone
else's trace.  Two arrival models:

``poisson``
    Homogeneous Poisson process at :attr:`TenantSpec.rate` jobs per
    simulated second (exponential inter-arrivals).
``diurnal``
    Inhomogeneous Poisson process by thinning (Lewis & Shedler): the
    instantaneous rate follows a cosine day-curve
    ``rate * (1 + amplitude * cos(2*pi*(t - peak_time)/period))``,
    peaking at ``peak_time`` every ``period`` seconds.

Every arrival also draws its application profile from the tenant's job
mix, so the full trace -- times and profiles -- replays bit-identically
from the seed.  :func:`arrivals_digest` pins that property in CI.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.sim.rng import derive_seed
from repro.workloads.suite import SERVICE_PROFILES

#: Supported arrival patterns.
ARRIVAL_PATTERNS: Tuple[str, ...] = ("poisson", "diurnal")

_KNOWN_PROFILES = tuple(name for name, _b, _r in SERVICE_PROFILES)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: fair-share weight, arrival model, job mix, and SLO."""

    name: str
    #: Fair-share weight (relative share of dispatch slots and, through
    #: the fair scheduler, of cluster memory).
    weight: float = 1.0
    #: Mean arrival rate in jobs per simulated second.
    rate: float = 1.0 / 600.0
    pattern: str = "poisson"
    #: Job mix: profiles are drawn uniformly from this tuple per arrival.
    profiles: Tuple[str, ...] = ("wordcount-wikipedia",)
    #: Per-job latency SLO (arrival to completion), simulated seconds.
    slo_seconds: float = 4000.0
    #: Diurnal shape: peak position, relative swing, and day length.
    peak_time: float = 0.0
    amplitude: float = 0.8
    period: float = 86400.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be positive")
        if self.rate <= 0:
            raise ValueError(f"tenant {self.name!r}: rate must be positive")
        if self.pattern not in ARRIVAL_PATTERNS:
            raise ValueError(
                f"tenant {self.name!r}: unknown pattern {self.pattern!r}, "
                f"want one of {ARRIVAL_PATTERNS}"
            )
        if not self.profiles:
            raise ValueError(f"tenant {self.name!r}: empty job mix")
        for profile in self.profiles:
            if profile in _KNOWN_PROFILES:
                continue
            # Local-backend smoke runs mix real workloads instead of
            # Table-3 profiles; accept those names too.
            from repro.backends.local.worker import LOCAL_WORKLOADS

            if profile not in LOCAL_WORKLOADS:
                raise ValueError(
                    f"tenant {self.name!r}: unknown profile {profile!r}, "
                    f"want one of {_KNOWN_PROFILES} "
                    f"or {tuple(sorted(LOCAL_WORKLOADS))}"
                )
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError(
                f"tenant {self.name!r}: amplitude must be in [0, 1] "
                "(negative instantaneous rates are meaningless)"
            )
        if self.slo_seconds <= 0:
            raise ValueError(f"tenant {self.name!r}: slo_seconds must be positive")
        if self.period <= 0:
            raise ValueError(f"tenant {self.name!r}: period must be positive")


@dataclass(frozen=True)
class JobArrival:
    """One job submission in the trace."""

    time: float
    tenant: str
    #: Per-tenant arrival index (0-based); (tenant, index) is unique.
    index: int
    profile: str


def _diurnal_rate(spec: TenantSpec, t: float) -> float:
    phase = 2.0 * math.pi * (t - spec.peak_time) / spec.period
    return spec.rate * (1.0 + spec.amplitude * math.cos(phase))


def _tenant_arrivals(
    spec: TenantSpec, jobs: int, seed: int
) -> List[JobArrival]:
    rng = np.random.default_rng(derive_seed(seed, "arrivals", spec.name))
    out: List[JobArrival] = []
    t = 0.0
    lam_max = spec.rate * (1.0 + spec.amplitude)
    for index in range(jobs):
        if spec.pattern == "poisson":
            t += rng.exponential(1.0 / spec.rate)
        else:
            # Thinning: propose at the peak rate, accept with probability
            # rate(t)/rate_max.  Each proposal draws exactly two numbers
            # regardless of acceptance, keeping the stream replayable.
            while True:
                t += rng.exponential(1.0 / lam_max)
                if rng.random() * lam_max <= _diurnal_rate(spec, t):
                    break
        profile = spec.profiles[int(rng.integers(len(spec.profiles)))]
        out.append(JobArrival(time=t, tenant=spec.name, index=index, profile=profile))
    return out


def generate_arrivals(
    tenants: Sequence[TenantSpec], jobs_per_tenant: int, seed: int
) -> List[JobArrival]:
    """The merged trace: every tenant's stream, in arrival-time order.

    Per-tenant streams are independent (one derived RNG stream each),
    so the same (tenants, jobs, seed) triple always yields the same
    trace, and dropping or adding a tenant leaves the others' arrival
    times untouched.
    """
    if jobs_per_tenant < 0:
        raise ValueError("jobs_per_tenant must be >= 0")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names in {names}")
    merged: List[JobArrival] = []
    for spec in tenants:
        merged.extend(_tenant_arrivals(spec, jobs_per_tenant, seed))
    # Ties are practically impossible across independent float streams,
    # but the (tenant, index) tiebreak keeps the order total anyway.
    merged.sort(key=lambda a: (a.time, a.tenant, a.index))
    return merged


def arrivals_digest(arrivals: Sequence[JobArrival]) -> str:
    """A sha256 over the trace; pinned in tests to gate determinism."""
    h = hashlib.sha256()
    for a in arrivals:
        h.update(f"{a.time!r}|{a.tenant}|{a.index}|{a.profile}\n".encode())
    return h.hexdigest()
