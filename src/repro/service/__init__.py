"""The continuous multi-tenant tuning service.

ROADMAP item 1: instead of fixed job batches, an open arrival stream
(seeded Poisson or diurnal, per tenant) feeds a long-running resource
manager through the execution-backend protocol.  Jobs queue per tenant
behind a weighted fair-share dispatcher with preemption; every
dispatched job gets its own tuning session whose search is warm-started
from the tenant's accumulated knowledge base, and the run ends in a
steady-state report (throughput, latency percentiles, SLO attainment,
warm-vs-cold search speed) exported through the telemetry bus.

See ``docs/service.md`` for the arrival models, fairness semantics,
warm-start policy, and report schema.
"""

from repro.service.arrivals import (
    ARRIVAL_PATTERNS,
    JobArrival,
    TenantSpec,
    arrivals_digest,
    generate_arrivals,
)
from repro.service.queues import FairShareDispatcher
from repro.service.report import ServiceReport, TenantReport, percentile
from repro.service.service import (
    ServiceConfig,
    default_tenants,
    run_service,
    run_service_local,
)
from repro.service.tuner_service import JobTuningRecord, TunerService

__all__ = [
    "ARRIVAL_PATTERNS",
    "FairShareDispatcher",
    "JobArrival",
    "JobTuningRecord",
    "ServiceConfig",
    "ServiceReport",
    "TenantReport",
    "TenantSpec",
    "TunerService",
    "arrivals_digest",
    "default_tenants",
    "generate_arrivals",
    "percentile",
    "run_service",
    "run_service_local",
]
