"""Per-tenant queues behind a weighted fair-share dispatcher.

Classic virtual-time weighted fair queueing over *job slots*: the
cluster runs at most ``capacity`` jobs at once; each tenant keeps a
FIFO of waiting jobs and a virtual time that advances by ``1/weight``
per dispatched job.  The dispatcher always starts the backlogged tenant
with the smallest virtual time, which yields the three properties the
Hypothesis suite checks:

* **work conservation** -- a free slot is never left idle while any
  queue is non-empty (``start_next`` only returns ``None`` when every
  queue is empty or the capacity is exhausted);
* **weighted-share convergence** -- under sustained backlog, tenant
  *i*'s dispatch count approaches ``w_i / sum(w)`` of the total,
  because each dispatch advances its virtual time by ``1/w_i`` and the
  minimum-vtime rule keeps all backlogged vtimes within one service
  quantum of each other;
* **no starvation** -- a backlogged tenant's virtual time is frozen
  while it waits, and every competitor's grows without bound, so the
  waiting tenant is eventually the minimum no matter how small its
  weight.

A tenant returning from idle is charged the current virtual clock
(standard WFQ re-sync) so it cannot burst through accumulated credit.

Preemption support: :meth:`preemption_victim` names the most over-share
running tenant and :meth:`force_start` dispatches a starved tenant's
head-of-queue *over* capacity; the service layer pairs the two with a
scheduler-level down-weight of the victim.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generic, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


class FairShareDispatcher(Generic[T]):
    """Weighted fair queueing of jobs onto a bounded slot pool."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._weights: Dict[str, float] = {}
        self._queues: Dict[str, Deque[T]] = {}
        self._vtime: Dict[str, float] = {}
        self._running: Dict[str, int] = {}
        self._dispatched: Dict[str, int] = {}
        #: The virtual clock: vtime of the last dispatch, used to
        #: re-sync tenants returning from idle.
        self._vclock = 0.0

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------
    def add_tenant(self, name: str, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError(f"tenant {name!r}: weight must be positive")
        if name in self._weights:
            raise ValueError(f"tenant {name!r} already registered")
        self._weights[name] = weight
        self._queues[name] = deque()
        self._vtime[name] = self._vclock
        self._running[name] = 0
        self._dispatched[name] = 0

    @property
    def tenants(self) -> List[str]:
        return list(self._weights)

    def weight(self, tenant: str) -> float:
        return self._weights[tenant]

    # ------------------------------------------------------------------
    # Queueing
    # ------------------------------------------------------------------
    def enqueue(self, tenant: str, item: T) -> None:
        queue = self._queues[tenant]
        if not queue:
            # Idle re-sync: waiting starts from the current virtual
            # clock, not from credit accumulated while idle.
            self._vtime[tenant] = max(self._vtime[tenant], self._vclock)
        queue.append(item)

    def queued(self, tenant: str) -> int:
        return len(self._queues[tenant])

    def head(self, tenant: str) -> Optional[T]:
        queue = self._queues[tenant]
        return queue[0] if queue else None

    @property
    def total_queued(self) -> int:
        return sum(len(q) for q in self._queues.values())

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    @property
    def running_total(self) -> int:
        return sum(self._running.values())

    def running(self, tenant: str) -> int:
        return self._running[tenant]

    def dispatched(self, tenant: str) -> int:
        """Total jobs ever started for *tenant* (share-convergence metric)."""
        return self._dispatched[tenant]

    @property
    def idle_capacity(self) -> int:
        return max(0, self.capacity - self.running_total)

    def _next_tenant(self) -> Optional[str]:
        backlogged = [t for t, q in self._queues.items() if q]
        if not backlogged:
            return None
        return min(backlogged, key=lambda t: (self._vtime[t], t))

    def _charge(self, tenant: str) -> T:
        item = self._queues[tenant].popleft()
        self._vclock = self._vtime[tenant]
        self._vtime[tenant] += 1.0 / self._weights[tenant]
        self._running[tenant] += 1
        self._dispatched[tenant] += 1
        return item

    def start_next(self) -> Optional[Tuple[str, T]]:
        """Dispatch the fair-share pick, or ``None`` if nothing can start."""
        if self.running_total >= self.capacity:
            return None
        tenant = self._next_tenant()
        if tenant is None:
            return None
        return tenant, self._charge(tenant)

    def force_start(self, tenant: str) -> T:
        """Dispatch *tenant*'s head-of-queue even over capacity.

        The preemption path: the service has already down-weighted a
        victim, so running one job beyond the slot pool is how the
        starved tenant claims the capacity the victim is vacating.
        """
        if not self._queues[tenant]:
            raise ValueError(f"tenant {tenant!r} has nothing queued")
        return self._charge(tenant)

    def finish(self, tenant: str) -> None:
        if self._running[tenant] <= 0:
            raise ValueError(f"tenant {tenant!r} has nothing running")
        self._running[tenant] -= 1

    # ------------------------------------------------------------------
    # Preemption
    # ------------------------------------------------------------------
    def preemption_victim(self, exclude: Sequence[str] = ()) -> Optional[str]:
        """The most over-share running tenant (``running/weight``), if any."""
        skip = set(exclude)
        candidates = [
            t for t, n in self._running.items() if n > 0 and t not in skip
        ]
        if not candidates:
            return None
        return max(
            candidates, key=lambda t: (self._running[t] / self._weights[t], t)
        )
