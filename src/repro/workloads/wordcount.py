"""Word count: tokenize, emit (word, 1), combine, sum.

Map-intensive (Table 3 classifies it "Map" on both datasets): the map
phase tokenizes every byte while the combiner collapses the output to
a modest shuffle volume.  Calibration targets Table 3's shuffle/output
sizes: Wikipedia 90.5 GB -> 30.3 GB shuffled -> 8.6 GB out; Freebase
100.8 GB -> 16.7 GB -> 9.4 GB (Freebase's structured triples repeat
identifiers heavily, so its combiner is far more effective).
"""

from __future__ import annotations

from repro.mapreduce.jobspec import WorkloadProfile


def wordcount_profile(dataset: str = "wikipedia") -> WorkloadProfile:
    if dataset == "wikipedia":
        # 90.5 GB * 1.6 * 0.209 = 30.3 GB shuffle; * 0.284 = 8.6 GB out.
        combiner_byte_ratio = 0.209
        combiner_record_ratio = 0.209
        reduce_output_ratio = 0.284
        skew = 0.35  # natural-language word frequencies are heavy tailed
    elif dataset == "freebase":
        # 100.8 GB * 1.6 * 0.104 = 16.7 GB shuffle; * 0.563 = 9.4 GB out.
        combiner_byte_ratio = 0.104
        combiner_record_ratio = 0.104
        reduce_output_ratio = 0.563
        skew = 0.3
    else:
        raise ValueError(f"no word count calibration for dataset {dataset!r}")
    return WorkloadProfile(
        name=f"wordcount-{dataset}",
        map_output_ratio=1.6,  # "(word, 1)" pairs inflate the raw text
        map_output_record_size=16.0,
        has_combiner=True,
        combiner_record_ratio=combiner_record_ratio,
        combiner_byte_ratio=combiner_byte_ratio,
        reduce_output_ratio=reduce_output_ratio,
        map_cpu_per_mb=0.35,
        reduce_cpu_per_mb=0.05,
        partition_skew=skew,
        map_output_noise=0.08,
    )
