"""BBP: Bailey-Borwein-Plouffe digits of pi -- pure compute.

Table 3: no input, 252 KB shuffled, no output, 100 maps and a single
reducer.  Each map computes a digit range; the work is embarrassingly
parallel *within* a task too (digit extraction is independent per
digit), so a mapper can exploit several cores when its container grant
allows -- which is how MRONLINE's multi-tenant experiment reassigns
idle CPUs to BBP (Section 8.5).
"""

from __future__ import annotations

from repro.mapreduce.jobspec import WorkloadProfile

MB = 1024 * 1024


def bbp_profile(digits: int = 500_000, num_tasks: int = 100) -> WorkloadProfile:
    """Profile for computing *digits* digits of pi over *num_tasks* maps.

    The per-task compute cost scales linearly with the digit share; the
    paper's 0.5e6-digit configuration costs roughly 600 core-seconds
    per map on our reference core speed.
    """
    if digits <= 0 or num_tasks <= 0:
        raise ValueError("digits and num_tasks must be positive")
    per_task_sec = 600.0 * (digits / 500_000.0) * (100.0 / num_tasks)
    shuffle_bytes = 252 * 1024
    # Splits are 1 MB placeholders; derive the output ratio that lands
    # the total shuffle at 252 KB.
    total_input = num_tasks * 1 * MB
    return WorkloadProfile(
        name="bbp",
        map_output_ratio=shuffle_bytes / total_input,
        map_output_record_size=256.0,
        has_combiner=False,
        reduce_output_ratio=0.0,  # the single reducer just verifies/concats
        map_cpu_per_mb=0.0,
        reduce_cpu_per_mb=0.5,
        map_cpu_fixed_sec=per_task_sec,
        reduce_cpu_fixed_sec=5.0,
        map_cpu_parallelism=4.0,  # digit extraction parallelizes in-task
        reduce_cpu_parallelism=1.0,
        # The series computation keeps sizeable per-thread state tables.
        map_fixed_mem_bytes=256 * MB,
        reduce_fixed_mem_bytes=128 * MB,
        partition_skew=0.0,
        map_output_noise=0.0,
    )
