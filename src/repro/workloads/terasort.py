"""Terasort: the identity sort -- pure shuffle stress.

Every input byte crosses the shuffle and lands in the output
(Table 3: 100 GB in, 100 GB shuffled, 100 GB out), with 100-byte
records and no combiner.  Compute per record is minimal; the job is
bound by disk spills and the shuffle, which is exactly why it responds
strongly to ``io.sort.mb`` and the reduce-side buffers.
"""

from __future__ import annotations

from repro.mapreduce.jobspec import WorkloadProfile


def terasort_profile() -> WorkloadProfile:
    return WorkloadProfile(
        name="terasort",
        map_output_ratio=1.0,
        map_output_record_size=100.0,
        has_combiner=False,
        reduce_output_ratio=1.0,
        map_cpu_per_mb=0.05,
        reduce_cpu_per_mb=0.04,
        map_fixed_mem_bytes=150 * 1024 * 1024,  # identity map
        reduce_fixed_mem_bytes=200 * 1024 * 1024,  # identity reduce
        partition_skew=0.05,  # Teragen keys are uniform
        map_output_noise=0.02,
    )
