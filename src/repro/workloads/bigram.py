"""Bigram counting: emit every pair of consecutive words.

Shuffle-intensive on both datasets (Table 3): bigrams are nearly
unique, so the combiner barely helps and most of the inflated map
output crosses the network.  Wikipedia: 90.5 GB -> 80.8 GB shuffle ->
27.6 GB out; Freebase: 100.8 GB -> 84.8 GB -> 77.8 GB (knowledge-graph
bigrams barely collapse in the reduce either).
"""

from __future__ import annotations

from repro.mapreduce.jobspec import WorkloadProfile


def bigram_profile(dataset: str = "wikipedia") -> WorkloadProfile:
    if dataset == "wikipedia":
        # 90.5 * 1.8 * 0.496 = 80.8 GB shuffle; * 0.342 = 27.6 GB out.
        combiner_byte_ratio = 0.496
        reduce_output_ratio = 0.342
        skew = 0.3
    elif dataset == "freebase":
        # 100.8 * 1.8 * 0.467 = 84.8 GB shuffle; * 0.917 = 77.8 GB out.
        combiner_byte_ratio = 0.467
        reduce_output_ratio = 0.917
        skew = 0.25
    else:
        raise ValueError(f"no bigram calibration for dataset {dataset!r}")
    return WorkloadProfile(
        name=f"bigram-{dataset}",
        map_output_ratio=1.8,  # two words per record plus a count
        map_output_record_size=24.0,
        has_combiner=True,
        combiner_record_ratio=combiner_byte_ratio,
        combiner_byte_ratio=combiner_byte_ratio,
        reduce_output_ratio=reduce_output_ratio,
        map_cpu_per_mb=0.45,
        reduce_cpu_per_mb=0.08,
        partition_skew=skew,
        map_output_noise=0.08,
    )
