"""Dataset descriptors: Wikipedia, Freebase, and Teragen synthetics.

Datasets are *descriptors*, not bytes: a name, a block count, and a
block size.  Loading one registers an HDFS file with rack-aware
placement; every map task then reads one block.  Block counts are
chosen so the map-task counts match Table 3 exactly (676 maps for
Wikipedia, 752 for Freebase/Terasort at 128 MB blocks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdfs.filesystem import DEFAULT_BLOCK_SIZE, HdfsFile, HdfsFileSystem

MB = 1024 * 1024
GB = 1024 * MB


@dataclass(frozen=True)
class DatasetSpec:
    """A dataset: enough structure to drive the dataflow model."""

    name: str
    num_blocks: int
    block_size: int = DEFAULT_BLOCK_SIZE

    @property
    def size_bytes(self) -> int:
        return self.num_blocks * self.block_size

    @property
    def size_gb(self) -> float:
        return self.size_bytes / GB

    def default_path(self) -> str:
        return f"/data/{self.name}"

    def load(self, fs: HdfsFileSystem, path: str = "") -> HdfsFile:
        """Register the dataset in HDFS (no simulated I/O: pre-loaded data)."""
        path = path or self.default_path()
        if fs.exists(path):
            return fs.get(path)
        original = fs.block_size
        try:
            fs.block_size = self.block_size
            return fs.create_file(path, self.size_bytes)
        finally:
            fs.block_size = original


def wikipedia_dataset() -> DatasetSpec:
    """The concatenated Wikipedia dump: "90.5 GB", 676 map tasks.

    676 blocks x 128 MB = 90.7 GB, matching the paper's map count
    exactly and its reported size to within 0.3%.
    """
    return DatasetSpec("wikipedia", num_blocks=676)


def freebase_dataset() -> DatasetSpec:
    """The Freebase knowledge-graph dump: "100.8 GB", 752 map tasks."""
    return DatasetSpec("freebase", num_blocks=752)


def teragen_dataset(size_gb: float) -> DatasetSpec:
    """Synthetic Teragen data of roughly *size_gb* gigabytes.

    The 100 GB instance yields 752 blocks, matching Table 3's Terasort
    row (the paper uses the same map count for Freebase and Terasort).
    """
    if size_gb <= 0:
        raise ValueError("size_gb must be positive")
    num_blocks = max(1, round(size_gb * GB / DEFAULT_BLOCK_SIZE))
    label = f"{size_gb:g}".replace(".", "_")
    return DatasetSpec(f"teragen-{label}gb", num_blocks=num_blocks)


def bbp_dataset(num_tasks: int = 100) -> DatasetSpec:
    """BBP's input: one tiny split per compute task (Table 3: 100 maps)."""
    return DatasetSpec("bbp-splits", num_blocks=num_tasks, block_size=1 * MB)
