"""Text search (Grep): scan for a pattern, emit the rare matches.

Compute-intensive (Table 3): the regex scan touches every byte while
the output is tiny -- Wikipedia: 2.3 GB shuffled / 469 MB out;
Freebase: 906 MB / 229 MB.  This is the paper's introduction example
of a job needing far less sort space than Terasort.
"""

from __future__ import annotations

from repro.mapreduce.jobspec import WorkloadProfile


def text_search_profile(dataset: str = "wikipedia") -> WorkloadProfile:
    if dataset == "wikipedia":
        # 90.7 GB * 0.0317 * 0.8 (combine) = 2.3 GB shuffle; * 0.204 = 469 MB.
        map_output_ratio = 0.0317
        reduce_output_ratio = 0.204
    elif dataset == "freebase":
        # 100.9 GB * 0.0112 * 0.8 = 906 MB shuffle; * 0.253 = 229 MB out.
        map_output_ratio = 0.0112
        reduce_output_ratio = 0.253
    else:
        raise ValueError(f"no text-search calibration for dataset {dataset!r}")
    return WorkloadProfile(
        name=f"text-search-{dataset}",
        map_output_ratio=map_output_ratio,
        map_output_record_size=16.0,
        has_combiner=True,
        combiner_record_ratio=0.8,
        combiner_byte_ratio=0.8,
        reduce_output_ratio=reduce_output_ratio,
        map_cpu_per_mb=0.5,  # the regex scan dominates
        reduce_cpu_per_mb=0.05,
        partition_skew=0.2,
        map_output_noise=0.15,  # match density varies across the corpus
        map_fixed_mem_bytes=150 * 1024 * 1024,
    )
