"""Inverted index: word -> document-ID postings.

Table 3 classifies it "Map" on Wikipedia (tokenization-heavy, moderate
shuffle: 38 GB) and "Compute" on Freebase (more parsing per byte,
smaller shuffle: 21 GB).  Postings lists do not combine well, so no
combiner is registered (Cloud9's implementation likewise aggregates
only in the reducer).
"""

from __future__ import annotations

from repro.mapreduce.jobspec import WorkloadProfile


def inverted_index_profile(dataset: str = "wikipedia") -> WorkloadProfile:
    if dataset == "wikipedia":
        # 90.5 GB * 0.42 = 38 GB shuffle; * 0.271 = 10.3 GB out.
        map_output_ratio = 0.42
        reduce_output_ratio = 0.271
        map_cpu = 0.4
        skew = 0.4
    elif dataset == "freebase":
        # 100.8 GB * 0.208 = 21 GB shuffle; * 0.524 = 11 GB out.
        map_output_ratio = 0.208
        reduce_output_ratio = 0.524
        map_cpu = 0.7  # "Compute" job type: heavier per-byte parsing
        skew = 0.35
    else:
        raise ValueError(f"no inverted-index calibration for dataset {dataset!r}")
    return WorkloadProfile(
        name=f"inverted-index-{dataset}",
        map_output_ratio=map_output_ratio,
        map_output_record_size=60.0,
        has_combiner=False,
        reduce_output_ratio=reduce_output_ratio,
        map_cpu_per_mb=map_cpu,
        reduce_cpu_per_mb=0.1,
        partition_skew=skew,
        map_output_noise=0.1,
    )
