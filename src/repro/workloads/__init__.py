"""The benchmark applications and datasets of the paper's evaluation.

Each application module exposes a profile factory returning a
:class:`~repro.mapreduce.jobspec.WorkloadProfile` calibrated so that the
job's input/shuffle/output volumes reproduce its row of Table 3;
:mod:`repro.workloads.suite` assembles the full benchmark matrix.
"""

from repro.workloads.bbp import bbp_profile
from repro.workloads.bigram import bigram_profile
from repro.workloads.datasets import (
    DatasetSpec,
    freebase_dataset,
    teragen_dataset,
    wikipedia_dataset,
)
from repro.workloads.grep import text_search_profile
from repro.workloads.inverted_index import inverted_index_profile
from repro.workloads.suite import BenchmarkCase, JobType, make_job_spec, table3_cases
from repro.workloads.terasort import terasort_profile
from repro.workloads.wordcount import wordcount_profile

__all__ = [
    "BenchmarkCase",
    "DatasetSpec",
    "JobType",
    "bbp_profile",
    "bigram_profile",
    "freebase_dataset",
    "inverted_index_profile",
    "make_job_spec",
    "table3_cases",
    "teragen_dataset",
    "terasort_profile",
    "text_search_profile",
    "wikipedia_dataset",
    "wordcount_profile",
]
