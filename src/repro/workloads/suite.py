"""The benchmark matrix: Table 3 of the paper.

Ten rows: {bigram, inverted index, word count, text search} x
{Wikipedia, Freebase}, plus Terasort (synthetic) and BBP.  Every row
carries the expected shuffle/output volumes so tests can assert the
calibration, and :func:`make_job_spec` turns a row into a submittable
job.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.configuration import Configuration
from repro.hdfs.filesystem import HdfsFileSystem
from repro.mapreduce.jobspec import JobSpec, WorkloadProfile
from repro.workloads.bbp import bbp_profile
from repro.workloads.bigram import bigram_profile
from repro.workloads.datasets import (
    DatasetSpec,
    bbp_dataset,
    freebase_dataset,
    teragen_dataset,
    wikipedia_dataset,
)
from repro.workloads.grep import text_search_profile
from repro.workloads.inverted_index import inverted_index_profile
from repro.workloads.terasort import terasort_profile
from repro.workloads.wordcount import wordcount_profile

# Table 3 reports volumes in decimal units (90.5 GB Wikipedia = 676
# 128-MiB blocks); the expected columns below use the same convention.
GB = 10**9
MB = 10**6


class JobType(enum.Enum):
    """Table 3's job classification."""

    MAP = "Map"
    SHUFFLE = "Shuffle"
    COMPUTE = "Compute"


@dataclass(frozen=True)
class BenchmarkCase:
    """One row of Table 3."""

    name: str
    dataset: DatasetSpec
    profile: WorkloadProfile
    num_reducers: int
    job_type: JobType
    #: Table 3's reported volumes (bytes), for calibration checks.
    expected_shuffle_bytes: float
    expected_output_bytes: float

    @property
    def num_maps(self) -> int:
        return self.dataset.num_blocks

    def job_spec(
        self,
        fs: HdfsFileSystem,
        base_config: Optional[Configuration] = None,
        slowstart: float = 0.05,
    ) -> JobSpec:
        return make_job_spec(self, fs, base_config=base_config, slowstart=slowstart)


def make_job_spec(
    case: BenchmarkCase,
    fs: HdfsFileSystem,
    base_config: Optional[Configuration] = None,
    slowstart: float = 0.05,
) -> JobSpec:
    """Load the case's dataset (if needed) and build a job spec."""
    f = case.dataset.load(fs)
    return JobSpec(
        name=case.name,
        workload=case.profile,
        input_path=f.path,
        num_reducers=case.num_reducers,
        slowstart=slowstart,
        base_config=base_config or Configuration(),
    )


def table3_cases() -> List[BenchmarkCase]:
    """All ten benchmark rows of Table 3, in the paper's order."""
    wiki = wikipedia_dataset()
    free = freebase_dataset()
    return [
        BenchmarkCase(
            "bigram-wikipedia", wiki, bigram_profile("wikipedia"), 200,
            JobType.SHUFFLE, 80.8 * GB, 27.6 * GB,
        ),
        BenchmarkCase(
            "inverted-index-wikipedia", wiki, inverted_index_profile("wikipedia"),
            200, JobType.MAP, 38.0 * GB, 10.3 * GB,
        ),
        BenchmarkCase(
            "wordcount-wikipedia", wiki, wordcount_profile("wikipedia"), 200,
            JobType.MAP, 30.3 * GB, 8.6 * GB,
        ),
        BenchmarkCase(
            "text-search-wikipedia", wiki, text_search_profile("wikipedia"), 200,
            JobType.COMPUTE, 2.3 * GB, 469 * MB,
        ),
        BenchmarkCase(
            "bigram-freebase", free, bigram_profile("freebase"), 200,
            JobType.SHUFFLE, 84.8 * GB, 77.8 * GB,
        ),
        BenchmarkCase(
            "inverted-index-freebase", free, inverted_index_profile("freebase"),
            200, JobType.COMPUTE, 21.0 * GB, 11.0 * GB,
        ),
        BenchmarkCase(
            "wordcount-freebase", free, wordcount_profile("freebase"), 200,
            JobType.MAP, 16.7 * GB, 9.4 * GB,
        ),
        BenchmarkCase(
            "text-search-freebase", free, text_search_profile("freebase"), 200,
            JobType.COMPUTE, 906 * MB, 229 * MB,
        ),
        _terasort_row(),
        BenchmarkCase(
            "bbp", bbp_dataset(100), bbp_profile(), 1,
            JobType.COMPUTE, 252 * 1024, 0.0,
        ),
    ]


def _terasort_row() -> BenchmarkCase:
    """Table 3's Terasort row: the identity job shuffles and outputs
    exactly its input ("100 GB" of Teragen data)."""
    dataset = teragen_dataset(100.0)
    total = float(dataset.size_bytes)
    return BenchmarkCase(
        "terasort", dataset, terasort_profile(), 200, JobType.SHUFFLE, total, total
    )


def shrink_case(
    case: BenchmarkCase,
    num_blocks: Optional[int] = None,
    num_reducers: Optional[int] = None,
) -> BenchmarkCase:
    """Shrink a case's dataset and/or reducer count.

    The dataset is renamed (``<name>-x<blocks>``) so a shrunk file can
    never alias its full-size sibling inside one cluster.  This is the
    single shrinking path shared by the declarative run requests and
    the tuning service's profile catalog.
    """
    if num_blocks is not None:
        dataset = dataclasses.replace(
            case.dataset,
            name=f"{case.dataset.name}-x{num_blocks}",
            num_blocks=num_blocks,
        )
        case = dataclasses.replace(case, dataset=dataset)
    if num_reducers is not None:
        case = dataclasses.replace(case, num_reducers=num_reducers)
    return case


#: The six application profiles at service scale: one shrunk instance
#: per distinct workload family of Table 3 -- shuffle-heavy (terasort,
#: bigram), map-heavy (wordcount, inverted-index), compute-heavy
#: (text-search, bbp) -- sized so a continuous stream of them keeps the
#: cluster busy without any single job dominating the wall clock.
SERVICE_PROFILES: Tuple[Tuple[str, int, int], ...] = (
    ("terasort", 12, 4),
    ("bigram-freebase", 8, 3),
    ("wordcount-wikipedia", 8, 3),
    ("inverted-index-wikipedia", 8, 3),
    ("text-search-freebase", 8, 3),
    ("bbp", 4, 1),
)


def service_case(profile: str) -> BenchmarkCase:
    """The service-scale instance of one of the six profiles."""
    for name, blocks, reducers in SERVICE_PROFILES:
        if name == profile:
            return shrink_case(case_by_name(name), blocks, reducers)
    known = [name for name, _b, _r in SERVICE_PROFILES]
    raise KeyError(f"unknown service profile {profile!r}, want one of {known}")


def case_by_name(name: str) -> BenchmarkCase:
    for case in table3_cases():
        if case.name == name:
            return case
    raise KeyError(f"unknown benchmark case {name!r}")


def terasort_case(size_gb: float, num_reducers: Optional[int] = None) -> BenchmarkCase:
    """A Terasort instance of arbitrary size (the Figure-13 sweep).

    Following Section 8.4, reducers default to ~1/4 of the map count.
    """
    dataset = teragen_dataset(size_gb)
    if num_reducers is None:
        num_reducers = max(1, dataset.num_blocks // 4)
    total = dataset.size_bytes
    return BenchmarkCase(
        f"terasort-{size_gb:g}gb", dataset, terasort_profile(), num_reducers,
        JobType.SHUFFLE, float(total), float(total),
    )
