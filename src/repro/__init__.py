"""MRONLINE reproduction: online MapReduce performance tuning.

A full Python reproduction of "MRONLINE: MapReduce Online Performance
Tuning" (Li et al., HPDC 2014) on a deterministic discrete-event
simulation of a YARN cluster.

Layering (bottom-up):

- :mod:`repro.sim` -- discrete-event engine and fair-shared resources
- :mod:`repro.cluster` -- nodes, disks, network, containers
- :mod:`repro.hdfs` -- blocks, replication, locality
- :mod:`repro.yarn` -- resource manager, schedulers, app master
- :mod:`repro.mapreduce` -- task engine with Hadoop spill semantics
- :mod:`repro.monitor` -- slave/central monitors
- :mod:`repro.core` -- **MRONLINE itself**: parameter space, gray-box
  hill climbing, tuning rules, dynamic configurator, online tuner
- :mod:`repro.workloads` -- the paper's Table-3 benchmark suite
- :mod:`repro.baselines` -- default / offline-guide / Gunther / random
- :mod:`repro.experiments` -- per-figure evaluation protocols
"""

__version__ = "1.0.0"
__all__ = ["__version__"]
