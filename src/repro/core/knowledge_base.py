"""The tuning knowledge base: configurations learned across runs.

Section 3: "the tuning rules can also be stored in a tuning knowledge
base to be used across application runs".  Entries are keyed by
workload name and an input-size bucket (optimal configurations depend
on the data volume, Section 1); lookups can warm-start a later search
or configure a job outright.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from typing import Dict, Optional

from repro.core.configuration import Configuration


def size_bucket(input_bytes: float) -> int:
    """Bucket input sizes by powers of two of GB (1 GB granularity floor)."""
    gb = max(1.0, input_bytes / 1024**3)
    return int(round(math.log2(gb)))


@dataclass
class KnowledgeEntry:
    workload: str
    bucket: int
    config: Dict[str, float]
    cost: float
    job_duration: float
    runs: int = 1


class TuningKnowledgeBase:
    """A persistent map of (workload, size bucket) -> best known config."""

    def __init__(self) -> None:
        self._entries: Dict[tuple, KnowledgeEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def record(
        self,
        workload: str,
        input_bytes: float,
        config: Configuration,
        cost: float,
        job_duration: float,
    ) -> None:
        """Store a tuning outcome, keeping the best per key."""
        key = (workload, size_bucket(input_bytes))
        existing = self._entries.get(key)
        if existing is None or cost < existing.cost:
            self._entries[key] = KnowledgeEntry(
                workload, key[1], config.as_dict(), float(cost), float(job_duration)
            )
        else:
            existing.runs += 1

    def lookup(self, workload: str, input_bytes: float) -> Optional[Configuration]:
        """Best known configuration for the workload at this scale.

        Falls back to the nearest size bucket of the same workload (a
        configuration tuned for 60 GB beats the default for 100 GB).
        """
        bucket = size_bucket(input_bytes)
        exact = self._entries.get((workload, bucket))
        if exact is not None:
            return Configuration(exact.config)
        candidates = [e for (w, _b), e in self._entries.items() if w == workload]
        if not candidates:
            return None
        nearest = min(candidates, key=lambda e: abs(e.bucket - bucket))
        return Configuration(nearest.config)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps([asdict(e) for e in self._entries.values()], indent=2)

    @classmethod
    def from_json(cls, payload: str) -> "TuningKnowledgeBase":
        kb = cls()
        for item in json.loads(payload):
            entry = KnowledgeEntry(**item)
            kb._entries[(entry.workload, entry.bucket)] = entry
        return kb

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "TuningKnowledgeBase":
        with open(path) as fh:
            return cls.from_json(fh.read())
