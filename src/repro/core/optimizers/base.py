"""The ``Optimizer`` protocol and the shared wave machinery behind it.

MRONLINE's gray-box hill climber (Algorithm 1) is one point in a
design space the related work maps out: SPSA-style noisy gradient
descent, random search, Bayesian optimization, learned tuners.  All of
them fit the same asynchronous loop the online tuner speaks:

* :meth:`Optimizer.propose` hands out a *wave* of configuration
  samples (the same wave until it is fully observed; an empty list
  means the search has terminated);
* the tuner prices each sample with real task executions and feeds
  Equation-1 costs back through :meth:`Optimizer.observe`;
* when a wave is fully observed the backend advances its internal
  state (gradient step, recenter, shrink, ...);
* :meth:`Optimizer.rollback` voids an in-flight wave whose
  measurements the caller distrusts (fault-inflated), keeping the
  last-known-good configuration in charge;
* :meth:`Optimizer.mark_infeasible` brands a sample's neighborhood as
  OOM-prone so later waves auto-fail points landing there.

:class:`WaveOptimizer` implements the bookkeeping every backend shares
-- sample identity, wave lifecycle, infeasible regions, decision
listeners, and the best-cost trajectory the tuner tournament reports --
so a new backend only supplies :meth:`WaveOptimizer._make_batch` and
:meth:`WaveOptimizer._advance`.  The gray-box part is shared too:
:attr:`WaveOptimizer.bounds` is the rule-tightened sampling box every
backend draws from, which is what keeps the Section-6 rules effective
regardless of the search strategy behind them.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.core.configuration import Configuration, enforce_dependencies
from repro.core.neighborhood import Bounds
from repro.core.parameters import ParameterSpace

#: Chebyshev radius (in the unit cube) of the region around an
#: OOM-observed point that is treated as infeasible.  Small enough not
#: to wall off viable space, large enough to stop re-sampling the
#: immediate vicinity of a known failure.
INFEASIBLE_RADIUS = 0.06


class SearchPhase(enum.Enum):
    GLOBAL = "global"
    LOCAL = "local"
    DONE = "done"


#: Process-wide sample identity: ids tag launched tasks with the point
#: they evaluate, so they must be unique across every live optimizer
#: (map and reduce subspaces of many jobs share one configurator).
_sample_ids = itertools.count(1)


def next_sample_id() -> int:
    return next(_sample_ids)


@dataclass
class Sample:
    """One configuration point handed out for evaluation."""

    sample_id: int
    point: np.ndarray
    phase: SearchPhase
    costs: List[float] = field(default_factory=list)
    #: True when this sample re-evaluates the current best point.  Task
    #: costs are noisy (cluster context varies between waves), so the
    #: incumbent rides along in every batch and comparisons stay
    #: within-wave -- the noise-tolerance property Section 5 claims.
    incumbent: bool = False

    @property
    def cost(self) -> Optional[float]:
        return sum(self.costs) / len(self.costs) if self.costs else None


def uniform_sample(rng: np.random.Generator, n: int, bounds) -> np.ndarray:
    """Plain uniform sampling within per-dimension bounds (no strata)."""
    lo = np.array([b[0] for b in bounds])
    hi = np.array([b[1] for b in bounds])
    return lo + rng.random((n, len(bounds))) * (hi - lo)


@runtime_checkable
class Optimizer(Protocol):
    """What the online tuner requires from a search backend."""

    space: ParameterSpace
    bounds: Bounds
    samples_proposed: int
    decision_listeners: List[Callable[[str, Dict[str, object]], None]]

    @property
    def finished(self) -> bool: ...

    def propose(self) -> List[Sample]: ...

    def pending_samples(self) -> List[Sample]: ...

    def observe(self, sample_id: int, cost: float) -> None: ...

    def rollback(self) -> bool: ...

    def mark_infeasible(self, sample_id: int) -> None: ...

    def is_infeasible(self, point: np.ndarray) -> bool: ...

    def best_point(self) -> Optional[np.ndarray]: ...

    def best_cost(self) -> Optional[float]: ...

    def best_config(self, base: Optional[Configuration] = None) -> Configuration: ...


class WaveOptimizer:
    """Shared wave lifecycle for :class:`Optimizer` implementations.

    Subclasses provide:

    * :meth:`_make_batch` -- draw the next wave of samples (may consult
      :attr:`bounds`, which the gray-box rules tighten between waves);
    * :meth:`_advance` -- consume the fully observed wave in
      ``self._batch`` (the subclass empties it) and update search
      state, setting :attr:`_done` when the search should terminate;
    * :meth:`_has_incumbent` / :meth:`_incumbent_cost` -- whether a
      last-known-good configuration exists for :meth:`rollback`.
    """

    def __init__(self, space: ParameterSpace, rng: np.random.Generator) -> None:
        self.space = space
        self.rng = rng
        self.bounds = Bounds(len(space))
        self._batch: List[Sample] = []
        self._by_id: Dict[int, Sample] = {}
        #: Evaluations of one sample required before its cost is trusted.
        self.replicas = 1
        self._done = False
        #: Total samples handed out (diagnostics).
        self.samples_proposed = 0
        #: Total cost observations fed back (one per replica evaluation).
        self.observations = 0
        #: ``(observations, best raw cost so far)`` checkpoints, appended
        #: whenever a new minimum is observed -- the samples-to-target
        #: series the optimizer tournament reports.
        self.cost_trajectory: List[Tuple[int, float]] = []
        self._best_observed: Optional[float] = None
        #: Waves handed out so far (a rollback re-draw counts as a new
        #: wave -- it proposes fresh samples).
        self.waves_started = 0
        #: The wave during which the best-so-far cost was observed; the
        #: tuning service compares this across warm- and cold-started
        #: jobs ("warm starts reach their best in fewer waves").
        self.wave_of_best: Optional[int] = None
        #: Centers of regions observed to be infeasible (OOM-prone).
        self._infeasible_points: List[np.ndarray] = []
        #: Total infeasibility marks received (diagnostics).
        self.infeasible_marks = 0
        #: Observers of search decisions, called as ``fn(decision, info)``
        #: with a short decision string ("seed", "accept_local", ...) and
        #: a plain-data info dict.  Backends stay simulation-agnostic;
        #: the tuner bridges these onto the telemetry bus.
        self.decision_listeners: List[Callable[[str, Dict[str, object]], None]] = []
        #: Incumbent reinstated by :meth:`restore`; consulted only when
        #: the subclass has no best sample of its own yet, so it cannot
        #: perturb a never-restored optimizer.
        self._restored_best: Optional[Sample] = None

    def _notify(self, decision: str, **info: object) -> None:
        if self.decision_listeners:
            for listener in self.decision_listeners:
                listener(decision, info)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._done

    def best_point(self) -> Optional[np.ndarray]:
        best = self._best_sample() or self._restored_best
        return None if best is None else best.point.copy()

    def best_cost(self) -> Optional[float]:
        best = self._best_sample() or self._restored_best
        return None if best is None else best.cost

    def best_config(self, base: Optional[Configuration] = None) -> Configuration:
        """Decode the best point into a full configuration."""
        base = base or Configuration()
        point = self.best_point()
        if point is None:
            return base
        return enforce_dependencies(base.updated(self.space.decode(point)))

    # ------------------------------------------------------------------
    # Batch protocol
    # ------------------------------------------------------------------
    def propose(self) -> List[Sample]:
        """Hand out the current batch (creating it if needed).

        Returns the same batch until it is fully observed; an empty list
        means the search has terminated.
        """
        if self.finished:
            return []
        if not self._batch:
            batch = self._make_batch()
            if not batch:
                # A backend that cannot draw another wave is done.
                self._done = True
                return []
            self._batch = batch
            for s in self._batch:
                self._by_id[s.sample_id] = s
            self.samples_proposed += len(self._batch)
            self.waves_started += 1
        return list(self._batch)

    def pending_samples(self) -> List[Sample]:
        """Samples of the current batch still lacking observations."""
        want = self.replicas
        return [s for s in self._batch if len(s.costs) < want]

    def observe(self, sample_id: int, cost: float) -> None:
        """Feed one evaluation back; advances the state when complete."""
        sample = self._by_id.get(sample_id)
        if sample is None:
            raise KeyError(f"unknown sample id {sample_id}")
        sample.costs.append(float(cost))
        self.observations += 1
        if self._best_observed is None or float(cost) < self._best_observed:
            self._best_observed = float(cost)
            self.cost_trajectory.append((self.observations, self._best_observed))
            self.wave_of_best = self.waves_started
        if not self.pending_samples() and self._batch:
            self._advance()

    def rollback(self) -> bool:
        """Void the in-flight batch and fall back to last-known-good.

        Safe-exploration escape hatch: when the caller decides a wave's
        measurements are untrustworthy (e.g. fetch-retry-inflated under
        network faults), the whole batch -- observations included -- is
        discarded *without* advancing the search state, so the
        last-known-good configuration stays in charge and the next
        :meth:`propose` re-draws around it.  Returns False when there is
        nothing to roll back to (no known-good configuration yet, or no
        batch in flight).
        """
        if not self._has_incumbent() or not self._batch:
            return False
        batch, self._batch = self._batch, []
        for sample in batch:
            sample.costs.clear()
        self._notify(
            "rollback",
            voided=len(batch),
            incumbent_cost=self._incumbent_cost(),
        )
        return True

    # ------------------------------------------------------------------
    # Infeasible regions
    # ------------------------------------------------------------------
    def mark_infeasible(self, sample_id: int) -> None:
        """Remember *sample_id*'s point as the center of a bad region.

        A configuration that OOMs is not merely expensive -- every point
        near it will OOM too.  Marked regions are consulted through
        :meth:`is_infeasible`, letting the caller auto-fail future
        samples that land there instead of burning task attempts on
        re-discovering the same wall.
        """
        sample = self._by_id.get(sample_id)
        if sample is None:
            raise KeyError(f"unknown sample id {sample_id}")
        self.infeasible_marks += 1
        self._notify(
            "infeasible",
            sample_id=sample_id,
            regions=len(self._infeasible_points) + 1,
        )
        for known in self._infeasible_points:
            if np.array_equal(known, sample.point):
                return
        self._infeasible_points.append(sample.point.copy())

    def is_infeasible(self, point: np.ndarray) -> bool:
        """True when *point* lies inside a known-infeasible region."""
        for known in self._infeasible_points:
            if float(np.max(np.abs(point - known))) <= INFEASIBLE_RADIUS:
                return True
        return False

    @property
    def infeasible_regions(self) -> int:
        return len(self._infeasible_points)

    # ------------------------------------------------------------------
    # Checkpoint / restore (crash recovery)
    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict[str, object]:
        """A JSON-safe snapshot of the shared search state.

        Valid between waves: the in-flight batch is deliberately
        excluded (a crash voids it anyway -- see the tuner's
        degraded-mode rollback), and sample ids are process-global, so
        a restored optimizer hands out fresh ids.  What survives is
        everything the recovery journal needs to reason about the
        search: counters, the best-cost trajectory, the rule-tightened
        sampling bounds, and the infeasible regions.
        """
        return {
            "samples_proposed": int(self.samples_proposed),
            "observations": int(self.observations),
            "waves_started": int(self.waves_started),
            "wave_of_best": self.wave_of_best,
            "best_observed": self._best_observed,
            "cost_trajectory": [
                [int(n), float(c)] for n, c in self.cost_trajectory
            ],
            "bounds_lo": [float(x) for x in self.bounds.lo],
            "bounds_hi": [float(x) for x in self.bounds.hi],
            "infeasible_points": [
                [float(x) for x in p] for p in self._infeasible_points
            ],
            "infeasible_marks": int(self.infeasible_marks),
            "done": bool(self.finished),
            "incumbent_point": (
                None
                if self.best_point() is None
                else [float(x) for x in self.best_point()]
            ),
            "incumbent_cost": self.best_cost(),
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Reinstate a :meth:`checkpoint` snapshot onto this optimizer.

        The optimizer must be freshly constructed (no batch in flight);
        the next :meth:`propose` draws a new wave inside the restored
        bounds, avoiding the restored infeasible regions.
        """
        if self._batch:
            raise RuntimeError("cannot restore over an in-flight batch")
        self.samples_proposed = int(state["samples_proposed"])
        self.observations = int(state["observations"])
        self.waves_started = int(state["waves_started"])
        wave_of_best = state["wave_of_best"]
        self.wave_of_best = None if wave_of_best is None else int(wave_of_best)
        best = state["best_observed"]
        self._best_observed = None if best is None else float(best)
        self.cost_trajectory = [
            (int(n), float(c)) for n, c in state["cost_trajectory"]
        ]
        self.bounds.lo = np.asarray(state["bounds_lo"], dtype=float)
        self.bounds.hi = np.asarray(state["bounds_hi"], dtype=float)
        self._infeasible_points = [
            np.asarray(p, dtype=float) for p in state["infeasible_points"]
        ]
        self.infeasible_marks = int(state["infeasible_marks"])
        self._done = bool(state["done"])
        if self._done and hasattr(self, "phase"):
            # Backends that track termination through a phase machine
            # (the gray-box hill climber) report ``finished`` off it.
            self.phase = SearchPhase.DONE
        point = state.get("incumbent_point")
        if point is None:
            self._restored_best = None
        else:
            cost = state.get("incumbent_cost")
            self._restored_best = Sample(
                sample_id=next_sample_id(),
                point=np.asarray(point, dtype=float),
                phase=SearchPhase.LOCAL,
                costs=[] if cost is None else [float(cost)],
                incumbent=True,
            )

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _make_batch(self) -> List[Sample]:
        raise NotImplementedError

    def _advance(self) -> None:
        raise NotImplementedError

    def _best_sample(self) -> Optional[Sample]:
        raise NotImplementedError

    def _has_incumbent(self) -> bool:
        return self._best_sample() is not None or self._restored_best is not None

    def _incumbent_cost(self) -> Optional[float]:
        best = self._best_sample() or self._restored_best
        return None if best is None else best.cost
