"""SPSA-style noisy gradient descent over the configuration space.

Simultaneous Perturbation Stochastic Approximation (Spall), the
optimizer the Hadoop auto-tuning line of work (arXiv 1611.10052) uses
in place of MRONLINE's hill climber: each wave evaluates the current
point plus ``pairs`` simultaneous-perturbation pairs
``theta +- c_k * delta`` (``delta`` a Rademacher draw), estimates the
gradient from the cost difference of each pair, and takes a decaying
step ``a_k`` downhill.

Two adaptations for the tuner's environment:

* **parameter-scaled perturbations** -- both the perturbation and the
  step are scaled per-dimension by the current gray-box bounds span, so
  a dimension the Section-6 rules have tightened is probed (and moved)
  proportionally less;
* **bound clipping** -- perturbed points are clipped into the bounds
  box, and the gradient divides by each pair's *actual* (post-clip)
  displacement, so a ``theta`` pinned against a parameter bound never
  divides by a vanished perturbation.

Every wave re-evaluates ``theta`` as the incumbent sample, which keeps
the tuner's rollback-on-suspect-wave anchor (last-known-good ``theta``)
and cost trend tracking working exactly as they do for the climber.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.optimizers.base import (
    Sample,
    SearchPhase,
    WaveOptimizer,
    next_sample_id,
)
from repro.core.parameters import ParameterSpace

#: Displacements (in normalized coordinates) below this are treated as
#: fully clipped: the pair carries no gradient signal on that dimension.
_MIN_DISPLACEMENT = 1e-9


@dataclass(frozen=True)
class SpsaSettings:
    """SPSA gain sequences and wave shape (Spall's guideline defaults)."""

    #: Step-size scale ``a`` in ``a_k = a / (k + 1 + stability)^alpha``.
    a: float = 0.35
    #: Perturbation scale ``c`` (fraction of each dimension's bounded
    #: span) in ``c_k = c / (k + 1)^gamma``.
    c: float = 0.15
    alpha: float = 0.602
    gamma: float = 0.101
    #: Spall's stability constant ``A`` (softens early steps).
    stability: float = 2.0
    #: Simultaneous-perturbation pairs averaged per wave.
    pairs: int = 2
    #: Gradient iterations (waves) before the search terminates.
    iterations: int = 20
    #: Waves without a new best observation before giving up early.
    patience: int = 8
    #: Task evaluations per sample before its cost is trusted.
    replicas: int = 1

    def __post_init__(self) -> None:
        if self.a <= 0 or self.c <= 0:
            raise ValueError("gain scales a and c must be positive")
        if self.pairs < 1:
            raise ValueError("pairs must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")


class SpsaOptimizer(WaveOptimizer):
    """Noisy gradient descent behind the ``Optimizer`` protocol."""

    def __init__(
        self,
        space: ParameterSpace,
        rng: np.random.Generator,
        settings: Optional[SpsaSettings] = None,
        seed_point: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(space, rng)
        self.settings = settings or SpsaSettings()
        self.replicas = self.settings.replicas
        self._seed_point = seed_point
        self._theta: Optional[np.ndarray] = None
        self._theta_cost: Optional[float] = None
        self._best: Optional[Sample] = None
        self._pairs: List[Tuple[Sample, Sample]] = []
        self.iteration = 0
        self._stale_waves = 0

    def _spans(self) -> np.ndarray:
        return np.asarray(self.bounds.hi - self.bounds.lo, dtype=float)

    def _best_sample(self) -> Optional[Sample]:
        return self._best

    def _has_incumbent(self) -> bool:
        # Rollback anchors on theta, the last point whose measurements
        # were clean -- available once the first wave has been observed.
        return self._theta_cost is not None

    def _incumbent_cost(self) -> Optional[float]:
        return self._theta_cost

    def _make_batch(self) -> List[Sample]:
        st = self.settings
        if self._theta is None:
            if self._seed_point is not None:
                theta = self.bounds.clip(np.asarray(self._seed_point, dtype=float))
                self._seed_point = None
            else:
                theta = (self.bounds.lo + self.bounds.hi) / 2.0
            self._theta = np.asarray(theta, dtype=float)
        ck = st.c / (self.iteration + 1) ** st.gamma
        spans = self._spans()
        self._pairs = []
        batch: List[Sample] = []
        for _ in range(st.pairs):
            delta = self.rng.integers(0, 2, size=len(self.space)) * 2.0 - 1.0
            step = ck * spans * delta
            plus = Sample(
                next_sample_id(), self.bounds.clip(self._theta + step), SearchPhase.LOCAL
            )
            minus = Sample(
                next_sample_id(), self.bounds.clip(self._theta - step), SearchPhase.LOCAL
            )
            self._pairs.append((plus, minus))
            batch.extend((plus, minus))
        batch.append(
            Sample(next_sample_id(), self._theta.copy(), SearchPhase.LOCAL, incumbent=True)
        )
        return batch

    def _advance(self) -> None:
        st = self.settings
        batch, self._batch = self._batch, []
        incumbent = next(s for s in batch if s.incumbent)
        self._theta_cost = incumbent.cost
        candidate = min(batch, key=lambda s: (s.cost, s.sample_id))
        improved = self._best is None or candidate.cost < self._best.cost
        if improved:
            self._best = candidate

        # Averaged gradient estimate in normalized (span-relative)
        # coordinates, from each pair's actual post-clip displacement.
        spans = np.maximum(self._spans(), _MIN_DISPLACEMENT)
        gradient = np.zeros(len(self.space))
        informative = 0
        for plus, minus in self._pairs:
            displacement = (plus.point - minus.point) / spans
            mask = np.abs(displacement) > _MIN_DISPLACEMENT
            if not mask.any():
                continue  # both points fully clipped onto theta's bound
            contribution = np.zeros_like(gradient)
            contribution[mask] = (plus.cost - minus.cost) / displacement[mask]
            gradient += contribution
            informative += 1
        if informative:
            gradient /= informative
        ak = st.a / (self.iteration + 1 + st.stability) ** st.alpha
        self._theta = self.bounds.clip(self._theta - ak * gradient * spans)
        self.iteration += 1
        self._stale_waves = 0 if improved else self._stale_waves + 1
        if self.iteration >= st.iterations or self._stale_waves >= st.patience:
            self._done = True
        self._notify(
            "spsa_done" if self._done else "spsa_step",
            iteration=self.iteration,
            cost=incumbent.cost,
            best_cost=self._best.cost,
            step_scale=ak,
        )
