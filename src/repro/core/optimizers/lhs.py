"""Pure Latin-hypercube search: stratified waves, no local phase.

The sampling-quality half of the climber without the hill-climbing
half: every wave is a fresh Latin hypercube over the gray-box bounds
(reusing :func:`repro.core.sampling.latin_hypercube`), so each wave's
marginals are stratified but no neighborhood ever forms.  Comparing it
against the full climber isolates how much of MRONLINE's win comes
from LHS coverage versus the global/local alternation.

Wave shape and termination are shared with
:class:`~repro.core.optimizers.random_search.RandomSearchOptimizer`;
only the draw differs.
"""

from __future__ import annotations

import numpy as np

from repro.core.optimizers.random_search import (
    RandomSearchOptimizer,
    RandomSearchSettings,
)
from repro.core.sampling import latin_hypercube

#: The LHS baseline reuses the random-search wave/termination knobs.
LhsSettings = RandomSearchSettings


class PureLhsOptimizer(RandomSearchOptimizer):
    """Wave-per-wave Latin hypercube search (no neighborhood phase)."""

    def _draw(self, n: int) -> np.ndarray:
        return latin_hypercube(self.rng, n, len(self.space), bounds=self.bounds.as_pairs())
