"""Pure random search: the baseline every smarter backend must beat.

Each wave draws ``wave_size`` uniform points inside the gray-box
bounds (so the Section-6 rules still focus it) plus a re-evaluation of
the best point found so far -- the incumbent sample that anchors
rollback and keeps improvement tests within-wave, mirroring the hill
climber's wave shape.  The search gives up after ``patience`` waves
without improvement or ``max_waves`` waves total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.optimizers.base import (
    Sample,
    SearchPhase,
    WaveOptimizer,
    next_sample_id,
    uniform_sample,
)
from repro.core.parameters import ParameterSpace


@dataclass(frozen=True)
class RandomSearchSettings:
    """Wave shape and termination for the random/LHS baselines."""

    #: Fresh samples per wave (matches the climber's global batch).
    wave_size: int = 24
    #: Waves without a within-wave improvement before giving up.
    patience: int = 5
    #: Hard cap on waves (runaway guard for noisy objectives).
    max_waves: int = 40
    #: Task evaluations per sample before its cost is trusted.
    replicas: int = 1

    def __post_init__(self) -> None:
        if self.wave_size < 1:
            raise ValueError("wave_size must be >= 1")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.max_waves < 1:
            raise ValueError("max_waves must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")


class RandomSearchOptimizer(WaveOptimizer):
    """Uniform random search behind the ``Optimizer`` protocol."""

    def __init__(
        self,
        space: ParameterSpace,
        rng: np.random.Generator,
        settings: Optional[RandomSearchSettings] = None,
        seed_point: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(space, rng)
        self.settings = settings or RandomSearchSettings()
        self.replicas = self.settings.replicas
        self._seed_point = seed_point
        self._best: Optional[Sample] = None
        self.waves = 0
        self._stale_waves = 0

    def _best_sample(self) -> Optional[Sample]:
        return self._best

    def _draw(self, n: int) -> np.ndarray:
        return uniform_sample(self.rng, n, self.bounds.as_pairs())

    def _make_batch(self) -> List[Sample]:
        points = self._draw(self.settings.wave_size)
        if self._seed_point is not None:
            points[0] = self.bounds.clip(np.asarray(self._seed_point, dtype=float))
            self._seed_point = None
        batch = [Sample(next_sample_id(), p, SearchPhase.GLOBAL) for p in points]
        if self._best is not None:
            batch.append(
                Sample(
                    next_sample_id(),
                    self._best.point.copy(),
                    SearchPhase.GLOBAL,
                    incumbent=True,
                )
            )
        return batch

    def _advance(self) -> None:
        st = self.settings
        batch, self._batch = self._batch, []
        fresh = [s for s in batch if not s.incumbent]
        candidate = min(fresh, key=lambda s: (s.cost, s.sample_id))
        incumbents = [s for s in batch if s.incumbent]
        reference = incumbents[0] if incumbents else None
        ref_cost = reference.cost if reference is not None else float("inf")
        self.waves += 1
        if candidate.cost < ref_cost:
            self._best = candidate
            self._stale_waves = 0
            decision = "accept_wave"
        else:
            if incumbents:
                self._best = incumbents[0]  # keep the cost fresh
            self._stale_waves += 1
            decision = "reject_wave"
        if self._stale_waves >= st.patience or self.waves >= st.max_waves:
            self._done = True
            decision = "give_up"
        self._notify(
            decision,
            wave=self.waves,
            sample_id=candidate.sample_id,
            cost=candidate.cost,
            best_cost=self._best.cost,
        )
