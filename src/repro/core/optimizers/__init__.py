"""Pluggable optimizer backends behind one propose/observe protocol.

The online tuner (and the offline candidate search) drive any backend
registered here through the :class:`~repro.core.optimizers.base.
Optimizer` protocol:

* ``hill_climb`` -- the paper's gray-box smart hill climber
  (:class:`repro.core.hill_climbing.GrayBoxHillClimber`, Algorithm 1);
* ``spsa`` -- SPSA-style noisy gradient descent with parameter-scaled
  perturbations (:mod:`repro.core.optimizers.spsa`);
* ``random`` -- uniform random search
  (:mod:`repro.core.optimizers.random_search`);
* ``lhs`` -- pure Latin-hypercube waves, no local phase
  (:mod:`repro.core.optimizers.lhs`).

Backends are raced on identical seeds by the tuner tournament
(``benchmarks/test_ablation_optimizer_tournament.py``); CI gates the
hill climber's pinned best cost and each backend's serial-vs-pool
digest.  ``docs/optimizers.md`` documents the protocol, each backend's
knobs, and how to add a new one.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.optimizers.base import (
    INFEASIBLE_RADIUS,
    Optimizer,
    Sample,
    SearchPhase,
    WaveOptimizer,
    next_sample_id,
    uniform_sample,
)
from repro.core.parameters import ParameterSpace

#: Registered backend names, in tournament order.  ``hill_climb`` is
#: the default everywhere and reproduces the pre-protocol behaviour
#: byte-identically.
OPTIMIZER_BACKENDS = ("hill_climb", "spsa", "random", "lhs")

DEFAULT_OPTIMIZER = "hill_climb"


def optimizer_settings(name: str, options: Optional[dict] = None):
    """Build *name*'s settings object from keyword *options*."""
    opts = dict(options or {})
    if name == "hill_climb":
        from repro.core.hill_climbing import HillClimbSettings

        return HillClimbSettings(**opts)
    if name == "spsa":
        from repro.core.optimizers.spsa import SpsaSettings

        return SpsaSettings(**opts)
    if name in ("random", "lhs"):
        from repro.core.optimizers.random_search import RandomSearchSettings

        return RandomSearchSettings(**opts)
    raise ValueError(
        f"unknown optimizer backend {name!r}, want one of {OPTIMIZER_BACKENDS}"
    )


def make_optimizer(
    name: str,
    space: ParameterSpace,
    rng: np.random.Generator,
    settings=None,
    seed_point: Optional[np.ndarray] = None,
) -> Optimizer:
    """Instantiate backend *name* over *space*.

    *settings* is the backend's own settings object (``None`` = that
    backend's defaults); a settings object built for a different
    backend is rejected rather than silently ignored.  The imports are
    local so ``repro.core.optimizers`` can be imported while
    ``repro.core.hill_climbing`` (which imports :mod:`.base`) is still
    initializing.
    """
    if name == "hill_climb":
        from repro.core.hill_climbing import GrayBoxHillClimber, HillClimbSettings

        _check_settings(name, settings, HillClimbSettings)
        return GrayBoxHillClimber(space, rng, settings, seed_point=seed_point)
    if name == "spsa":
        from repro.core.optimizers.spsa import SpsaOptimizer, SpsaSettings

        _check_settings(name, settings, SpsaSettings)
        return SpsaOptimizer(space, rng, settings, seed_point=seed_point)
    if name == "random":
        from repro.core.optimizers.random_search import (
            RandomSearchOptimizer,
            RandomSearchSettings,
        )

        _check_settings(name, settings, RandomSearchSettings)
        return RandomSearchOptimizer(space, rng, settings, seed_point=seed_point)
    if name == "lhs":
        from repro.core.optimizers.lhs import LhsSettings, PureLhsOptimizer

        _check_settings(name, settings, LhsSettings)
        return PureLhsOptimizer(space, rng, settings, seed_point=seed_point)
    raise ValueError(
        f"unknown optimizer backend {name!r}, want one of {OPTIMIZER_BACKENDS}"
    )


def _check_settings(name: str, settings, expected: type) -> None:
    if settings is not None and not isinstance(settings, expected):
        raise TypeError(
            f"backend {name!r} expects {expected.__name__} settings, "
            f"got {type(settings).__name__}"
        )


__all__ = [
    "DEFAULT_OPTIMIZER",
    "INFEASIBLE_RADIUS",
    "OPTIMIZER_BACKENDS",
    "Optimizer",
    "Sample",
    "SearchPhase",
    "WaveOptimizer",
    "make_optimizer",
    "next_sample_id",
    "optimizer_settings",
    "uniform_sample",
]
