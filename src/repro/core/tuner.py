"""The online tuner: monitor -> tuner -> dynamic configurator loop.

Two strategies (Section 2.3):

* :attr:`TuningStrategy.AGGRESSIVE` -- expedited test runs.  A
  :class:`GrayBoxHillClimber` per task type searches the map and reduce
  parameter subspaces; each batch of sampled configurations is queued
  at the dynamic configurator and a gate holds further task launches
  until the wave's statistics are in.  Between waves the Section-6
  rules tighten the sampling bounds (the gray box).
* :attr:`TuningStrategy.CONSERVATIVE` -- fast single run.  Tasks start
  with the job's defaults; every completed window of tasks drives the
  rules directly, updating the job-level configuration for future tasks
  and hot-swapping category-3 parameters into running ones.  Scheduling
  is never delayed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.core import parameters as P
from repro.core.configuration import Configuration, enforce_dependencies
from repro.core.configurator import DynamicConfigurator
from repro.core.cost import FAILURE_COST, CostModel, effective_duration, task_cost
from repro.core.hill_climbing import HillClimbSettings
from repro.core.knowledge_base import TuningKnowledgeBase
from repro.core.optimizers import DEFAULT_OPTIMIZER, OPTIMIZER_BACKENDS, make_optimizer
from repro.core.parameters import PARAMETER_SPACE
from repro.core.rules.base import RuleContext, TuningRule, default_rules
from repro.mapreduce.jobspec import JobSpec, TaskId, TaskType
from repro.monitor.statistics import TaskStats
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.yarn.app_master import LaunchGate, MRAppMaster

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.harness import SimCluster

#: The map-side parameter subspace searched by the aggressive strategy.
MAP_TUNABLE = [
    P.MAP_MEMORY_MB,
    P.IO_SORT_MB,
    P.SORT_SPILL_PERCENT,
    P.MAP_CPU_VCORES,
    P.IO_SORT_FACTOR,
]

#: The reduce-side subspace.
REDUCE_TUNABLE = [
    P.REDUCE_MEMORY_MB,
    P.SHUFFLE_INPUT_BUFFER_PERCENT,
    P.SHUFFLE_MERGE_PERCENT,
    P.SHUFFLE_MEMORY_LIMIT_PERCENT,
    P.MERGE_INMEM_THRESHOLD,
    P.REDUCE_INPUT_BUFFER_PERCENT,
    P.REDUCE_CPU_VCORES,
    P.SHUFFLE_PARALLELCOPIES,
]


class TuningStrategy(enum.Enum):
    AGGRESSIVE = "aggressive"
    CONSERVATIVE = "conservative"


@dataclass(frozen=True)
class TunerSettings:
    hill_climb: HillClimbSettings = field(default_factory=HillClimbSettings)
    #: Conservative strategy: completed tasks per rule-update window.
    conservative_window: int = 16
    #: Warm-start searches from the knowledge base when possible.
    use_knowledge_base: bool = True
    #: Aggressive-strategy search backend (see repro.core.optimizers).
    optimizer: str = DEFAULT_OPTIMIZER
    #: Backend-specific settings object; ``None`` uses :attr:`hill_climb`
    #: for the hill climber and the backend's own defaults otherwise.
    optimizer_settings: Optional[object] = None

    def __post_init__(self) -> None:
        if self.optimizer not in OPTIMIZER_BACKENDS:
            raise ValueError(
                f"unknown optimizer {self.optimizer!r}, "
                f"want one of {OPTIMIZER_BACKENDS}"
            )

    def search_settings(self) -> Optional[object]:
        """The settings object handed to the selected backend."""
        if self.optimizer_settings is not None:
            return self.optimizer_settings
        if self.optimizer == "hill_climb":
            return self.hill_climb
        return None


class _SearchState:
    """Aggressive-strategy state for one task type of one job."""

    def __init__(
        self,
        task_type: TaskType,
        names: List[str],
        rng: np.random.Generator,
        settings: Optional[object],
        seed_config: Optional[Configuration],
        optimizer: str = DEFAULT_OPTIMIZER,
    ) -> None:
        self.task_type = task_type
        self.space = PARAMETER_SPACE.subspace(names)
        seed_point = None
        if seed_config is not None:
            seed_point = self.space.encode(seed_config.as_dict())
        #: The search backend.  Historically always the hill climber,
        #: hence the name; any Optimizer-protocol backend fits.
        self.climber = make_optimizer(
            optimizer, self.space, rng, settings, seed_point=seed_point
        )
        self.bindings: Dict[str, int] = {}  # task id -> sample id
        #: Completed (sample_id, stats) pairs of the in-flight batch.
        self.result_buffer: List[Tuple[int, TaskStats]] = []
        self.window: List[TaskStats] = []
        self.history: List[TaskStats] = []
        self.memo: Dict[str, object] = {}
        self.slots = 0
        self.admission_queue: List[Event] = []
        self.wave = 0
        self.rule_log: List[str] = []
        self.search_done = False
        #: Admission/report accounting, used to detect a starved batch
        #: (all admitted tasks reported, yet samples remain unevaluated
        #: because the job has too few tasks left -- Section 8.4's small
        #: jobs, or the tail of any job).
        self.admitted = 0
        self.stats_seen = 0
        #: Set when cluster capacity changed while this batch was open;
        #: the wave is voided rather than scored (its measurements mix
        #: two different clusters).
        self.capacity_shifted = False
        #: Set when a control-plane outage (tuner crash or monitor
        #: blackout) overlapped this batch; voided like a capacity
        #: shift -- measurements taken while nobody was watching prove
        #: nothing about the configurations.
        self.outage_shifted = False
        #: Set when a tuner crash voided this batch (or deferred the
        #: next one); recovery reopens it from the incumbent.
        self.crash_voided = False


class _ConservativeState:
    """Conservative-strategy window for one task type of one job."""

    def __init__(self, task_type: TaskType) -> None:
        self.task_type = task_type
        self.window: List[TaskStats] = []
        self.history: List[TaskStats] = []
        self.memo: Dict[str, object] = {}
        self.rule_log: List[str] = []


class _TunerGate(LaunchGate):
    """Wave gate driven by the tuner's open sample batches."""

    def __init__(self, job: "_JobTuning", tuner: "OnlineTuner") -> None:
        self.job = job
        self.tuner = tuner

    def admit(self, task_type: TaskType, sim: Simulator) -> Event:
        ev = sim.event()
        state = self.job.search_states[task_type]
        if self.tuner.tuner_down():
            # Degraded mode: the tuner process is dead, so nobody is
            # gating.  Release immediately on the last-known-good job
            # configuration; wave -1 marks the launch as untracked.
            # The admitted bump keeps the starved-batch detector's
            # admitted/stats_seen balance honest (the stats still come).
            state.admitted += 1
            ev.succeed(-1)
        elif state.search_done:
            state.admitted += 1
            ev.succeed(state.wave)
        elif state.slots > 0:
            state.slots -= 1
            state.admitted += 1
            ev.succeed(state.wave)
        else:
            state.admission_queue.append(ev)
        return ev

    def task_completed(self, task_type: TaskType) -> None:
        pass  # replenishment happens per batch, on statistics arrival

    def retract(self, task_type: TaskType, admit_event: Event) -> None:
        state = self.job.search_states[task_type]
        if admit_event in state.admission_queue:
            state.admission_queue.remove(admit_event)
            # The killed attempt still reports synthesized statistics
            # (which bumps stats_seen); count it admitted so the starved-
            # batch detector's admitted/stats_seen balance holds.
            state.admitted += 1


class _JobTuning:
    """Everything the tuner tracks for one attached job."""

    def __init__(self, spec: JobSpec, input_bytes: float) -> None:
        self.spec = spec
        self.input_bytes = input_bytes
        self.cost_model = CostModel()
        self.search_states: Dict[TaskType, _SearchState] = {}
        self.conservative_states: Dict[TaskType, _ConservativeState] = {}
        self.gate: Optional[LaunchGate] = None
        self.finalized = False


class OnlineTuner:
    """The MRONLINE daemon: per-job tuning sessions over a configurator."""

    def __init__(
        self,
        strategy: TuningStrategy = TuningStrategy.CONSERVATIVE,
        settings: Optional[TunerSettings] = None,
        rng: Optional[np.random.Generator] = None,
        rules: Optional[List[TuningRule]] = None,
        knowledge_base: Optional[TuningKnowledgeBase] = None,
        configurator: Optional[DynamicConfigurator] = None,
    ) -> None:
        self.strategy = strategy
        self.settings = settings or TunerSettings()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.rules = rules if rules is not None else default_rules()
        # `or` would discard a caller's *empty* knowledge base (it is
        # falsy via __len__), silently severing cross-job warm starts.
        self.knowledge_base = (
            knowledge_base if knowledge_base is not None else TuningKnowledgeBase()
        )
        self.configurator = configurator or DynamicConfigurator()
        self._jobs: Dict[str, _JobTuning] = {}
        #: job id -> the knowledge-base configuration that seeded its
        #: search (None on a cold start).  The tuning service reads this
        #: to report warm-start provenance and to assert determinism.
        self.warm_start_seeds: Dict[str, Optional[Configuration]] = {}
        self.configurator.assignment_listeners.append(self._on_assignment)
        #: Times of elastic capacity changes (joins/departures); waves
        #: spanning one are capacity-shifted and excluded from tuning.
        self._capacity_changes: List[float] = []
        self._elastic: Optional[object] = None
        #: Control-plane outage windows (tuner crashes and monitor
        #: blackouts); measurements overlapping one are quarantined.
        self._outage_windows: List[Tuple[float, float]] = []
        #: True while the (simulated) tuner process is crashed.
        self._down = False
        #: Simulated time the current outage ends; overlapping crashes
        #: extend it, and a stale recovery callback checks against it.
        self._down_until = 0.0
        self._control: Optional[object] = None
        #: Telemetry bus for ``tuner``-category events; :meth:`submit`
        #: picks it up from the cluster's simulator automatically.
        self.telemetry = None

    def _tel(self):
        """The bus when someone subscribed to tuner events, else None."""
        tel = self.telemetry
        if tel is not None and tel.wants("tuner"):
            return tel
        return None

    def _on_assignment(
        self, job_id: str, task_id: TaskId, config: Configuration, meta: object
    ) -> None:
        """Record which hill-climbing sample a launching task evaluates."""
        job = self._jobs.get(job_id)
        if job is None or meta is None:
            return
        state = job.search_states.get(task_id.task_type)
        if state is not None:
            state.bindings[str(task_id)] = int(meta)

    # ------------------------------------------------------------------
    # Job attachment
    # ------------------------------------------------------------------
    def attach_job(
        self, spec: JobSpec, input_bytes: float = 0.0
    ) -> Tuple[DynamicConfigurator, LaunchGate]:
        """Prepare tuning for *spec*; returns (config provider, gate)."""
        if spec.job_id in self._jobs:
            raise ValueError(f"job {spec.job_id!r} already attached")
        self.configurator.register_job(spec)
        job = _JobTuning(spec, input_bytes)
        self._jobs[spec.job_id] = job
        seed = None
        if self.settings.use_knowledge_base and input_bytes > 0:
            seed = self.knowledge_base.lookup(spec.workload.name, input_bytes)
        self.warm_start_seeds[spec.job_id] = seed
        if self.strategy is TuningStrategy.AGGRESSIVE:
            search = self.settings.search_settings()
            for task_type, names in (
                (TaskType.MAP, MAP_TUNABLE),
                (TaskType.REDUCE, REDUCE_TUNABLE),
            ):
                state = _SearchState(
                    task_type,
                    names,
                    self.rng,
                    search,
                    seed_config=seed,
                    optimizer=self.settings.optimizer,
                )
                job.search_states[task_type] = state
                self._bridge_search_decisions(spec.job_id, state)
                self._open_batch(job, state)
            job.gate = _TunerGate(job, self)
        else:
            if seed is not None:
                # Knowledge-base hit: start the single run from it.
                self.configurator.set_job_parameters(spec.job_id, seed.as_dict())
            for task_type in (TaskType.MAP, TaskType.REDUCE):
                job.conservative_states[task_type] = _ConservativeState(task_type)
            job.gate = LaunchGate()
        return self.configurator, job.gate

    def _bridge_search_decisions(self, job_id: str, state: _SearchState) -> None:
        """Forward hill-climber decisions onto the telemetry bus."""
        tel = self._tel()
        if tel is None:
            return
        task_type = state.task_type.value

        def forward(decision: str, info: Dict[str, object]) -> None:
            from repro.telemetry.events import SearchDecision

            tel.emit(
                SearchDecision(
                    time=tel.now,
                    job_id=job_id,
                    task_type=task_type,
                    decision=decision,
                    detail=info,
                )
            )
            tel.increment("tuner.search_decisions")

        state.climber.decision_listeners.append(forward)

    def submit(
        self, sim_cluster: "SimCluster", spec: JobSpec, weight: float = 1.0
    ) -> MRAppMaster:
        """Attach, submit, and wire statistics in one call.

        *weight* is the job's fair-share weight (the tuning service
        submits each tenant's jobs under the tenant's weight); the
        default of 1.0 preserves the historical single-tenant behavior.
        """
        if self.telemetry is None:
            self.telemetry = sim_cluster.sim.telemetry
        input_bytes = sim_cluster.hdfs.get(spec.input_path).size_bytes
        provider, gate = self.attach_job(spec, input_bytes=input_bytes)
        am = sim_cluster.submit(spec, config_provider=provider, gate=gate, weight=weight)
        am.stats_listeners.append(self.on_task_stats)
        am.completion.add_callback(lambda ev: self.finalize_job(spec.job_id, ev.value))
        elastic = getattr(
            getattr(sim_cluster, "fault_injector", None), "elastic", None
        )
        if elastic is not None and elastic is not self._elastic:
            # Elastic churn is armed: learn about every membership change
            # so waves spanning one are flagged capacity-shifted.
            self._elastic = elastic
            elastic.capacity_listeners.append(
                lambda t, e=elastic: self.note_capacity_change(
                    t, live_nodes=len(e.cluster.live_nodes)
                )
            )
        control = getattr(
            getattr(sim_cluster, "fault_injector", None), "control", None
        )
        if control is not None and control is not self._control:
            # Control-plane faults are armed: register for crash /
            # recover callbacks (a registration mid-outage crashes the
            # tuner in place, so late-submitted jobs degrade too).
            self._control = control
            control.register_tuner(self)
        return am

    def submit_to(self, backend, spec: JobSpec):
        """Attach, submit, and wire statistics on any execution backend.

        The backend-agnostic twin of :meth:`submit`: delegates to
        ``backend.attach_tuner(self, spec)`` (see
        :mod:`repro.backends.base`), which is responsible for the
        backend-specific wiring -- input sizing, stats listeners,
        completion finalization.  Returns the backend's job handle.
        """
        return backend.attach_tuner(self, spec)

    # ------------------------------------------------------------------
    # Elastic capacity changes
    # ------------------------------------------------------------------
    def note_capacity_change(self, time: float, live_nodes: int = 0) -> None:
        """React to a node joining or leaving the cluster at *time*.

        Open sample batches are flagged capacity-shifted (their wave is
        voided rather than scored -- see :meth:`_on_stats_aggressive`),
        and parallelism-style knobs re-clamp to the live capacity: more
        parallel shuffle copies than live map hosts buys nothing, so the
        search stops proposing them and single-run configs step down.
        """
        self._capacity_changes.append(time)
        for job in self._jobs.values():
            for state in job.search_states.values():
                if not state.search_done:
                    state.capacity_shifted = True
        if live_nodes <= 0:
            return
        spec = PARAMETER_SPACE.spec(P.SHUFFLE_PARALLELCOPIES)
        cap = float(max(int(spec.low), min(int(spec.high), live_nodes)))
        for job_id, job in self._jobs.items():
            for state in job.search_states.values():
                if P.SHUFFLE_PARALLELCOPIES not in state.space:
                    continue
                dim = state.space.names.index(P.SHUFFLE_PARALLELCOPIES)
                u = state.space.spec(P.SHUFFLE_PARALLELCOPIES).encode(cap)
                state.climber.bounds.lower_upper(dim, u)
                state.rule_log.append(
                    f"capacity change at t={time:.1f}: "
                    f"{P.SHUFFLE_PARALLELCOPIES} re-clamped to <= {cap:g} "
                    f"({live_nodes} live nodes)"
                )
            current = float(
                self.configurator.job_config(job_id)[P.SHUFFLE_PARALLELCOPIES]
            )
            if current > cap:
                self.configurator.set_task_parameters(
                    job_id, {P.SHUFFLE_PARALLELCOPIES: cap}
                )

    def _stats_capacity_shifted(self, stats: TaskStats) -> bool:
        """True when a capacity change landed inside the measurement."""
        return any(
            stats.start_time <= t <= stats.end_time
            for t in self._capacity_changes
        )

    # ------------------------------------------------------------------
    # Control-plane faults (tuner crash / monitor outage)
    # ------------------------------------------------------------------
    def tuner_down(self) -> bool:
        """True while the (simulated) tuner process is crashed."""
        return self._down

    def open_search_count(self) -> int:
        """How many per-task-type searches are currently open."""
        return sum(
            0 if state.search_done else 1
            for job in self._jobs.values()
            for state in job.search_states.values()
        )

    def note_control_outage(self, start: float, end: float) -> None:
        """Quarantine measurements spanning a control-plane outage.

        Used for monitor outages (and by :meth:`on_tuner_crash`): the
        job keeps running, but a wave whose measurements overlap the
        dark window is voided rather than scored, and overlapping
        samples are dropped from the rule windows -- Eq-1 inputs from a
        blind monitor prove nothing about the configurations.
        """
        self._outage_windows.append((start, end))
        for job in self._jobs.values():
            for state in job.search_states.values():
                if not state.search_done:
                    state.outage_shifted = True

    def _stats_outage_shifted(self, stats: TaskStats) -> bool:
        """True when the measurement overlaps a control-plane outage."""
        return any(
            stats.start_time <= end and start <= stats.end_time
            for start, end in self._outage_windows
        )

    def on_tuner_crash(self, now: float, until: float) -> int:
        """The tuner process died at *now*; it restarts at *until*.

        Open waves with an incumbent are voided immediately: their
        queued trial configurations are dropped, the job configuration
        is pinned to the last-known-good (incumbent) values, and every
        task parked at the gate launches untracked.  Waves still
        bootstrapping (no incumbent yet -- the initial sampling wave)
        keep draining their already-queued samples; only the quarantine
        flag is set, exactly as for a capacity shift.  Returns the
        number of waves voided.
        """
        self._down = True
        self._down_until = max(self._down_until, until)
        self.note_control_outage(now, until)
        voided = 0
        for job in self._jobs.values():
            for state in job.search_states.values():
                if state.search_done:
                    continue
                if state.climber.rollback():
                    voided += 1
                    state.crash_voided = True
                    self.configurator.clear_wave_queue(
                        job.spec.job_id, state.task_type
                    )
                    state.slots = 0
                    state.result_buffer = []
                    # Stats for voided samples must not reach observe():
                    # the batch they belonged to no longer exists.
                    state.bindings.clear()
                    best = state.climber.best_config(job.spec.base_config)
                    values = {name: best[name] for name in state.space.names}
                    self.configurator.set_job_parameters(job.spec.job_id, values)
                    state.rule_log.append(
                        f"wave {state.wave}: voided by tuner crash at "
                        f"t={now:.1f} (degraded on last-known-good until "
                        f"t={until:.1f})"
                    )
                # With the tuner dead nothing refills slots: release
                # everything parked at the gate, untracked.
                while state.admission_queue:
                    ev = state.admission_queue.pop(0)
                    state.admitted += 1
                    ev.succeed(-1)
        return voided

    def on_tuner_recover(self, now: float) -> int:
        """The tuner restarted; reopen every crash-voided search."""
        if now < self._down_until:
            return 0  # a later crash extended the outage
        self._down = False
        reopened = 0
        for job in self._jobs.values():
            for state in job.search_states.values():
                if state.search_done or not state.crash_voided:
                    continue
                state.crash_voided = False
                state.outage_shifted = False
                reopened += 1
                self._open_batch(job, state)
                self._maybe_finish_starved(job, state)
        return reopened

    # ------------------------------------------------------------------
    # Statistics ingestion
    # ------------------------------------------------------------------
    def on_task_stats(self, stats: TaskStats) -> None:
        job = self._jobs.get(stats.task_id.job_id)
        if job is None:
            return
        if stats.speculative:
            # Backup attempts bypass the gate and reuse the primary's
            # configuration; folding them in would double-count samples
            # and corrupt the admitted/stats_seen balance.  Crucially,
            # the *primary* may still be running, so its live config
            # entry must not be cleared either.
            return
        self.configurator.task_finished(stats.task_id)
        if self.strategy is TuningStrategy.AGGRESSIVE:
            self._on_stats_aggressive(job, stats)
        else:
            self._on_stats_conservative(job, stats)

    # -- aggressive path ----------------------------------------------------
    def _open_batch(self, job: _JobTuning, state: _SearchState) -> None:
        if self._down:
            # The tuner process is down: no new waves.  Recovery reopens
            # this search (covers jobs attached mid-outage too).
            state.crash_voided = True
            return
        want = state.climber.replicas
        while True:
            samples = state.climber.propose()
            if not samples:
                self._finish_search(job, state)
                return
            # Samples landing in a known-infeasible (OOM-observed) region
            # are priced at FAILURE_COST immediately instead of burning
            # real task attempts on them.  The incumbent is exempt: its
            # cost must stay freshly measured for the improvement test.
            infeasible = [
                s
                for s in state.climber.pending_samples()
                if not s.incumbent and state.climber.is_infeasible(s.point)
            ]
            for sample in infeasible:
                for _ in range(want - len(sample.costs)):
                    state.climber.observe(sample.sample_id, FAILURE_COST)
            pending = state.climber.pending_samples()
            if pending:
                break
            # The entire batch was auto-priced; the climber has advanced
            # (or finished) -- propose the next batch.
        base = job.spec.base_config
        configs: List[Tuple[Configuration, object]] = []
        for sample in pending:
            decoded = state.space.decode(sample.point)
            config = enforce_dependencies(base.updated(decoded))
            for _ in range(want - len(sample.costs)):
                configs.append((config, sample.sample_id))
        self.configurator.push_wave_configs(job.spec.job_id, state.task_type, configs)
        state.slots += len(configs)
        state.wave += 1
        tel = self._tel()
        if tel is not None:
            from repro.telemetry.events import WaveOpened

            tel.emit(
                WaveOpened(
                    time=tel.now,
                    job_id=job.spec.job_id,
                    task_type=state.task_type.value,
                    wave=state.wave,
                    num_configs=len(configs),
                )
            )
            tel.increment("tuner.waves_opened")
        self._drain_admissions(state)

    def _drain_admissions(self, state: _SearchState) -> None:
        while state.admission_queue and (state.slots > 0 or state.search_done):
            ev = state.admission_queue.pop(0)
            if not state.search_done:
                state.slots -= 1
            state.admitted += 1
            ev.succeed(state.wave)

    def _finish_search(self, job: _JobTuning, state: _SearchState) -> None:
        if state.search_done:
            return
        state.search_done = True
        # Future tasks of this type run the best configuration found.
        best = state.climber.best_config(job.spec.base_config)
        values = {name: best[name] for name in state.space.names}
        self.configurator.set_job_parameters(job.spec.job_id, values)
        self._drain_admissions(state)

    def _on_stats_aggressive(self, job: _JobTuning, stats: TaskStats) -> None:
        state = job.search_states[stats.task_type]
        state.stats_seen += 1
        state.window.append(stats)
        state.history.append(stats)
        job.cost_model.observe(stats)  # tracks job-level T_max
        sample_id = state.bindings.pop(str(stats.task_id), None)
        if sample_id is None or state.climber.finished:
            self._maybe_finish_starved(job, state)
            return
        if stats.failed and stats.failure_kind == "oom":
            # Config-induced failure: the sampled point (and its
            # vicinity) is infeasible, not merely expensive.  Later
            # batches auto-fail samples landing there (_open_batch).
            state.climber.mark_infeasible(sample_id)
        state.result_buffer.append((sample_id, stats))
        # A wave's costs are computed together, once every sample in the
        # batch has its required replica evaluations: normalizing the
        # duration term within the wave keeps the comparison about the
        # *configurations*, not about when in the job the wave ran (early
        # reducers, for instance, spend most of their time waiting for
        # map outputs regardless of configuration).
        counts: Dict[int, int] = {}
        for sid, _s in state.result_buffer:
            counts[sid] = counts.get(sid, 0) + 1
        want = state.climber.replicas
        pending = state.climber.pending_samples()
        if not pending or any(counts.get(s.sample_id, 0) < want for s in pending):
            self._maybe_finish_starved(job, state)
            return
        # Safe exploration: a wave dominated by environmental damage --
        # attempts lost to kills/crashes/output loss, or measurements
        # inflated by shuffle fetch retries -- says nothing about the
        # candidate configurations.  Void the batch, keep the incumbent
        # (last-known-good) untouched, and re-propose around it rather
        # than letting network weather steer the search.
        suspect = sum(
            1
            for _sid, s in state.result_buffer
            if (s.failed and s.failure_kind not in ("", "oom"))
            or s.fetch_retries > 0
        )
        total = len(state.result_buffer)
        # A wave observed across a capacity change compares measurements
        # taken on two different clusters: void it the same way.
        shifted = state.capacity_shifted or any(
            self._stats_capacity_shifted(s) for _sid, s in state.result_buffer
        )
        # Likewise for waves observed across a control-plane outage: the
        # monitor was dark (or the tuner dead) for part of the window.
        outage = state.outage_shifted or any(
            self._stats_outage_shifted(s) for _sid, s in state.result_buffer
        )
        if (
            (suspect > 0 and suspect * 2 >= total) or shifted or outage
        ) and state.climber.rollback():
            state.result_buffer = []
            state.window = []
            state.capacity_shifted = False
            state.outage_shifted = False
            if shifted:
                line = (
                    f"wave {state.wave}: rolled back "
                    f"(capacity-shifted: cluster membership changed mid-wave)"
                )
            elif outage:
                line = (
                    f"wave {state.wave}: rolled back "
                    f"(outage-shifted: control plane dark mid-wave)"
                )
            else:
                line = (
                    f"wave {state.wave}: rolled back "
                    f"({suspect}/{total} samples fault-inflated)"
                )
            state.rule_log.append(line)
            tel = self._tel()
            if tel is not None:
                from repro.telemetry.events import TunerRollback

                tel.emit(
                    TunerRollback(
                        time=tel.now,
                        job_id=job.spec.job_id,
                        task_type=state.task_type.value,
                        wave=state.wave,
                        suspect_samples=suspect,
                        total_samples=total,
                    )
                )
                tel.increment("tuner.rollbacks")
            self._open_batch(job, state)
            self._maybe_finish_starved(job, state)
            return
        durations = [
            effective_duration(s)
            for _sid, s in state.result_buffer
            if not s.failed
        ]
        t_max = max(durations) if durations else 1.0
        for sid, s in state.result_buffer:
            state.climber.observe(sid, task_cost(s, t_max))
        state.result_buffer = []
        state.capacity_shifted = False
        state.outage_shifted = False
        # Wave complete: gray-box bound adjustment, then the next batch.
        # Fetch-inflated measurements (nonzero fetch_retries) are kept in
        # the history but excluded from the rule window: their durations
        # and utilization mix reflect the network fault, not the config.
        ctx = RuleContext(
            task_type=state.task_type,
            space=state.space,
            bounds=state.climber.bounds,
            window=[
                s for s in state.window
                if s.fetch_retries == 0
                and not self._stats_capacity_shifted(s)
                and not self._stats_outage_shifted(s)
            ],
            history=state.history,
            rng=self.rng,
            memo=state.memo,
        )
        tel = self._tel()
        for rule in self.rules:
            lines = rule.adjust_bounds(ctx)
            state.rule_log.extend(lines)
            if tel is not None and lines:
                from repro.telemetry.events import RuleFired

                for line in lines:
                    tel.emit(
                        RuleFired(
                            time=tel.now,
                            job_id=job.spec.job_id,
                            task_type=state.task_type.value,
                            rule=type(rule).__name__,
                            detail=line,
                        )
                    )
                    tel.increment("tuner.rules_fired")
        state.window = []
        if state.climber.finished:
            self._finish_search(job, state)
        else:
            self._open_batch(job, state)
            self._maybe_finish_starved(job, state)

    def _maybe_finish_starved(self, job: _JobTuning, state: _SearchState) -> None:
        """End a search the job can no longer feed.

        If every admitted task has reported and samples are still
        unevaluated, no running task can ever complete the batch: the
        job simply has too few tasks left (the paper: "if too few tasks
        are executed, the configuration quality can be improved by
        multiple test runs").  Finish with the best validated point so
        queued tasks -- and with them the whole job -- are not
        deadlocked behind an unfillable wave.
        """
        if state.search_done:
            return
        outstanding = state.admitted - state.stats_seen
        if outstanding <= 0 and state.climber.pending_samples():
            self._finish_search(job, state)

    # -- conservative path ----------------------------------------------------
    def _on_stats_conservative(self, job: _JobTuning, stats: TaskStats) -> None:
        state = job.conservative_states[stats.task_type]
        state.history.append(stats)
        job.cost_model.observe(stats)
        if self._down:
            # Degraded mode: statistics keep accumulating in the history
            # but no rule updates fire until the tuner restarts.
            return
        state.window.append(stats)
        if len(state.window) < self.settings.conservative_window:
            return
        config = self.configurator.job_config(job.spec.job_id)
        ctx = RuleContext(
            task_type=state.task_type,
            space=PARAMETER_SPACE,
            bounds=None,  # bounds are an aggressive-strategy concept
            # Fetch-inflated and capacity-shifted stats stay in the
            # history but are dropped from the rule window (see
            # _on_stats_aggressive).
            window=[
                s for s in state.window
                if s.fetch_retries == 0
                and not self._stats_capacity_shifted(s)
                and not self._stats_outage_shifted(s)
            ],
            history=state.history,
            rng=self.rng,
            memo=state.memo,
        )
        changes: Dict[str, float] = {}
        for rule in self.rules:
            changes.update(rule.conservative_update(ctx, config.updated(changes)))
        if changes:
            feasible = enforce_dependencies(config.updated(changes))
            applied = {}
            for name in changes:
                if name not in feasible:
                    continue
                old, new = float(config[name]), float(feasible[name])
                # Hysteresis: skip sub-2% refinements so the configuration
                # settles instead of chasing estimate jitter.
                if old != 0 and abs(new - old) / abs(old) < 0.02:
                    continue
                if old == new:
                    continue
                applied[name] = new
            if applied:
                # Future tasks pick this up from the job config; running
                # tasks receive the hot-swappable subset immediately.
                self.configurator.set_task_parameters(job.spec.job_id, applied)
                line = ", ".join(f"{k}={v:g}" for k, v in sorted(applied.items()))
                state.rule_log.append(line)
                tel = self._tel()
                if tel is not None:
                    from repro.telemetry.events import RuleFired

                    tel.emit(
                        RuleFired(
                            time=tel.now,
                            job_id=job.spec.job_id,
                            task_type=state.task_type.value,
                            rule="conservative_window",
                            detail=line,
                        )
                    )
                    tel.increment("tuner.rules_fired")
        state.window = []

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def recommended_config(self, job_id: str) -> Configuration:
        """The configuration the tuning session recommends for re-runs."""
        job = self._jobs[job_id]
        base = job.spec.base_config
        if self.strategy is TuningStrategy.AGGRESSIVE:
            config = base.copy()
            for state in job.search_states.values():
                best = state.climber.best_config(base)
                for name in state.space.names:
                    config[name] = best[name]
            return enforce_dependencies(config)
        return enforce_dependencies(self.configurator.job_config(job_id).copy())

    def finalize_job(self, job_id: str, result: object = None) -> Configuration:
        """Record the session's outcome in the knowledge base."""
        job = self._jobs[job_id]
        config = self.recommended_config(job_id)
        if not job.finalized:
            job.finalized = True
            costs = []
            if self.strategy is TuningStrategy.AGGRESSIVE:
                for state in job.search_states.values():
                    c = state.climber.best_cost()
                    if c is not None:
                        costs.append(c)
            cost = sum(costs) if costs else float("inf")
            duration = getattr(result, "duration", 0.0) if result is not None else 0.0
            self.knowledge_base.record(
                job.spec.workload.name, job.input_bytes, config, cost, duration
            )
        return config

    def rule_log(self, job_id: str) -> List[str]:
        """Every gray-box adjustment made while tuning *job_id*."""
        job = self._jobs[job_id]
        out: List[str] = []
        for state in job.search_states.values():
            out.extend(state.rule_log)
        for cstate in job.conservative_states.values():
            out.extend(cstate.rule_log)
        return out

    def session_checkpoint(self, job_id: str) -> Dict[str, object]:
        """A JSON-safe snapshot of the session's optimizer state.

        One ``WaveOptimizer.checkpoint`` per task-type search --
        incumbent point and cost, rule-tightened bounds, infeasible
        regions, and the wave counters -- keyed for the recovery
        journal.  Conservative sessions have no search state and
        checkpoint to an empty mapping.
        """
        job = self._jobs[job_id]
        return {
            "job_id": job_id,
            "workload": job.spec.workload.name,
            "searches": {
                task_type.value: state.climber.checkpoint()
                for task_type, state in job.search_states.items()
            },
        }

    def session_summary(self, job_id: str) -> Dict[str, object]:
        """A structured account of the tuning session (for reports/UIs)."""
        job = self._jobs[job_id]
        summary: Dict[str, object] = {
            "job_id": job_id,
            "workload": job.spec.workload.name,
            "strategy": self.strategy.value,
            "recommended": self.recommended_config(job_id).as_dict(),
            "rule_adjustments": len(self.rule_log(job_id)),
        }
        if self.strategy is TuningStrategy.AGGRESSIVE:
            summary["optimizer"] = self.settings.optimizer
            searches = {}
            for task_type, state in job.search_states.items():
                searches[task_type.value] = {
                    "waves": state.wave,
                    "samples_proposed": state.climber.samples_proposed,
                    "tasks_evaluated": state.stats_seen,
                    "finished": state.climber.finished or state.search_done,
                    "best_cost": state.climber.best_cost(),
                    # The wave in which the running best was last
                    # improved (None when nothing was ever observed).
                    "wave_of_best": getattr(state.climber, "wave_of_best", None),
                    # (observation index, running best cost) pairs; the
                    # tournament derives samples-to-target from these.
                    "cost_trajectory": list(state.climber.cost_trajectory),
                }
            summary["searches"] = searches
        else:
            windows = {
                t.value: len(s.history)
                for t, s in job.conservative_states.items()
            }
            summary["tasks_observed"] = windows
        return summary
