"""Configuration objects and cross-parameter dependency clamps.

A :class:`Configuration` is a mapping from parameter name to value with
Table-2 defaults filled in.  :func:`enforce_dependencies` applies the
dependency rules Section 5 calls out:

- a map container must be big enough to hold its sort buffer
  (``io.sort.mb`` < map heap);
- ``shuffle.merge.percent`` must not exceed
  ``shuffle.input.buffer.percent``;
- vcore/memory grants must be positive and within the space bounds.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional

from repro.core import parameters as P
from repro.core.parameters import PARAMETER_SPACE, ParameterSpace

#: Fraction of container memory available as JVM heap (-Xmx is
#: conventionally set to ~80% of the container grant).
HEAP_FRACTION = 0.8

#: Fraction of the map-task heap that the sort buffer may occupy before
#: the framework deadlocks the task with OOM errors (S6.2's "io.sort.mb
#: should not exceed the memory size of map tasks", with headroom for
#: the map function itself).
MAX_SORT_BUFFER_HEAP_FRACTION = 0.75


class Configuration:
    """A complete job/task configuration (name -> value, with defaults)."""

    __slots__ = ("_values", "_space")

    def __init__(
        self,
        values: Optional[Mapping[str, float]] = None,
        space: Optional[ParameterSpace] = None,
    ) -> None:
        self._space = space or PARAMETER_SPACE
        self._values: Dict[str, float] = self._space.defaults()
        if values:
            for name, value in values.items():
                self[name] = value

    # -- mapping protocol ---------------------------------------------------
    def __getitem__(self, name: str) -> float:
        return self._values[name]

    def __setitem__(self, name: str, value: float) -> None:
        if name in self._space:
            value = self._space.spec(name).clamp(float(value))
        self._values[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._values == other._values

    def get(self, name: str, default: Optional[float] = None) -> Optional[float]:
        return self._values.get(name, default)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._values)

    def copy(self) -> "Configuration":
        return Configuration(self._values, space=self._space)

    def updated(self, changes: Mapping[str, float]) -> "Configuration":
        cfg = self.copy()
        for name, value in changes.items():
            cfg[name] = value
        return cfg

    @property
    def space(self) -> ParameterSpace:
        return self._space

    # -- convenience accessors (bytes, cores) -------------------------------
    MB = 1024 * 1024

    @property
    def map_memory_bytes(self) -> int:
        return int(self[P.MAP_MEMORY_MB]) * self.MB

    @property
    def reduce_memory_bytes(self) -> int:
        return int(self[P.REDUCE_MEMORY_MB]) * self.MB

    @property
    def map_heap_bytes(self) -> int:
        return int(self.map_memory_bytes * HEAP_FRACTION)

    @property
    def reduce_heap_bytes(self) -> int:
        return int(self.reduce_memory_bytes * HEAP_FRACTION)

    @property
    def sort_buffer_bytes(self) -> int:
        return int(self[P.IO_SORT_MB]) * self.MB

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        inner = ", ".join(
            f"{k.split('.')[-2]}.{k.split('.')[-1]}={v}"
            for k, v in sorted(self._values.items())
        )
        return f"Configuration({inner})"


def enforce_dependencies(config: Configuration) -> Configuration:
    """Return a copy of *config* with inter-parameter constraints applied.

    The hill climber samples parameters independently; this clamp maps
    any sampled point to the nearest *feasible* configuration, exactly
    the role the dependency rules play in Section 5.
    """
    cfg = config.copy()
    # Sort buffer must fit (with headroom) inside the map-task heap.
    max_sort_mb = int(
        cfg[P.MAP_MEMORY_MB] * HEAP_FRACTION * MAX_SORT_BUFFER_HEAP_FRACTION
    )
    if cfg[P.IO_SORT_MB] > max_sort_mb:
        cfg[P.IO_SORT_MB] = max(1, max_sort_mb)
    # Shuffle merge trigger cannot exceed the shuffle buffer itself.
    if cfg[P.SHUFFLE_MERGE_PERCENT] > cfg[P.SHUFFLE_INPUT_BUFFER_PERCENT]:
        cfg[P.SHUFFLE_MERGE_PERCENT] = cfg[P.SHUFFLE_INPUT_BUFFER_PERCENT]
    # memory.limit.percent is a fraction of the shuffle buffer; a single
    # segment admitted to memory must not exceed the merge trigger or the
    # merge could never fire.
    if cfg[P.SHUFFLE_MEMORY_LIMIT_PERCENT] > cfg[P.SHUFFLE_MERGE_PERCENT]:
        cfg[P.SHUFFLE_MEMORY_LIMIT_PERCENT] = cfg[P.SHUFFLE_MERGE_PERCENT]
    return cfg


def is_feasible(config: Configuration) -> bool:
    """True when *config* already satisfies every dependency clamp."""
    clamped = enforce_dependencies(config)
    return clamped.as_dict() == config.as_dict()
