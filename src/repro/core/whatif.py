"""What-if analysis for category-1 parameters (the paper's future work).

Category-1 parameters -- the number of reducers and
``mapreduce.job.reduce.slowstart.completedmaps`` -- cannot change once
a job has started (Section 2.2), so MRONLINE's online loop cannot tune
them; the paper defers them to "simulation tools, such as MRPerf".
This module is that tool: the reproduction's substrate *is* a
simulator, so a what-if engine can clone the deployment, replay the
job under candidate category-1 settings, and recommend the best --
complementing the online tuner, exactly as Section 10 envisions.

The engine deliberately reuses the public experiment harness: each
candidate evaluation is an ordinary simulated job run, so whatever
configuration the online tuner recommended can be carried into the
what-if runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.configuration import Configuration
from repro.mapreduce.jobspec import JobSpec, WorkloadProfile
from repro.workloads.datasets import DatasetSpec


@dataclass(frozen=True)
class CategoryOneCandidate:
    """One setting of the launch-time-only parameters."""

    num_reducers: int
    slowstart: float = 0.05

    def __post_init__(self) -> None:
        if self.num_reducers < 1:
            raise ValueError("num_reducers must be >= 1")
        if not 0.0 <= self.slowstart <= 1.0:
            raise ValueError("slowstart must be in [0, 1]")


@dataclass
class WhatIfOutcome:
    candidate: CategoryOneCandidate
    predicted_duration: float
    succeeded: bool


@dataclass
class CategoryOneAdvice:
    """The advisor's recommendation plus its full evaluation table."""

    best: CategoryOneCandidate
    predicted_duration: float
    evaluations: List[WhatIfOutcome]

    def speedup_over(self, candidate: CategoryOneCandidate) -> float:
        """Fractional improvement of the recommendation vs *candidate*."""
        for outcome in self.evaluations:
            if outcome.candidate == candidate:
                if outcome.predicted_duration <= 0:
                    return 0.0
                return (
                    outcome.predicted_duration - self.predicted_duration
                ) / outcome.predicted_duration
        raise KeyError(f"{candidate} was not evaluated")


def default_candidates(num_maps: int) -> List[CategoryOneCandidate]:
    """A small grid around Hadoop folklore settings.

    Reducer counts bracket the common "1/4 of the maps" rule; slowstart
    contrasts eager shuffle overlap with a late start.
    """
    reducer_options = sorted(
        {
            max(1, num_maps // 8),
            max(1, num_maps // 4),
            max(1, num_maps // 2),
            max(1, num_maps),
        }
    )
    out = []
    for reducers in reducer_options:
        for slowstart in (0.05, 0.8):
            out.append(CategoryOneCandidate(reducers, slowstart))
    return out


class CategoryOneAdvisor:
    """Simulation-backed advisor for reducer count and slowstart."""

    def __init__(self, seed: int = 0, cluster_spec=None) -> None:
        self.seed = seed
        self.cluster_spec = cluster_spec

    def evaluate(
        self,
        profile: WorkloadProfile,
        dataset: DatasetSpec,
        candidate: CategoryOneCandidate,
        base_config: Optional[Configuration] = None,
    ) -> WhatIfOutcome:
        """Run one cloned simulation under *candidate*."""
        from repro.experiments.harness import SimCluster

        cluster = SimCluster(
            seed=self.seed, cluster_spec=self.cluster_spec, start_monitors=False
        )
        f = dataset.load(cluster.hdfs)
        spec = JobSpec(
            name=f"whatif-{profile.name}",
            workload=profile,
            input_path=f.path,
            num_reducers=candidate.num_reducers,
            slowstart=candidate.slowstart,
            base_config=base_config or Configuration(),
        )
        result = cluster.run_job(spec)
        return WhatIfOutcome(candidate, result.duration, result.succeeded)

    def advise(
        self,
        profile: WorkloadProfile,
        dataset: DatasetSpec,
        base_config: Optional[Configuration] = None,
        candidates: Optional[Sequence[CategoryOneCandidate]] = None,
    ) -> CategoryOneAdvice:
        """Evaluate every candidate and recommend the fastest."""
        if candidates is None:
            candidates = default_candidates(dataset.num_blocks)
        if not candidates:
            raise ValueError("need at least one candidate")
        evaluations = [
            self.evaluate(profile, dataset, c, base_config) for c in candidates
        ]
        viable = [e for e in evaluations if e.succeeded] or evaluations
        best = min(viable, key=lambda e: e.predicted_duration)
        return CategoryOneAdvice(best.candidate, best.predicted_duration, evaluations)
