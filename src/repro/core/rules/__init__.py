"""Section-6 tuning rules.

Rules are the *gray* in gray-box: they translate monitored statistics
into (a) tighter sampling bounds for the aggressive hill climber and
(b) direct parameter updates for the conservative single-run strategy.
"""

from repro.core.rules.base import RuleContext, TuningRule, default_rules
from repro.core.rules.cpu import ParallelCopiesRule, SortFactorRule, VcoreRule
from repro.core.rules.memory import (
    ContainerMemoryRule,
    OomBackoffRule,
    ReduceBufferRule,
    SortBufferRule,
    SpillPercentRule,
)

__all__ = [
    "ContainerMemoryRule",
    "OomBackoffRule",
    "ParallelCopiesRule",
    "ReduceBufferRule",
    "RuleContext",
    "SortBufferRule",
    "SortFactorRule",
    "SpillPercentRule",
    "TuningRule",
    "VcoreRule",
    "default_rules",
]
