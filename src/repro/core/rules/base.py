"""Rule plumbing: context, protocol, helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.configuration import Configuration
from repro.core.neighborhood import Bounds
from repro.core.parameters import ParameterSpace
from repro.mapreduce.jobspec import TaskType
from repro.monitor.statistics import TaskStats

MB = 1024 * 1024


@dataclass
class RuleContext:
    """What a rule may look at when it fires.

    ``window`` is the most recent wave of completed tasks of the type
    being tuned; ``history`` is everything seen so far for that type.
    Rules only read monitored statistics -- never simulator internals.
    """

    task_type: TaskType
    space: ParameterSpace
    bounds: Bounds
    window: List[TaskStats]
    history: List[TaskStats]
    rng: np.random.Generator
    #: Scratch space rules use to remember their own state across waves
    #: (e.g. "did the last parallelcopies bump help?").
    memo: Dict[str, object] = field(default_factory=dict)

    # -- helpers ------------------------------------------------------------
    def dim(self, name: str) -> Optional[int]:
        """Index of *name* in the searched subspace, or None if absent."""
        try:
            return self.space.names.index(name)
        except ValueError:
            return None

    def encode(self, name: str, value: float) -> float:
        return self.space.spec(name).encode(value)

    def sampled_values(self, name: str) -> List[float]:
        """The values of *name* actually tried in the current window."""
        return [float(s.config[name]) for s in self.window if name in s.config]

    def ok_window(self) -> List[TaskStats]:
        return [s for s in self.window if not s.failed]

    def oom_failures(self) -> List[TaskStats]:
        return [
            s for s in self.window if s.failed and "OutOfMemory" in s.failure_reason
        ]

    def mean(self, values: Sequence[float]) -> float:
        vals = list(values)
        return sum(vals) / len(vals) if vals else 0.0

    def estimated_map_fixed_mem(self) -> float:
        """Gray-box estimate of the map user code's working set (bytes).

        A map container's reported resident set is approximately
        ``base_overhead + touched_sort_buffer + user_code``, where the
        touched buffer is bounded by the task's own map-output volume;
        subtracting the two framework terms isolates the user code.
        Used to keep the sort buffer from squeezing the map function out
        of the heap.
        """
        from repro.core import parameters as P

        base = 150 * MB  # JVM/code overhead, cf. task model constants
        estimates = []
        for s in self.history:
            if s.failed or s.task_type is not TaskType.MAP:
                continue
            sort_buffer = float(s.config.get(P.IO_SORT_MB, 100)) * MB
            touched = min(sort_buffer, s.map_output_bytes or sort_buffer)
            estimates.append(max(0.0, s.working_set_bytes - base - touched))
        return max(estimates) if estimates else 0.0


class TuningRule:
    """One Section-6 guideline.

    ``adjust_bounds`` implements the aggressive-strategy behaviour
    (narrow the hill climber's sampling region); ``conservative_update``
    implements the fast-single-run behaviour (return direct parameter
    changes to apply to future tasks).  Both return human-readable
    descriptions of what they did, which the tuner logs.
    """

    name = "rule"

    def adjust_bounds(self, ctx: RuleContext) -> List[str]:
        return []

    def conservative_update(
        self, ctx: RuleContext, config: Configuration
    ) -> Dict[str, float]:
        return {}


def default_rules() -> List[TuningRule]:
    """The full Section-6 rule set, in application order."""
    from repro.core.rules.cpu import ParallelCopiesRule, SortFactorRule, VcoreRule
    from repro.core.rules.memory import (
        ContainerMemoryRule,
        OomBackoffRule,
        ReduceBufferRule,
        SortBufferRule,
        SpillPercentRule,
    )

    return [
        OomBackoffRule(),
        ContainerMemoryRule(),
        SortBufferRule(),
        SpillPercentRule(),
        ReduceBufferRule(),
        VcoreRule(),
        ParallelCopiesRule(),
        SortFactorRule(),
    ]
