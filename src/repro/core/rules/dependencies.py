"""Cross-parameter dependency handling as a rule.

The actual clamps live in
:func:`repro.core.configuration.enforce_dependencies` (the app master
applies them to every task configuration); this module re-exports them
in rule form so rule pipelines can list dependency enforcement
explicitly, and provides a validation helper used by tests.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.configuration import Configuration, enforce_dependencies, is_feasible
from repro.core.rules.base import RuleContext, TuningRule


class DependencyRule(TuningRule):
    """Map any proposed configuration to the nearest feasible one."""

    name = "dependencies"

    def conservative_update(
        self, ctx: RuleContext, config: Configuration
    ) -> Dict[str, float]:
        clamped = enforce_dependencies(config)
        return {
            name: value
            for name, value in clamped.as_dict().items()
            if value != config[name]
        }


def violations(config: Configuration) -> List[str]:
    """Human-readable list of dependency violations in *config*."""
    out: List[str] = []
    clamped = enforce_dependencies(config)
    for name, value in clamped.as_dict().items():
        if value != config[name]:
            out.append(f"{name}: {config[name]} -> {value}")
    return out


__all__ = ["DependencyRule", "enforce_dependencies", "is_feasible", "violations"]
