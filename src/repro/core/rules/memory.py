"""Memory tuning rules (Section 6.2).

Four guidelines:

* container memory bounds follow observed utilization (over 90% ->
  raise the lower bound to the 80th percentile of sampled values;
  under 50% -> drop the upper bound to the 80th percentile);
* ``io.sort.mb`` follows the observed map-output size and spill ratio;
* ``sort.spill.percent`` is pinned at 0.99 while the buffer suffices,
  reset to the default when spilling is unavoidable;
* the reduce-side buffer stack is sized from the estimated reduce input
  (merge trigger equal to the shuffle buffer when everything fits,
  0.04 below it otherwise; in-memory merge threshold forced to 0).
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.core import parameters as P
from repro.core.configuration import HEAP_FRACTION, Configuration
from repro.core.rules.base import MB, RuleContext, TuningRule
from repro.mapreduce.jobspec import TaskType

OVER_UTILIZED = 0.90
UNDER_UTILIZED = 0.50
PERCENTILE = 80
#: Safety margin applied to size estimates (data volumes vary per task).
ESTIMATE_MARGIN = 1.15


def _memory_param(task_type: TaskType) -> str:
    return P.MAP_MEMORY_MB if task_type is TaskType.MAP else P.REDUCE_MEMORY_MB


class OomBackoffRule(TuningRule):
    """React to OutOfMemory attempts: grow the container, shrink buffers.

    The conservative strategy must not keep feeding a lethal
    configuration to new tasks, so OOM failures in the window trigger an
    immediate 25% container-memory increase (and a sort-buffer trim on
    the map side).  The aggressive strategy needs no such rule -- failed
    samples already receive :data:`~repro.core.cost.FAILURE_COST`.
    """

    name = "oom-backoff"
    GROWTH = 1.25

    def conservative_update(
        self, ctx: RuleContext, config: Configuration
    ) -> Dict[str, float]:
        if not ctx.oom_failures():
            return {}
        param = _memory_param(ctx.task_type)
        mem_spec = config.space.spec(param)
        target = mem_spec.clamp(
            math.ceil(float(config[param]) * self.GROWTH / 64.0) * 64
        )
        changes: Dict[str, float] = {}
        if target > config[param]:
            changes[param] = float(target)
        if ctx.task_type is TaskType.MAP:
            sort_spec = config.space.spec(P.IO_SORT_MB)
            trimmed = sort_spec.clamp(float(config[P.IO_SORT_MB]) * 0.8)
            if trimmed < config[P.IO_SORT_MB]:
                changes[P.IO_SORT_MB] = float(trimmed)
        return changes


class ContainerMemoryRule(TuningRule):
    """Tune the container grant toward the observed working set."""

    name = "container-memory"

    def adjust_bounds(self, ctx: RuleContext) -> List[str]:
        """Anchor the container-memory search range at the observed need.

        The monitored working sets tell us how much memory the tasks
        *actually* use (Section 6.2 "use the memory utilization
        statistics from node managers to determine the memory usage");
        bounding the search to a band around that need stops the climber
        from wasting waves on grossly over- or under-sized containers.
        The band is tight (x0.9 .. x1.15): the need estimate already
        carries buffer headroom, and a looser band would let the search
        trade wasted memory for per-task speed (bigger containers lower
        per-node parallelism -- good for one task, bad for the cluster).
        """
        param = _memory_param(ctx.task_type)
        dim = ctx.dim(param)
        if dim is None:
            return []
        ok = [s for s in ctx.history if not s.failed]
        if not ok:
            return []
        if ctx.task_type is TaskType.MAP:
            # Need = user code + a right-sized sort buffer (the buffer in
            # the observed working set may itself be mis-sized).
            fixed = ctx.estimated_map_fixed_mem()
            outs = [s.map_output_bytes for s in ok if s.map_output_bytes > 0]
            # Align with SortBufferRule's anchor: the container must host
            # a buffer that holds even the largest map outputs.
            buffer_need = (
                float(np.percentile(outs, 98)) * 1.2 if outs else 100 * MB
            )
            need_mb = (150 * MB + fixed + buffer_need) / HEAP_FRACTION / MB
        else:
            ins = [s.shuffled_bytes for s in ok if s.shuffled_bytes > 0]
            if not ins:
                return []
            est_in = float(np.percentile(ins, PERCENTILE)) * ESTIMATE_MARGIN
            # Heap that holds the whole shuffle in memory plus reducer state.
            need_mb = (est_in + 256 * MB) / HEAP_FRACTION / MB + 150
        spec_obj = ctx.space.spec(param)
        lo = spec_obj.clamp(need_mb * 0.9)
        hi = spec_obj.clamp(max(need_mb * 1.15, lo + 64))
        ctx.bounds.raise_lower(dim, ctx.encode(param, lo))
        ctx.bounds.lower_upper(dim, ctx.encode(param, hi))
        return [f"{param}: bounds -> [{lo:.0f}, {hi:.0f}] MB (need ~{need_mb:.0f})"]

    def conservative_update(
        self, ctx: RuleContext, config: Configuration
    ) -> Dict[str, float]:
        param = _memory_param(ctx.task_type)
        ok = ctx.ok_window()
        if not ok:
            return {}
        # Estimate the real need from observed peak working sets.
        need = max(s.working_set_bytes for s in ok) * ESTIMATE_MARGIN
        current = float(config[param])
        target_mb = math.ceil(need / MB / 64.0) * 64
        spec = config.space.spec(param) if param in config.space else None
        if spec is not None:
            target_mb = spec.clamp(target_mb)
        mean_util = ctx.mean(s.memory_utilization for s in ok)
        if mean_util <= UNDER_UTILIZED and target_mb < current:
            # Under-utilized: try the lower value with high probability.
            if ctx.rng.random() < 0.8:
                return {param: float(target_mb)}
            return {}
        if mean_util >= OVER_UTILIZED and target_mb > current:
            return {param: float(target_mb)}
        return {}


class SortBufferRule(TuningRule):
    """Size ``io.sort.mb`` from the monitored map-output volume."""

    name = "sort-buffer"

    def _estimated_output_mb(self, ctx: RuleContext) -> float:
        outs = [s.map_output_bytes for s in ctx.history if not s.failed and s.map_output_bytes > 0]
        if not outs:
            return 0.0
        return float(np.percentile(outs, PERCENTILE)) / MB

    def adjust_bounds(self, ctx: RuleContext) -> List[str]:
        """Anchor ``io.sort.mb`` at the monitored map-output size.

        Section 6.2's primary rule: "configure the buffer size based on
        map output size by continuously monitoring the number of spill
        records and the size of map outputs".  One buffer-sized band
        around the estimate removes most of the dimension's range after
        the first wave.
        """
        if ctx.task_type is not TaskType.MAP:
            return []
        dim = ctx.dim(P.IO_SORT_MB)
        if dim is None:
            return []
        # Anchor at (nearly) the largest output seen: tasks above a mere
        # 80th-percentile buffer would still double-spill, defeating the
        # "reduce spills to optimal" goal of Figures 7-9.
        outs = [
            s.map_output_bytes
            for s in ctx.history
            if not s.failed and s.map_output_bytes > 0
        ]
        if not outs:
            return []
        est_mb = float(np.percentile(outs, 98)) / MB
        spec_obj = ctx.space.spec(P.IO_SORT_MB)
        lo = spec_obj.clamp(est_mb * 1.05)
        hi = spec_obj.clamp(max(est_mb * 1.35, lo + 10))
        ctx.bounds.raise_lower(dim, ctx.encode(P.IO_SORT_MB, lo))
        ctx.bounds.lower_upper(dim, ctx.encode(P.IO_SORT_MB, hi))
        return [
            f"io.sort.mb: bounds -> [{lo:.0f}, {hi:.0f}] MB "
            f"(p98 map output ~{est_mb:.0f} MB)"
        ]

    #: Fraction of the heap the sort buffer + user code may occupy.
    HEAP_BUDGET = 0.92

    def conservative_update(
        self, ctx: RuleContext, config: Configuration
    ) -> Dict[str, float]:
        if ctx.task_type is not TaskType.MAP:
            return {}
        est_mb = self._estimated_output_mb(ctx) * ESTIMATE_MARGIN
        if est_mb <= 0:
            return {}
        changes: Dict[str, float] = {}
        spec = config.space.spec(P.IO_SORT_MB)
        target = spec.clamp(math.ceil(est_mb / 10.0) * 10)
        # The buffer and the map function share the heap: leave room for
        # the user code's (gray-box estimated) working set.
        fixed_mb = ctx.estimated_map_fixed_mem() / MB
        heap_mb = float(config[P.MAP_MEMORY_MB]) * HEAP_FRACTION
        budget = heap_mb * self.HEAP_BUDGET - fixed_mb
        if target > budget:
            mem_spec = config.space.spec(P.MAP_MEMORY_MB)
            need_mb = math.ceil(
                (target + fixed_mb) / self.HEAP_BUDGET / HEAP_FRACTION / 64.0
            ) * 64
            need_mb = mem_spec.clamp(need_mb)
            if need_mb > config[P.MAP_MEMORY_MB]:
                changes[P.MAP_MEMORY_MB] = float(need_mb)
            budget = need_mb * HEAP_FRACTION * self.HEAP_BUDGET - fixed_mb
            target = spec.clamp(min(target, budget))
        if target != config[P.IO_SORT_MB]:
            changes[P.IO_SORT_MB] = float(target)
        return changes


class SpillPercentRule(TuningRule):
    """Pin ``sort.spill.percent`` at 0.99 while the buffer suffices."""

    name = "spill-percent"
    HIGH = 0.99

    def _buffer_sufficient(self, ctx: RuleContext, config_mb: float) -> bool:
        outs = [s.map_output_bytes for s in ctx.history if not s.failed and s.map_output_bytes > 0]
        if not outs:
            return True  # optimistic until evidence arrives
        return float(np.percentile(outs, PERCENTILE)) / MB <= config_mb * self.HIGH

    def adjust_bounds(self, ctx: RuleContext) -> List[str]:
        if ctx.task_type is not TaskType.MAP:
            return []
        dim = ctx.dim(P.SORT_SPILL_PERCENT)
        if dim is None or not ctx.ok_window():
            return []
        # With a sufficient buffer a high threshold avoids write
        # triggers entirely; pin the dimension at 0.99.  Only when no
        # feasible buffer could hold the map output (spills structurally
        # unavoidable) does the default's early-spill pipelining win.
        # Judging by the *current* window's spills would self-fulfill:
        # an early 0.8 pin keeps borderline buffers spilling forever.
        outs = [
            s.map_output_bytes
            for s in ctx.history
            if not s.failed and s.map_output_bytes > 0
        ]
        if ctx.dim(P.IO_SORT_MB) is not None:
            max_buffer_mb = ctx.space.spec(P.IO_SORT_MB).high
        else:
            max_buffer_mb = 1600
        spills_unavoidable = bool(outs) and (
            float(np.percentile(outs, 98)) / MB > max_buffer_mb * self.HIGH
        )
        target = 0.8 if spills_unavoidable else self.HIGH
        enc = ctx.encode(P.SORT_SPILL_PERCENT, target)
        ctx.bounds.reset(dim)
        ctx.bounds.raise_lower(dim, enc)
        ctx.bounds.lower_upper(dim, enc)
        return [f"sort.spill.percent pinned at {target}"]

    def conservative_update(
        self, ctx: RuleContext, config: Configuration
    ) -> Dict[str, float]:
        if ctx.task_type is not TaskType.MAP:
            return {}
        target = (
            self.HIGH
            if self._buffer_sufficient(ctx, float(config[P.IO_SORT_MB]))
            else 0.8
        )
        if abs(target - float(config[P.SORT_SPILL_PERCENT])) > 1e-9:
            return {P.SORT_SPILL_PERCENT: target}
        return {}


class ReduceBufferRule(TuningRule):
    """Size the reduce-side buffer stack from the estimated input."""

    name = "reduce-buffers"
    MERGE_GAP = 0.04  # default YARN gap between input-buffer and merge percents

    def _estimated_input_mb(self, ctx: RuleContext) -> float:
        ins = [s.shuffled_bytes for s in ctx.history if not s.failed and s.shuffled_bytes > 0]
        if not ins:
            return 0.0
        return float(np.percentile(ins, PERCENTILE)) / MB

    def adjust_bounds(self, ctx: RuleContext) -> List[str]:
        if ctx.task_type is not TaskType.REDUCE:
            return []
        notes: List[str] = []
        # The in-memory merge threshold is best disabled (merge purely on
        # memory consumption, Section 6.2): pin it at 0.
        dim = ctx.dim(P.MERGE_INMEM_THRESHOLD)
        if dim is not None:
            enc = ctx.encode(P.MERGE_INMEM_THRESHOLD, 0)
            ctx.bounds.reset(dim)
            ctx.bounds.raise_lower(dim, enc)
            ctx.bounds.lower_upper(dim, enc)
            notes.append("merge.inmem.threshold pinned at 0")
        ok = ctx.ok_window()
        if not ok:
            return notes
        # Spills observed on the reduce side mean the in-memory path was
        # too small: with the container band anchored at "heap holds the
        # whole input" (ContainerMemoryRule), generous buffer fractions
        # are what make that heap effective -- raise their floors.
        mean_ratio = ctx.mean(s.spill_ratio for s in ok)
        if mean_ratio > 0.0:
            for param, floor in (
                (P.SHUFFLE_INPUT_BUFFER_PERCENT, 0.55),
                (P.SHUFFLE_MERGE_PERCENT, 0.5),
                (P.REDUCE_INPUT_BUFFER_PERCENT, 0.3),
            ):
                dim = ctx.dim(param)
                if dim is None:
                    continue
                ctx.bounds.raise_lower(dim, ctx.encode(param, floor))
                notes.append(f"{param}: reduce spills seen; lower bound -> {floor}")
        return notes

    def conservative_update(
        self, ctx: RuleContext, config: Configuration
    ) -> Dict[str, float]:
        if ctx.task_type is not TaskType.REDUCE:
            return {}
        est_mb = self._estimated_input_mb(ctx) * ESTIMATE_MARGIN
        if est_mb <= 0:
            return {}
        changes: Dict[str, float] = {}
        heap_mb = float(config[P.REDUCE_MEMORY_MB]) * HEAP_FRACTION
        ibp_spec = config.space.spec(P.SHUFFLE_INPUT_BUFFER_PERCENT)
        # Size the shuffle buffer to hold the whole input when possible;
        # grow the container if the current heap cannot.
        if est_mb > heap_mb * ibp_spec.high:
            mem_spec = config.space.spec(P.REDUCE_MEMORY_MB)
            need = mem_spec.clamp(
                math.ceil(est_mb / ibp_spec.high / HEAP_FRACTION / 64.0) * 64
            )
            if need > config[P.REDUCE_MEMORY_MB]:
                changes[P.REDUCE_MEMORY_MB] = float(need)
                heap_mb = need * HEAP_FRACTION
        ibp = ibp_spec.clamp(min(ibp_spec.high, est_mb / heap_mb if heap_mb else 1.0))
        fits = est_mb <= heap_mb * ibp + 1e-9
        if fits:
            # Everything fits: merge trigger equals the buffer, and the
            # reduce phase may retain the segments in memory.
            merge = ibp
            rib_spec = config.space.spec(P.REDUCE_INPUT_BUFFER_PERCENT)
            rib = rib_spec.clamp(min(rib_spec.high, est_mb / heap_mb))
            changes[P.REDUCE_INPUT_BUFFER_PERCENT] = rib
        else:
            ibp = ibp_spec.high
            merge = max(ibp_spec.low, ibp - self.MERGE_GAP)
        changes[P.SHUFFLE_INPUT_BUFFER_PERCENT] = ibp
        changes[P.SHUFFLE_MERGE_PERCENT] = config.space.spec(
            P.SHUFFLE_MERGE_PERCENT
        ).clamp(merge)
        changes[P.MERGE_INMEM_THRESHOLD] = 0.0
        # Drop no-op changes.
        return {
            k: v for k, v in changes.items() if abs(v - float(config[k])) > 1e-9
        }
