"""CPU tuning rules (Section 6.3).

* vcores: allocate enough CPU without hurting cluster utilization --
  bump by 1 while the container runs CPU-saturated and task times keep
  improving;
* ``shuffle.parallelcopies``: increase in increments of 10 until task
  time stops improving;
* ``io.sort.factor``: increase by 20 until no further improvement.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core import parameters as P
from repro.core.configuration import Configuration
from repro.core.rules.base import RuleContext, TuningRule
from repro.mapreduce.jobspec import TaskType

CPU_SATURATED = 0.90
CPU_IDLE = 0.30
PERCENTILE = 80


def _vcore_param(task_type: TaskType) -> str:
    return P.MAP_CPU_VCORES if task_type is TaskType.MAP else P.REDUCE_CPU_VCORES


class _IncrementalRule(TuningRule):
    """Shared machinery: bump a parameter while task times improve."""

    param = ""
    increment = 1.0
    #: Required relative improvement to keep pushing.
    min_gain = 0.02

    def applies(self, ctx: RuleContext) -> bool:
        return True

    def conservative_update(
        self, ctx: RuleContext, config: Configuration
    ) -> Dict[str, float]:
        if not self.applies(ctx):
            return {}
        ok = ctx.ok_window()
        if not ok:
            return {}
        mean_t = ctx.mean(s.duration for s in ok)
        memo_t = f"{self.name}.last_duration"
        memo_stop = f"{self.name}.stopped"
        if ctx.memo.get(memo_stop):
            return {}
        last = ctx.memo.get(memo_t)
        if last is not None and mean_t > float(last) * (1.0 - self.min_gain):
            # No further improvement: stop pushing (and back off once).
            ctx.memo[memo_stop] = True
            return {}
        ctx.memo[memo_t] = mean_t
        spec = config.space.spec(self.param)
        target = spec.clamp(float(config[self.param]) + self.increment)
        if target <= float(config[self.param]):
            return {}
        return {self.param: float(target)}


class VcoreRule(TuningRule):
    """Bump vcores while the container is CPU-saturated (Section 6.3)."""

    name = "vcores"

    def adjust_bounds(self, ctx: RuleContext) -> List[str]:
        param = _vcore_param(ctx.task_type)
        dim = ctx.dim(param)
        if dim is None:
            return []
        ok = ctx.ok_window()
        sampled = ctx.sampled_values(param)
        if not ok or not sampled:
            return []
        notes: List[str] = []
        util = float(np.percentile([s.cpu_utilization for s in ok], PERCENTILE))
        pct = float(np.percentile(sampled, PERCENTILE))
        if util >= CPU_SATURATED:
            ctx.bounds.raise_lower(dim, ctx.encode(param, pct))
            notes.append(f"{param}: cpu p80={util:.2f} saturated; lower bound -> {pct:.0f}")
        elif util <= CPU_IDLE:
            ctx.bounds.lower_upper(dim, ctx.encode(param, max(1.0, pct)))
            notes.append(f"{param}: cpu p80={util:.2f} idle; upper bound -> {pct:.0f}")
        return notes

    def conservative_update(
        self, ctx: RuleContext, config: Configuration
    ) -> Dict[str, float]:
        param = _vcore_param(ctx.task_type)
        ok = ctx.ok_window()
        if not ok:
            return {}
        mean_util = ctx.mean(s.cpu_utilization for s in ok)
        mean_t = ctx.mean(s.duration for s in ok)
        memo_t = "vcores.last_duration"
        last = ctx.memo.get(memo_t)
        spec = config.space.spec(param)
        current = float(config[param])
        if mean_util >= CPU_SATURATED:
            # Keep increasing while execution time improves.
            if last is None or mean_t < float(last) * 0.98 or current == spec.low:
                ctx.memo[memo_t] = mean_t
                target = spec.clamp(current + 1)
                if target > current:
                    return {param: float(target)}
        elif mean_util <= CPU_IDLE and current > spec.low:
            # Idle CPUs are better given to other containers.
            ctx.memo[memo_t] = mean_t
            return {param: float(spec.clamp(current - 1))}
        return {}


class ParallelCopiesRule(_IncrementalRule):
    """Raise shuffle concurrency in steps of 10 while it helps."""

    name = "parallelcopies"
    param = P.SHUFFLE_PARALLELCOPIES
    increment = 10.0

    def applies(self, ctx: RuleContext) -> bool:
        return ctx.task_type is TaskType.REDUCE


class SortFactorRule(_IncrementalRule):
    """Raise the merge fan-in in steps of 20 while it helps."""

    name = "sort-factor"
    param = P.IO_SORT_FACTOR
    increment = 20.0

    def applies(self, ctx: RuleContext) -> bool:
        # The fan-in matters on both sides; tune it where merges happen.
        return True
