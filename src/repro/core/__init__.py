"""MRONLINE's core: the online tuner.

This package implements the paper's primary contribution:

- :mod:`repro.core.parameters` -- the tunable parameter space (Table 2)
  with defaults, ranges, and unit-interval encodings.
- :mod:`repro.core.configuration` -- configuration objects, validation,
  and the cross-parameter dependency clamps.
- :mod:`repro.core.sampling` -- (weighted) Latin hypercube sampling.
- :mod:`repro.core.cost` -- the Equation-1 cost function.
- :mod:`repro.core.neighborhood` -- search-neighborhood geometry.
- :mod:`repro.core.optimizers` -- the pluggable search-backend protocol
  (hill climber, SPSA, random search, pure LHS) behind the tuner.
- :mod:`repro.core.hill_climbing` -- Algorithm 1, the gray-box smart
  hill-climbing search.
- :mod:`repro.core.rules` -- the Section-6 tuning rules.
- :mod:`repro.core.configurator` -- the dynamic configurator exposing
  the Table-1 API.
- :mod:`repro.core.tuner` -- the online tuner daemon (monitor -> tuner
  -> configurator loop) with aggressive and conservative strategies.
- :mod:`repro.core.knowledge_base` -- cross-run tuning knowledge base.
"""

from repro.core.configuration import Configuration, enforce_dependencies
from repro.core.hill_climbing import GrayBoxHillClimber, HillClimbSettings
from repro.core.knowledge_base import TuningKnowledgeBase
from repro.core.optimizers import (
    OPTIMIZER_BACKENDS,
    Optimizer,
    WaveOptimizer,
    make_optimizer,
)
from repro.core.parameters import PARAMETER_SPACE, ParameterSpace, ParamSpec
from repro.core.sampling import latin_hypercube, weighted_latin_hypercube

# The configurator, cost model, and tuner reference task/job types from
# repro.mapreduce, which itself uses repro.core.configuration -- import
# them lazily (PEP 562) so `import repro.core` works from either side.
_LAZY = {
    "CostModel": ("repro.core.cost", "CostModel"),
    "task_cost": ("repro.core.cost", "task_cost"),
    "DynamicConfigurator": ("repro.core.configurator", "DynamicConfigurator"),
    "OnlineTuner": ("repro.core.tuner", "OnlineTuner"),
    "TunerSettings": ("repro.core.tuner", "TunerSettings"),
    "TuningStrategy": ("repro.core.tuner", "TuningStrategy"),
    "CategoryOneAdvisor": ("repro.core.whatif", "CategoryOneAdvisor"),
    "CategoryOneCandidate": ("repro.core.whatif", "CategoryOneCandidate"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


__all__ = [
    "Configuration",
    "CostModel",
    "DynamicConfigurator",
    "GrayBoxHillClimber",
    "HillClimbSettings",
    "OPTIMIZER_BACKENDS",
    "OnlineTuner",
    "Optimizer",
    "PARAMETER_SPACE",
    "ParamSpec",
    "ParameterSpace",
    "TunerSettings",
    "WaveOptimizer",
    "make_optimizer",
    "TuningKnowledgeBase",
    "TuningStrategy",
    "enforce_dependencies",
    "latin_hypercube",
    "task_cost",
    "weighted_latin_hypercube",
]
