"""The dynamic configurator: per-task configuration distribution.

Implements the Table-1 API (snake_case, with camelCase aliases matching
the paper's listing verbatim).  Resolution order for a launching task:

1. an explicit per-task override (``set_task_parameters``),
2. the next queued wave configuration for its task type (how the
   aggressive tuner feeds sampled configurations to "a task from the
   queued tasks list"),
3. the job-level configuration (``set_job_parameters``; how the
   conservative tuner steers future tasks),
4. the job's submitted base configuration.

Running tasks keep a *live* reference to their Configuration object;
``set_task_parameters`` on a running task applies category-3
(hot-swappable) parameters in place, which the task processes read at
their next decision point -- the paper's "can be changed on the fly and
become effective immediately".
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Mapping, Optional, Tuple

from repro.core.configuration import Configuration, enforce_dependencies
from repro.core.parameters import PARAMETER_SPACE, ParameterSpace
from repro.mapreduce.jobspec import JobSpec, TaskId, TaskType

AssignmentListener = Callable[[str, TaskId, Configuration, object], None]


class DynamicConfigurator:
    """Centralized configuration distribution with task-level granularity."""

    def __init__(self, space: Optional[ParameterSpace] = None) -> None:
        self.space = space or PARAMETER_SPACE
        self._jobs: Dict[str, JobSpec] = {}
        self._job_config: Dict[str, Configuration] = {}
        self._task_overrides: Dict[str, Dict[str, Dict[str, float]]] = {}
        self._queues: Dict[Tuple[str, TaskType], Deque[Tuple[Configuration, object]]] = {}
        self._live: Dict[str, Configuration] = {}
        #: Tasks whose configuration is final at request time (sampled
        #: or explicitly overridden) and must not be refreshed at launch.
        self._pinned: set = set()
        #: Notified whenever a queued configuration is bound to a task.
        self.assignment_listeners: List[AssignmentListener] = []

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def register_job(self, spec: JobSpec) -> None:
        self._jobs[spec.job_id] = spec
        self._job_config[spec.job_id] = spec.base_config.copy()
        self._task_overrides.setdefault(spec.job_id, {})

    def complete_job(self, job_id: str) -> None:
        """Drop per-job state (the live-task registry in particular)."""
        self._jobs.pop(job_id, None)
        self._job_config.pop(job_id, None)
        self._task_overrides.pop(job_id, None)
        for key in [k for k in self._queues if k[0] == job_id]:
            del self._queues[key]
        for tid in [t for t in self._live if t.startswith(f"task_{job_id}_")]:
            del self._live[tid]

    def job_config(self, job_id: str) -> Configuration:
        return self._job_config[job_id]

    # ------------------------------------------------------------------
    # Table 1 API
    # ------------------------------------------------------------------
    def get_configurable_job_parameters(self, job_id: str) -> List[str]:
        """Parameters settable for the job's current and future tasks."""
        self._require_job(job_id)
        return list(self.space.names)

    def get_configurable_task_parameters(self, job_id: str, task_id: TaskId) -> List[str]:
        """Parameters settable for one task.

        A *running* task only accepts category-3 (hot-swappable)
        parameters; a task not yet launched accepts everything.
        """
        self._require_job(job_id)
        if str(task_id) in self._live:
            return [s.name for s in self.space if s.hot_swappable]
        return list(self.space.names)

    def set_job_parameters(self, job_id: str, kv: Mapping[str, float]) -> int:
        """Update the job-level configuration; returns parameters applied."""
        self._require_job(job_id)
        config = self._job_config[job_id]
        applied = 0
        for name, value in kv.items():
            config[name] = value
            applied += 1
        return applied

    def set_task_parameters(
        self,
        job_id: str,
        kv: Mapping[str, float],
        task_id: Optional[TaskId] = None,
    ) -> int:
        """Set parameters for one task (or every task when *task_id* is None).

        For a running task, only hot-swappable parameters take effect
        immediately; the rest are recorded as the task's override (used
        if the attempt is retried).
        """
        self._require_job(job_id)
        if task_id is None:
            # "Sets the parameters for all the tasks associated with a job".
            applied = self.set_job_parameters(job_id, kv)
            for tid, live in list(self._live.items()):
                if tid.startswith(f"task_{job_id}_"):
                    self._apply_hot(live, kv)
            return applied
        tid = str(task_id)
        overrides = self._task_overrides[job_id].setdefault(tid, {})
        applied = 0
        for name, value in kv.items():
            overrides[name] = float(value)
            applied += 1
        live = self._live.get(tid)
        if live is not None:
            self._apply_hot(live, kv)
        return applied

    # camelCase aliases, exactly as Table 1 lists them.
    getConfigurableJobParameters = get_configurable_job_parameters
    getConfigurableTaskParameters = get_configurable_task_parameters
    setJobParameters = set_job_parameters
    setTaskParameters = set_task_parameters

    def _apply_hot(self, live: Configuration, kv: Mapping[str, float]) -> None:
        for name, value in kv.items():
            if name in self.space and self.space.spec(name).hot_swappable:
                live[name] = value

    # ------------------------------------------------------------------
    # Wave queues (aggressive tuning)
    # ------------------------------------------------------------------
    def push_wave_configs(
        self,
        job_id: str,
        task_type: TaskType,
        configs: List[Tuple[Configuration, object]],
    ) -> None:
        """Queue sampled configurations for the next tasks of *task_type*."""
        self._require_job(job_id)
        queue = self._queues.setdefault((job_id, task_type), deque())
        queue.extend(configs)

    def queued_count(self, job_id: str, task_type: TaskType) -> int:
        return len(self._queues.get((job_id, task_type), ()))

    def clear_wave_queue(self, job_id: str, task_type: TaskType) -> int:
        """Drop every queued wave configuration for (*job_id*, *task_type*).

        Degraded-mode escape hatch: when the tuner crashes mid-wave its
        queued trial configurations must stop pinning new tasks --
        subsequent launches fall through to the job-level
        (last-known-good) configuration.  Returns the number dropped.
        """
        queue = self._queues.get((job_id, task_type))
        if not queue:
            return 0
        dropped = len(queue)
        queue.clear()
        return dropped

    # ------------------------------------------------------------------
    # ConfigProvider seam (consumed by the app master)
    # ------------------------------------------------------------------
    def task_config(self, spec: JobSpec, task_id: TaskId) -> Configuration:
        """Resolve the configuration at container-*request* time.

        The app master uses this to size the container ask.  Sampled
        (wave-queue) and per-task-override configurations are final;
        job-level configurations are refreshed again at launch time via
        :meth:`task_launch_config`, because the request may sit in the
        scheduler queue long enough for the tuner to move on.
        """
        if spec.job_id not in self._jobs:
            self.register_job(spec)
        tid = str(task_id)
        overrides = self._task_overrides[spec.job_id].get(tid)
        meta: object = None
        if overrides:
            config = self._job_config[spec.job_id].updated(overrides)
            self._pinned.add(tid)
        else:
            queue = self._queues.get((spec.job_id, task_id.task_type))
            if queue:
                sampled, meta = queue.popleft()
                config = sampled.copy()
                self._pinned.add(tid)
            else:
                config = self._job_config[spec.job_id].copy()
                self._pinned.discard(tid)
        config = enforce_dependencies(config)
        self._live[tid] = config
        for listener in self.assignment_listeners:
            listener(spec.job_id, task_id, config, meta)
        return config

    #: The app master may use configurations from this provider without
    #: re-clamping them (re-clamping would copy the object and sever the
    #: live reference that hot-swapping relies on).
    provides_feasible_configs = True

    #: Container-sizing parameters fixed once the grant is made.
    _GRANT_PARAMS = (
        "mapreduce.map.memory.mb",
        "mapreduce.reduce.memory.mb",
        "mapreduce.map.cpu.vcores",
        "mapreduce.reduce.cpu.vcores",
    )

    def task_launch_config(
        self, spec: JobSpec, task_id: TaskId, requested: Configuration
    ) -> Configuration:
        """Re-resolve the configuration at task-*launch* time.

        This models the slave configurator picking up the freshest
        per-task configuration file when the container actually starts.
        Sampled/overridden tasks keep their assigned configuration; a
        task on the job-level path re-reads the current job config,
        except for the container-sizing parameters, which are pinned to
        what was granted.
        """
        tid = str(task_id)
        if tid in self._pinned:
            return requested
        fresh = self._job_config[spec.job_id].copy()
        for name in self._GRANT_PARAMS:
            fresh[name] = requested[name]
        fresh = enforce_dependencies(fresh)
        self._live[tid] = fresh
        return fresh

    def task_finished(self, task_id: TaskId) -> None:
        self._live.pop(str(task_id), None)
        self._pinned.discard(str(task_id))

    # ------------------------------------------------------------------
    def _require_job(self, job_id: str) -> None:
        if job_id not in self._jobs:
            raise KeyError(f"job {job_id!r} is not registered with the configurator")
