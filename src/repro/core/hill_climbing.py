"""Algorithm 1: the gray-box smart hill-climbing search.

The paper's pseudo-code is a closed loop ("sample, run, compare"), but
in MRONLINE every evaluation is a real task execution, so the climber
here is an **asynchronous state machine**: :meth:`propose` hands out
the next batch of configurations to try, the tuner runs them on tasks,
and :meth:`observe` feeds costs back.  When a batch is fully observed
the climber advances exactly as Algorithm 1 prescribes:

* **global phase** -- ``m`` LHS samples over the rule-tightened bounds;
  the best becomes the current point ``Ccur`` and seeds a neighborhood;
* **local phase** -- ``n`` weighted-LHS samples in the neighborhood;
  improvement recenters (``adjust_neighbor``), otherwise the
  neighborhood shrinks by ``f`` (``shrink_neighbor``); below ``Nt`` the
  local search ends;
* global rounds that fail to improve increment the give-up counter;
  after ``g`` such rounds the search terminates.

The *gray-box* part: :attr:`bounds` is shared with the Section-6 tuning
rules, which tighten it from monitored statistics between batches, so
later samples concentrate where the evidence points.

The climber is one backend behind the :class:`repro.core.optimizers.
base.Optimizer` protocol (wave lifecycle, rollback, infeasible regions,
and decision listeners live on the shared
:class:`~repro.core.optimizers.base.WaveOptimizer`); alternative
backends -- SPSA, random search, pure LHS -- plug into the same tuner
loop via :func:`repro.core.optimizers.make_optimizer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.neighborhood import INITIAL_SIZE, Neighborhood
from repro.core.optimizers.base import (
    INFEASIBLE_RADIUS,
    Sample,
    SearchPhase,
    WaveOptimizer,
    next_sample_id,
    uniform_sample,
)
from repro.core.parameters import ParameterSpace
from repro.core.sampling import latin_hypercube, weighted_latin_hypercube

__all__ = [
    "GrayBoxHillClimber",
    "HillClimbSettings",
    "INFEASIBLE_RADIUS",
    "Sample",
    "SearchPhase",
    "drive_search",
]

#: Back-compat alias (pre-protocol name of the shared uniform sampler).
_uniform = uniform_sample


@dataclass(frozen=True)
class HillClimbSettings:
    """Algorithm-1 constants (defaults are the paper's, Section 5)."""

    m: int = 24  # global-phase samples
    n: int = 16  # local-phase samples
    neighborhood_threshold: float = 0.1  # Nt
    shrink_factor: float = 0.75  # f
    global_search_limit: int = 5  # g
    lhs_intervals: int = 24  # k (granularity; equals the batch sizes here)
    initial_neighborhood: float = INITIAL_SIZE
    #: Task evaluations per sample before its cost is trusted.
    replicas: int = 1
    #: Sample with Latin hypercubes (True) or plain uniforms (False --
    #: the sampling-quality ablation's baseline).
    use_lhs: bool = True

    def __post_init__(self) -> None:
        if self.m < 1 or self.n < 1:
            raise ValueError("batch sizes must be >= 1")
        if not 0.0 < self.shrink_factor < 1.0:
            raise ValueError("shrink factor must be in (0, 1)")
        if not 0.0 < self.neighborhood_threshold < 1.0:
            raise ValueError("Nt must be in (0, 1)")
        if self.global_search_limit < 1:
            raise ValueError("g must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")


class GrayBoxHillClimber(WaveOptimizer):
    """Asynchronous Algorithm 1 over a (sub)space of parameters."""

    def __init__(
        self,
        space: ParameterSpace,
        rng: np.random.Generator,
        settings: Optional[HillClimbSettings] = None,
        seed_point: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(space, rng)
        self.settings = settings or HillClimbSettings()
        self.replicas = self.settings.replicas
        self.phase = SearchPhase.GLOBAL
        self.global_rounds_without_improvement = 0
        self._current: Optional[Sample] = None  # Ccur
        self._best_ever: Optional[Sample] = None
        self.neighborhood: Optional[Neighborhood] = None
        self._first_global = True
        #: Optional warm start (e.g. from the knowledge base): injected
        #: into the first global batch.
        self._seed_point = seed_point

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.phase is SearchPhase.DONE

    @property
    def current_cost(self) -> Optional[float]:
        return self._current.cost if self._current else None

    def _best_sample(self) -> Optional[Sample]:
        # The incumbent is the *validated* best (it survives within-wave
        # re-evaluation); raw best-ever may be a lucky noise draw.
        return self._current or self._best_ever

    # ------------------------------------------------------------------
    # Algorithm 1 state transitions
    # ------------------------------------------------------------------
    def _make_batch(self) -> List[Sample]:
        st = self.settings
        if self.phase is SearchPhase.GLOBAL:
            if st.use_lhs:
                points = latin_hypercube(
                    self.rng, st.m, len(self.space), bounds=self.bounds.as_pairs()
                )
            else:
                points = uniform_sample(self.rng, st.m, self.bounds.as_pairs())
            if self._seed_point is not None:
                points[0] = self.bounds.clip(self._seed_point)
                self._seed_point = None
            batch = [Sample(next_sample_id(), p, SearchPhase.GLOBAL) for p in points]
        else:
            assert self.neighborhood is not None
            box = self.neighborhood.sampling_bounds(self.bounds)
            if st.use_lhs:
                points = weighted_latin_hypercube(
                    self.rng, st.n, self.neighborhood.center, box
                )
            else:
                points = uniform_sample(self.rng, st.n, box)
            batch = [Sample(next_sample_id(), p, SearchPhase.LOCAL) for p in points]
        if self._current is not None:
            batch.append(
                Sample(
                    next_sample_id(),
                    self._current.point.copy(),
                    self.phase,
                    incumbent=True,
                )
            )
        return batch

    def _advance(self) -> None:
        st = self.settings
        batch, self._batch = self._batch, []
        fresh = [s for s in batch if not s.incumbent]
        candidate = min(fresh, key=lambda s: (s.cost, s.sample_id))
        # The incumbent's cost is re-measured in the same wave, so the
        # improvement test is apples-to-apples under noise.
        incumbents = [s for s in batch if s.incumbent]
        reference = incumbents[0] if incumbents else self._current
        ref_cost = reference.cost if reference is not None else float("inf")
        if self._best_ever is None or candidate.cost < self._best_ever.cost:
            self._best_ever = candidate

        if self.phase is SearchPhase.GLOBAL:
            if self._first_global:
                # Lines 3-5: the initial LHS seeds Ccur unconditionally.
                self._first_global = False
                self._current = candidate
                self.neighborhood = Neighborhood(
                    candidate.point, st.initial_neighborhood
                )
                self.phase = SearchPhase.LOCAL
                self._notify(
                    "seed", sample_id=candidate.sample_id, cost=candidate.cost
                )
            elif candidate.cost < ref_cost:  # lines 22-25
                self._current = candidate
                self.neighborhood = Neighborhood(
                    candidate.point, st.initial_neighborhood
                )
                self.phase = SearchPhase.LOCAL
                self._notify(
                    "accept_global",
                    sample_id=candidate.sample_id,
                    cost=candidate.cost,
                    previous_cost=ref_cost,
                )
            else:  # lines 26-27
                if incumbents:
                    self._current = incumbents[0]  # keep the cost fresh
                self.global_rounds_without_improvement += 1
                if self.global_rounds_without_improvement >= st.global_search_limit:
                    self.phase = SearchPhase.DONE
                self._notify(
                    "give_up" if self.phase is SearchPhase.DONE else "reject_global",
                    sample_id=candidate.sample_id,
                    cost=candidate.cost,
                    best_cost=ref_cost,
                    rounds_without_improvement=(
                        self.global_rounds_without_improvement
                    ),
                )
            return

        # LOCAL phase (lines 8-17).
        assert self._current is not None and self.neighborhood is not None
        if candidate.cost < ref_cost:
            self._current = candidate
            self.neighborhood = self.neighborhood.recenter(
                candidate.point, st.initial_neighborhood
            )
            self._notify(
                "accept_local",
                sample_id=candidate.sample_id,
                cost=candidate.cost,
                previous_cost=ref_cost,
            )
        else:
            if incumbents:
                self._current = incumbents[0]
            self.neighborhood = self.neighborhood.shrink(st.shrink_factor)
            self._notify(
                "shrink",
                sample_id=candidate.sample_id,
                cost=candidate.cost,
                best_cost=ref_cost,
                neighborhood=self.neighborhood.size,
            )
        if self.neighborhood.size <= st.neighborhood_threshold:
            # Local optimum found; try another global round (line 18-20).
            self.phase = SearchPhase.GLOBAL
            self._notify("local_done", neighborhood=self.neighborhood.size)

def drive_search(
    climber: "GrayBoxHillClimber",
    evaluate_batch: Callable[[Sequence[np.ndarray]], Sequence[float]],
) -> Optional[np.ndarray]:
    """Run an asynchronous optimizer to completion with a batch evaluator.

    The optimizer hands out whole waves (:meth:`WaveOptimizer.propose`)
    whose samples are mutually independent, so *evaluate_batch* may
    price them concurrently -- e.g. one full simulated run per
    candidate fanned out over a process pool
    (:func:`repro.experiments.parallel.offline_candidate_search`).
    Costs are fed back in proposal order regardless of completion
    order, so the search trajectory is identical for any degree of
    parallelism.  Samples wanting several replicas are re-presented
    until fully observed.  Works for any backend speaking the
    :class:`repro.core.optimizers.base.Optimizer` protocol.
    """
    while not climber.finished:
        if not climber.propose():
            break
        pending = climber.pending_samples()
        costs = evaluate_batch([s.point for s in pending])
        if len(costs) != len(pending):
            raise ValueError(
                f"evaluator returned {len(costs)} costs for {len(pending)} samples"
            )
        for sample, cost in zip(pending, costs):
            climber.observe(sample.sample_id, float(cost))
    return climber.best_point()
