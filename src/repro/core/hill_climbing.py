"""Algorithm 1: the gray-box smart hill-climbing search.

The paper's pseudo-code is a closed loop ("sample, run, compare"), but
in MRONLINE every evaluation is a real task execution, so the climber
here is an **asynchronous state machine**: :meth:`propose` hands out
the next batch of configurations to try, the tuner runs them on tasks,
and :meth:`observe` feeds costs back.  When a batch is fully observed
the climber advances exactly as Algorithm 1 prescribes:

* **global phase** -- ``m`` LHS samples over the rule-tightened bounds;
  the best becomes the current point ``Ccur`` and seeds a neighborhood;
* **local phase** -- ``n`` weighted-LHS samples in the neighborhood;
  improvement recenters (``adjust_neighbor``), otherwise the
  neighborhood shrinks by ``f`` (``shrink_neighbor``); below ``Nt`` the
  local search ends;
* global rounds that fail to improve increment the give-up counter;
  after ``g`` such rounds the search terminates.

The *gray-box* part: :attr:`bounds` is shared with the Section-6 tuning
rules, which tighten it from monitored statistics between batches, so
later samples concentrate where the evidence points.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.configuration import Configuration, enforce_dependencies
from repro.core.neighborhood import INITIAL_SIZE, Bounds, Neighborhood
from repro.core.parameters import ParameterSpace
from repro.core.sampling import latin_hypercube, weighted_latin_hypercube


@dataclass(frozen=True)
class HillClimbSettings:
    """Algorithm-1 constants (defaults are the paper's, Section 5)."""

    m: int = 24  # global-phase samples
    n: int = 16  # local-phase samples
    neighborhood_threshold: float = 0.1  # Nt
    shrink_factor: float = 0.75  # f
    global_search_limit: int = 5  # g
    lhs_intervals: int = 24  # k (granularity; equals the batch sizes here)
    initial_neighborhood: float = INITIAL_SIZE
    #: Task evaluations per sample before its cost is trusted.
    replicas: int = 1
    #: Sample with Latin hypercubes (True) or plain uniforms (False --
    #: the sampling-quality ablation's baseline).
    use_lhs: bool = True

    def __post_init__(self) -> None:
        if self.m < 1 or self.n < 1:
            raise ValueError("batch sizes must be >= 1")
        if not 0.0 < self.shrink_factor < 1.0:
            raise ValueError("shrink factor must be in (0, 1)")
        if not 0.0 < self.neighborhood_threshold < 1.0:
            raise ValueError("Nt must be in (0, 1)")
        if self.global_search_limit < 1:
            raise ValueError("g must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")


#: Chebyshev radius (in the unit cube) of the region around an
#: OOM-observed point that is treated as infeasible.  Small enough not
#: to wall off viable space, large enough to stop re-sampling the
#: immediate vicinity of a known failure.
INFEASIBLE_RADIUS = 0.06


class SearchPhase(enum.Enum):
    GLOBAL = "global"
    LOCAL = "local"
    DONE = "done"


_sample_ids = itertools.count(1)


def _uniform(rng: np.random.Generator, n: int, bounds) -> np.ndarray:
    """Plain uniform sampling within per-dimension bounds (no strata)."""
    lo = np.array([b[0] for b in bounds])
    hi = np.array([b[1] for b in bounds])
    return lo + rng.random((n, len(bounds))) * (hi - lo)


@dataclass
class Sample:
    """One configuration point handed out for evaluation."""

    sample_id: int
    point: np.ndarray
    phase: SearchPhase
    costs: List[float] = field(default_factory=list)
    #: True when this sample re-evaluates the current best point.  Task
    #: costs are noisy (cluster context varies between waves), so the
    #: incumbent rides along in every batch and comparisons stay
    #: within-wave -- the noise-tolerance property Section 5 claims.
    incumbent: bool = False

    @property
    def cost(self) -> Optional[float]:
        return sum(self.costs) / len(self.costs) if self.costs else None


class GrayBoxHillClimber:
    """Asynchronous Algorithm 1 over a (sub)space of parameters."""

    def __init__(
        self,
        space: ParameterSpace,
        rng: np.random.Generator,
        settings: Optional[HillClimbSettings] = None,
        seed_point: Optional[np.ndarray] = None,
    ) -> None:
        self.space = space
        self.rng = rng
        self.settings = settings or HillClimbSettings()
        self.bounds = Bounds(len(space))
        self.phase = SearchPhase.GLOBAL
        self.global_rounds_without_improvement = 0
        self._batch: List[Sample] = []
        self._by_id: Dict[int, Sample] = {}
        self._current: Optional[Sample] = None  # Ccur
        self._best_ever: Optional[Sample] = None
        self.neighborhood: Optional[Neighborhood] = None
        self._first_global = True
        #: Optional warm start (e.g. from the knowledge base): injected
        #: into the first global batch.
        self._seed_point = seed_point
        #: Total samples handed out (diagnostics).
        self.samples_proposed = 0
        #: Centers of regions observed to be infeasible (OOM-prone).
        self._infeasible_points: List[np.ndarray] = []
        #: Total infeasibility marks received (diagnostics).
        self.infeasible_marks = 0
        #: Observers of search decisions, called as ``fn(decision, info)``
        #: with a short decision string ("seed", "accept_local", ...) and
        #: a plain-data info dict.  The climber stays simulation-agnostic;
        #: the tuner bridges these onto the telemetry bus.
        self.decision_listeners: List[Callable[[str, Dict[str, object]], None]] = []

    def _notify(self, decision: str, **info: object) -> None:
        if self.decision_listeners:
            for listener in self.decision_listeners:
                listener(decision, info)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.phase is SearchPhase.DONE

    @property
    def current_cost(self) -> Optional[float]:
        return self._current.cost if self._current else None

    def best_point(self) -> Optional[np.ndarray]:
        # The incumbent is the *validated* best (it survives within-wave
        # re-evaluation); raw best-ever may be a lucky noise draw.
        best = self._current or self._best_ever
        return None if best is None else best.point.copy()

    def best_cost(self) -> Optional[float]:
        best = self._current or self._best_ever
        return None if best is None else best.cost

    def best_config(self, base: Optional[Configuration] = None) -> Configuration:
        """Decode the best point into a full configuration."""
        base = base or Configuration()
        point = self.best_point()
        if point is None:
            return base
        return enforce_dependencies(base.updated(self.space.decode(point)))

    # ------------------------------------------------------------------
    # Batch protocol
    # ------------------------------------------------------------------
    def propose(self) -> List[Sample]:
        """Hand out the current batch (creating it if needed).

        Returns the same batch until it is fully observed; an empty list
        means the search has terminated.
        """
        if self.phase is SearchPhase.DONE:
            return []
        if not self._batch:
            self._batch = self._make_batch()
            for s in self._batch:
                self._by_id[s.sample_id] = s
            self.samples_proposed += len(self._batch)
        return list(self._batch)

    def pending_samples(self) -> List[Sample]:
        """Samples of the current batch still lacking observations."""
        want = self.settings.replicas
        return [s for s in self._batch if len(s.costs) < want]

    def observe(self, sample_id: int, cost: float) -> None:
        """Feed one evaluation back; advances the state when complete."""
        sample = self._by_id.get(sample_id)
        if sample is None:
            raise KeyError(f"unknown sample id {sample_id}")
        sample.costs.append(float(cost))
        if not self.pending_samples() and self._batch:
            self._advance()

    def rollback(self) -> bool:
        """Void the in-flight batch and fall back to last-known-good.

        Safe-exploration escape hatch: when the caller decides a wave's
        measurements are untrustworthy (e.g. fetch-retry-inflated under
        network faults), the whole batch -- observations included -- is
        discarded *without* advancing the search state, so the incumbent
        ``Ccur`` (the last configuration whose measurements were clean)
        stays in charge and the next :meth:`propose` re-draws around it.
        Returns False when there is nothing to roll back to (no
        incumbent yet, or no batch in flight).
        """
        if self._current is None or not self._batch:
            return False
        batch, self._batch = self._batch, []
        for sample in batch:
            sample.costs.clear()
        self._notify(
            "rollback",
            voided=len(batch),
            incumbent_cost=self._current.cost,
        )
        return True

    # ------------------------------------------------------------------
    # Infeasible regions
    # ------------------------------------------------------------------
    def mark_infeasible(self, sample_id: int) -> None:
        """Remember *sample_id*'s point as the center of a bad region.

        A configuration that OOMs is not merely expensive -- every point
        near it will OOM too.  Marked regions are consulted through
        :meth:`is_infeasible`, letting the caller auto-fail future
        samples that land there instead of burning task attempts on
        re-discovering the same wall.
        """
        sample = self._by_id.get(sample_id)
        if sample is None:
            raise KeyError(f"unknown sample id {sample_id}")
        self.infeasible_marks += 1
        self._notify(
            "infeasible",
            sample_id=sample_id,
            regions=len(self._infeasible_points) + 1,
        )
        for known in self._infeasible_points:
            if np.array_equal(known, sample.point):
                return
        self._infeasible_points.append(sample.point.copy())

    def is_infeasible(self, point: np.ndarray) -> bool:
        """True when *point* lies inside a known-infeasible region."""
        for known in self._infeasible_points:
            if float(np.max(np.abs(point - known))) <= INFEASIBLE_RADIUS:
                return True
        return False

    @property
    def infeasible_regions(self) -> int:
        return len(self._infeasible_points)

    # ------------------------------------------------------------------
    # Algorithm 1 state transitions
    # ------------------------------------------------------------------
    def _make_batch(self) -> List[Sample]:
        st = self.settings
        if self.phase is SearchPhase.GLOBAL:
            if st.use_lhs:
                points = latin_hypercube(
                    self.rng, st.m, len(self.space), bounds=self.bounds.as_pairs()
                )
            else:
                points = _uniform(self.rng, st.m, self.bounds.as_pairs())
            if self._seed_point is not None:
                points[0] = self.bounds.clip(self._seed_point)
                self._seed_point = None
            batch = [Sample(next(_sample_ids), p, SearchPhase.GLOBAL) for p in points]
        else:
            assert self.neighborhood is not None
            box = self.neighborhood.sampling_bounds(self.bounds)
            if st.use_lhs:
                points = weighted_latin_hypercube(
                    self.rng, st.n, self.neighborhood.center, box
                )
            else:
                points = _uniform(self.rng, st.n, box)
            batch = [Sample(next(_sample_ids), p, SearchPhase.LOCAL) for p in points]
        if self._current is not None:
            batch.append(
                Sample(
                    next(_sample_ids),
                    self._current.point.copy(),
                    self.phase,
                    incumbent=True,
                )
            )
        return batch

    def _advance(self) -> None:
        st = self.settings
        batch, self._batch = self._batch, []
        fresh = [s for s in batch if not s.incumbent]
        candidate = min(fresh, key=lambda s: (s.cost, s.sample_id))
        # The incumbent's cost is re-measured in the same wave, so the
        # improvement test is apples-to-apples under noise.
        incumbents = [s for s in batch if s.incumbent]
        reference = incumbents[0] if incumbents else self._current
        ref_cost = reference.cost if reference is not None else float("inf")
        if self._best_ever is None or candidate.cost < self._best_ever.cost:
            self._best_ever = candidate

        if self.phase is SearchPhase.GLOBAL:
            if self._first_global:
                # Lines 3-5: the initial LHS seeds Ccur unconditionally.
                self._first_global = False
                self._current = candidate
                self.neighborhood = Neighborhood(
                    candidate.point, st.initial_neighborhood
                )
                self.phase = SearchPhase.LOCAL
                self._notify(
                    "seed", sample_id=candidate.sample_id, cost=candidate.cost
                )
            elif candidate.cost < ref_cost:  # lines 22-25
                self._current = candidate
                self.neighborhood = Neighborhood(
                    candidate.point, st.initial_neighborhood
                )
                self.phase = SearchPhase.LOCAL
                self._notify(
                    "accept_global",
                    sample_id=candidate.sample_id,
                    cost=candidate.cost,
                    previous_cost=ref_cost,
                )
            else:  # lines 26-27
                if incumbents:
                    self._current = incumbents[0]  # keep the cost fresh
                self.global_rounds_without_improvement += 1
                if self.global_rounds_without_improvement >= st.global_search_limit:
                    self.phase = SearchPhase.DONE
                self._notify(
                    "give_up" if self.phase is SearchPhase.DONE else "reject_global",
                    sample_id=candidate.sample_id,
                    cost=candidate.cost,
                    best_cost=ref_cost,
                    rounds_without_improvement=(
                        self.global_rounds_without_improvement
                    ),
                )
            return

        # LOCAL phase (lines 8-17).
        assert self._current is not None and self.neighborhood is not None
        if candidate.cost < ref_cost:
            self._current = candidate
            self.neighborhood = self.neighborhood.recenter(
                candidate.point, st.initial_neighborhood
            )
            self._notify(
                "accept_local",
                sample_id=candidate.sample_id,
                cost=candidate.cost,
                previous_cost=ref_cost,
            )
        else:
            if incumbents:
                self._current = incumbents[0]
            self.neighborhood = self.neighborhood.shrink(st.shrink_factor)
            self._notify(
                "shrink",
                sample_id=candidate.sample_id,
                cost=candidate.cost,
                best_cost=ref_cost,
                neighborhood=self.neighborhood.size,
            )
        if self.neighborhood.size <= st.neighborhood_threshold:
            # Local optimum found; try another global round (line 18-20).
            self.phase = SearchPhase.GLOBAL
            self._notify("local_done", neighborhood=self.neighborhood.size)

def drive_search(
    climber: "GrayBoxHillClimber",
    evaluate_batch: Callable[[Sequence[np.ndarray]], Sequence[float]],
) -> Optional[np.ndarray]:
    """Run an asynchronous climber to completion with a batch evaluator.

    The climber hands out whole waves (:meth:`GrayBoxHillClimber.propose`)
    whose samples are mutually independent, so *evaluate_batch* may
    price them concurrently -- e.g. one full simulated run per
    candidate fanned out over a process pool
    (:func:`repro.experiments.parallel.offline_candidate_search`).
    Costs are fed back in proposal order regardless of completion
    order, so the search trajectory is identical for any degree of
    parallelism.  Samples wanting several replicas are re-presented
    until fully observed.
    """
    while not climber.finished:
        if not climber.propose():
            break
        pending = climber.pending_samples()
        costs = evaluate_batch([s.point for s in pending])
        if len(costs) != len(pending):
            raise ValueError(
                f"evaluator returned {len(costs)} costs for {len(pending)} samples"
            )
        for sample, cost in zip(pending, costs):
            climber.observe(sample.sample_id, float(cost))
    return climber.best_point()
