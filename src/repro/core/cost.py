"""The Equation-1 cost function.

    y = (1 - u_mem) + (1 - u_cpu) + n_spill / n_mapoutput + T / T_max

Lower is better: the formula rewards configurations that keep memory
and CPU busy, avoid spills, and finish fast relative to the slowest
task seen.  Failed attempts (OOM) receive a large fixed penalty so the
search steers away from infeasible regions -- the simulated analogue of
"over-utilizing resources ... increasing task execution time".
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.mapreduce.jobspec import TaskType
from repro.monitor.statistics import TaskStats

#: Cost assigned to a config-induced failure (OOM).  The worst feasible
#: cost is ~4 (all four terms at 1); failures must dominate that.
FAILURE_COST = 8.0

#: Gentler penalty for attempts the *environment* killed (preemption,
#: node loss, a faster speculative twin).  The configuration is not to
#: blame, but the lost work is real, so the sample is discouraged
#: without being branded infeasible.
ENV_FAILURE_COST = 5.0

#: Failure kinds charged at :data:`ENV_FAILURE_COST`.
_ENVIRONMENTAL_KINDS = frozenset(
    {"preempted", "node_lost", "speculation", "fetch_failure"}
)


def effective_duration(stats: TaskStats) -> float:
    """Duration with fetch-retry inflation discounted.

    Time an attempt spent in fetch backoff sleeps measures the
    network's health, not the configuration's quality; discounting it
    keeps flaky-link waves from branding good configs slow (the noisy-
    measurement guardrail).
    """
    return max(0.0, stats.duration - stats.fetch_penalty_seconds)


def task_cost(stats: TaskStats, t_max: float) -> float:
    """Equation 1 for one task, given the job's max task time so far."""
    if stats.failed:
        if stats.failure_kind in _ENVIRONMENTAL_KINDS:
            return ENV_FAILURE_COST
        return FAILURE_COST
    t_term = effective_duration(stats) / t_max if t_max > 0 else 1.0
    return (
        (1.0 - stats.memory_utilization)
        + (1.0 - stats.cpu_utilization)
        + min(4.0, stats.spill_ratio)
        + min(1.5, t_term)
    )


class CostModel:
    """Tracks per-task-type T_max and aggregates costs per sample key.

    The tuner tags every launched task with the sample (configuration
    point) it is evaluating; this model folds completed tasks back into
    per-sample cost estimates, averaging when a sample was evaluated by
    several tasks (which also tolerates measurement noise).
    """

    def __init__(self) -> None:
        self._t_max: Dict[TaskType, float] = {
            TaskType.MAP: 0.0,
            TaskType.REDUCE: 0.0,
        }
        self._samples: Dict[object, List[float]] = defaultdict(list)

    def observe(self, stats: TaskStats, sample_key: Optional[object] = None) -> float:
        """Fold one completed task in; returns its Equation-1 cost."""
        if not stats.failed:
            duration = effective_duration(stats)
            if duration > self._t_max[stats.task_type]:
                self._t_max[stats.task_type] = duration
        cost = task_cost(stats, self._t_max[stats.task_type])
        if sample_key is not None:
            self._samples[sample_key].append(cost)
        return cost

    def t_max(self, task_type: TaskType) -> float:
        return self._t_max[task_type]

    def sample_cost(self, sample_key: object) -> Optional[float]:
        costs = self._samples.get(sample_key)
        if not costs:
            return None
        return sum(costs) / len(costs)

    def evaluations(self, sample_key: object) -> int:
        return len(self._samples.get(sample_key, ()))

    def best_sample(self, keys: Iterable[object]) -> Optional[Tuple[object, float]]:
        """The lowest-cost sample among *keys* that has observations."""
        best: Optional[Tuple[object, float]] = None
        for key in keys:
            cost = self.sample_cost(key)
            if cost is None:
                continue
            if best is None or cost < best[1]:
                best = (key, cost)
        return best
