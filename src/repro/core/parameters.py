"""The tunable parameter space: Table 2 of the paper.

Each :class:`ParamSpec` describes one configuration parameter: its
Hadoop name, default, range, and an encoding between the search
algorithm's unit interval [0, 1] and concrete values.  Memory sizes use
a log scale (doubling memory should be one "step", not many); percents
and small integers are linear.

The search algorithms (:mod:`repro.core.sampling`,
:mod:`repro.core.hill_climbing`) operate entirely in the unit cube and
decode through this module, so adding a parameter is a one-line change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Sequence

import numpy as np

# Canonical Hadoop parameter names (kept verbatim from Table 2).
MAP_MEMORY_MB = "mapreduce.map.memory.mb"
REDUCE_MEMORY_MB = "mapreduce.reduce.memory.mb"
IO_SORT_MB = "mapreduce.task.io.sort.mb"
SORT_SPILL_PERCENT = "mapreduce.map.sort.spill.percent"
SHUFFLE_INPUT_BUFFER_PERCENT = "mapreduce.reduce.shuffle.input.buffer.percent"
SHUFFLE_MERGE_PERCENT = "mapreduce.reduce.shuffle.merge.percent"
SHUFFLE_MEMORY_LIMIT_PERCENT = "mapreduce.reduce.shuffle.memory.limit.percent"
MERGE_INMEM_THRESHOLD = "mapreduce.reduce.merge.inmem.threshold"
REDUCE_INPUT_BUFFER_PERCENT = "mapreduce.reduce.input.buffer.percent"
MAP_CPU_VCORES = "mapreduce.map.cpu.vcores"
REDUCE_CPU_VCORES = "mapreduce.reduce.cpu.vcores"
IO_SORT_FACTOR = "mapreduce.task.io.sort.factor"
SHUFFLE_PARALLELCOPIES = "mapreduce.reduce.shuffle.parallelcopies"
# Category-1 parameter (not dynamically tunable; carried for completeness).
REDUCE_SLOWSTART = "mapreduce.job.reduce.slowstart.completedmaps"


@dataclass(frozen=True)
class ParamSpec:
    """One tunable parameter: identity, range, and unit-cube encoding."""

    name: str
    default: float
    low: float
    high: float
    #: "int" | "float" -- decoded value type.
    kind: str = "float"
    #: Use log-scale encoding (for memory-like ranges spanning decades).
    log_scale: bool = False
    #: True for parameters that can change mid-task (category 3, S2.2).
    hot_swappable: bool = False
    #: Rounding step for decoded values (e.g. memory in 64 MB steps).
    step: float = 0.0

    def __post_init__(self) -> None:
        if not (self.low <= self.default <= self.high):
            raise ValueError(
                f"{self.name}: default {self.default} outside [{self.low}, {self.high}]"
            )
        if self.log_scale and self.low <= 0:
            raise ValueError(f"{self.name}: log scale requires positive bounds")

    # -- unit-cube encoding ------------------------------------------------
    def decode(self, u: float) -> float:
        """Map u in [0, 1] to a concrete parameter value."""
        u = min(1.0, max(0.0, float(u)))
        if self.log_scale:
            lo, hi = math.log(self.low), math.log(self.high)
            value = math.exp(lo + u * (hi - lo))
        else:
            value = self.low + u * (self.high - self.low)
        if self.step > 0:
            value = round(value / self.step) * self.step
            value = min(self.high, max(self.low, value))
        if self.kind == "int":
            value = int(round(value))
            value = int(min(self.high, max(self.low, value)))
        return value

    def encode(self, value: float) -> float:
        """Map a concrete value back to the unit interval."""
        value = min(self.high, max(self.low, float(value)))
        if self.high == self.low:
            return 0.0
        if self.log_scale:
            lo, hi = math.log(self.low), math.log(self.high)
            return (math.log(value) - lo) / (hi - lo)
        return (value - self.low) / (self.high - self.low)

    def clamp(self, value: float) -> float:
        value = min(self.high, max(self.low, value))
        if self.kind == "int":
            return int(round(value))
        return value


class ParameterSpace:
    """An ordered collection of :class:`ParamSpec` with vector codecs."""

    def __init__(self, specs: Sequence[ParamSpec]) -> None:
        self._specs: List[ParamSpec] = list(specs)
        self._index: Dict[str, int] = {s.name: i for i, s in enumerate(self._specs)}
        if len(self._index) != len(self._specs):
            raise ValueError("duplicate parameter names in space")

    # -- container protocol -----------------------------------------------
    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[ParamSpec]:
        return iter(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    @property
    def names(self) -> List[str]:
        return [s.name for s in self._specs]

    def spec(self, name: str) -> ParamSpec:
        return self._specs[self._index[name]]

    def subspace(self, names: Sequence[str]) -> "ParameterSpace":
        return ParameterSpace([self.spec(n) for n in names])

    # -- vector codecs ------------------------------------------------------
    def decode(self, u: np.ndarray) -> Dict[str, float]:
        """Decode a unit-cube point into a name -> value mapping."""
        if len(u) != len(self._specs):
            raise ValueError(f"point has {len(u)} dims, space has {len(self._specs)}")
        return {s.name: s.decode(x) for s, x in zip(self._specs, u)}

    def encode(self, values: Mapping[str, float]) -> np.ndarray:
        """Encode a (possibly partial) mapping; missing names use defaults."""
        out = np.empty(len(self._specs))
        for i, s in enumerate(self._specs):
            out[i] = s.encode(values.get(s.name, s.default))
        return out

    def defaults(self) -> Dict[str, float]:
        return {s.name: s.clamp(s.default) for s in self._specs}

    def default_point(self) -> np.ndarray:
        return self.encode(self.defaults())


def build_parameter_space(
    max_container_mb: int = 4096,
    max_vcores: int = 8,
) -> ParameterSpace:
    """The Table-2 space, bounded by what one container may request.

    ``max_container_mb``/``max_vcores`` default to a fraction of the
    paper's per-node YARN pool (6 GB / 28 vcores) so that a single
    container cannot monopolize a node.
    """
    return ParameterSpace(
        [
            ParamSpec(
                MAP_MEMORY_MB, 1024, 512, max_container_mb, kind="int", log_scale=True, step=64
            ),
            ParamSpec(
                REDUCE_MEMORY_MB, 1024, 512, max_container_mb, kind="int", log_scale=True, step=64
            ),
            ParamSpec(IO_SORT_MB, 100, 50, 1600, kind="int", log_scale=True, step=10),
            ParamSpec(SORT_SPILL_PERCENT, 0.8, 0.5, 0.99, hot_swappable=True),
            ParamSpec(SHUFFLE_INPUT_BUFFER_PERCENT, 0.7, 0.2, 0.9),
            ParamSpec(SHUFFLE_MERGE_PERCENT, 0.66, 0.2, 0.9, hot_swappable=True),
            ParamSpec(SHUFFLE_MEMORY_LIMIT_PERCENT, 0.25, 0.1, 0.7),
            ParamSpec(
                MERGE_INMEM_THRESHOLD, 1000, 0, 10000, kind="int", hot_swappable=True, step=100
            ),
            ParamSpec(REDUCE_INPUT_BUFFER_PERCENT, 0.0, 0.0, 0.9),
            ParamSpec(MAP_CPU_VCORES, 1, 1, max_vcores, kind="int"),
            ParamSpec(REDUCE_CPU_VCORES, 1, 1, max_vcores, kind="int"),
            ParamSpec(IO_SORT_FACTOR, 10, 5, 100, kind="int", log_scale=True),
            ParamSpec(SHUFFLE_PARALLELCOPIES, 5, 1, 50, kind="int"),
        ]
    )


#: The canonical space used throughout the repository.
PARAMETER_SPACE: ParameterSpace = build_parameter_space()

#: Default values for every parameter (Table 2's "Default Value" column).
DEFAULTS: Dict[str, float] = PARAMETER_SPACE.defaults()
