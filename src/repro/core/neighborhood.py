"""Search-neighborhood geometry for the local phase of Algorithm 1.

A neighborhood is an axis-aligned box around the current best point in
the unit cube, intersected with the gray-box *bounds* that the tuning
rules tighten as evidence accumulates (e.g. "increase the memory lower
bound to the 80th percentile of sampled values", Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

#: Initial edge length of a fresh neighborhood (fraction of the unit cube).
INITIAL_SIZE = 0.5


@dataclass
class Bounds:
    """Per-dimension sampling bounds in the unit cube, rule-adjustable."""

    dims: int
    lo: np.ndarray = field(init=False)
    hi: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.lo = np.zeros(self.dims)
        self.hi = np.ones(self.dims)

    def raise_lower(self, dim: int, value: float) -> None:
        """Tighten the lower bound (never loosened back by rules)."""
        self.lo[dim] = min(max(self.lo[dim], value), self.hi[dim])

    def lower_upper(self, dim: int, value: float) -> None:
        """Tighten the upper bound."""
        self.hi[dim] = max(min(self.hi[dim], value), self.lo[dim])

    def reset(self, dim: int) -> None:
        self.lo[dim] = 0.0
        self.hi[dim] = 1.0

    def clip(self, point: np.ndarray) -> np.ndarray:
        return np.clip(point, self.lo, self.hi)

    def as_pairs(self) -> List[Tuple[float, float]]:
        return list(zip(self.lo.tolist(), self.hi.tolist()))

    def volume(self) -> float:
        return float(np.prod(np.maximum(0.0, self.hi - self.lo)))


@dataclass(frozen=True)
class Neighborhood:
    """An axis-aligned box of edge *size* centered at *center*."""

    center: np.ndarray
    size: float = INITIAL_SIZE

    def shrink(self, factor: float) -> "Neighborhood":
        """``shrink_neighbor``: same center, edge scaled by *factor* < 1."""
        if not 0.0 < factor < 1.0:
            raise ValueError(f"shrink factor {factor} outside (0, 1)")
        return Neighborhood(self.center, self.size * factor)

    def recenter(self, center: np.ndarray, size: float = INITIAL_SIZE) -> "Neighborhood":
        """``adjust_neighbor``: move to the new best point, restore size."""
        return Neighborhood(np.asarray(center, dtype=float), size)

    def sampling_bounds(self, bounds: Bounds) -> List[Tuple[float, float]]:
        """The box intersected with the gray-box bounds, per dimension.

        If the rules have pushed a bound past the box on some dimension,
        that dimension collapses to the nearest feasible sliver rather
        than inverting.
        """
        half = self.size / 2.0
        out: List[Tuple[float, float]] = []
        for d in range(len(self.center)):
            lo = max(bounds.lo[d], self.center[d] - half)
            hi = min(bounds.hi[d], self.center[d] + half)
            if lo > hi:
                # The rule-tightened bounds exclude the box: sample at
                # the feasible edge closest to the center.
                edge = bounds.lo[d] if self.center[d] < bounds.lo[d] else bounds.hi[d]
                lo = hi = edge
            out.append((lo, hi))
        return out
