"""Latin hypercube sampling (plain and weighted).

LHS partitions each dimension's probability mass into ``n`` equal
intervals and draws exactly one sample per interval, guaranteeing
marginal stratification -- the property the smart-hill-climbing paper
exploits for higher-quality sampling than uniform random search
(Section 5, property 3).

The *weighted* variant biases the density toward a center point with a
triangular kernel while preserving stratification: the unit interval is
warped through the kernel's inverse CDF, so equal-probability intervals
become unequal-width intervals concentrated near the center.  The local
search phase uses it to favour the neighborhood's middle.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


def latin_hypercube(
    rng: np.random.Generator,
    n: int,
    dims: int,
    bounds: Optional[Sequence[Tuple[float, float]]] = None,
) -> np.ndarray:
    """Draw *n* LHS points in ``[0, 1]^dims`` (or within per-dim bounds).

    Returns an ``(n, dims)`` array.  Each column is a permutation of
    stratified draws, so every 1/n-wide slab of every dimension contains
    exactly one point.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if dims < 1:
        raise ValueError("dims must be >= 1")
    # Stratified uniforms: one per interval, then shuffle per column.
    u = (np.arange(n)[:, None] + rng.random((n, dims))) / n
    for d in range(dims):
        rng.shuffle(u[:, d])
    if bounds is not None:
        if len(bounds) != dims:
            raise ValueError(f"{len(bounds)} bounds for {dims} dims")
        lo = np.array([b[0] for b in bounds])
        hi = np.array([b[1] for b in bounds])
        if np.any(lo > hi):
            raise ValueError("lower bound above upper bound")
        u = lo + u * (hi - lo)
    return u


def _triangular_ppf(q: np.ndarray, lo: float, mode: float, hi: float) -> np.ndarray:
    """Inverse CDF of the triangular distribution on [lo, hi] peaking at mode."""
    if hi <= lo:
        return np.full_like(q, lo)
    mode = min(hi, max(lo, mode))
    span = hi - lo
    fc = (mode - lo) / span
    out = np.empty_like(q)
    left = q < fc
    if fc > 0:
        out[left] = lo + np.sqrt(q[left] * span * (mode - lo))
    else:
        out[left] = lo
    if fc < 1:
        out[~left] = hi - np.sqrt((1 - q[~left]) * span * (hi - mode))
    else:
        out[~left] = hi
    return out


def weighted_latin_hypercube(
    rng: np.random.Generator,
    n: int,
    center: np.ndarray,
    bounds: Sequence[Tuple[float, float]],
) -> np.ndarray:
    """Stratified sampling biased toward *center* within *bounds*.

    Each dimension draws LHS-stratified quantiles and maps them through
    a triangular distribution peaked at the center coordinate, so the
    sample cloud is densest where the current best configuration sits
    while still covering the whole neighborhood.
    """
    center = np.asarray(center, dtype=float)
    dims = len(center)
    if len(bounds) != dims:
        raise ValueError(f"{len(bounds)} bounds for {dims}-dim center")
    q = latin_hypercube(rng, n, dims)
    out = np.empty_like(q)
    for d in range(dims):
        lo, hi = bounds[d]
        out[:, d] = _triangular_ppf(q[:, d], lo, center[d], hi)
    return out
