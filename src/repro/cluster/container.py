"""YARN containers: the resource-scheduling unit.

A container encapsulates a memory and vcore grant on a specific node.
MRONLINE's task-level dynamic configuration hinges on YARN being able
to hand out *different-sized* containers to different tasks; the
:class:`Container` here carries exactly that variable grant.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

_container_ids = itertools.count(1)


class ContainerState(enum.Enum):
    ALLOCATED = "allocated"
    RUNNING = "running"
    COMPLETED = "completed"
    RELEASED = "released"


class Container:
    """A memory/vcore grant on a node, owned by one application."""

    __slots__ = ("container_id", "node", "memory_bytes", "vcores", "app_id", "state", "tag")

    def __init__(
        self,
        node: "Node",
        memory_bytes: int,
        vcores: int,
        app_id: str,
        tag: object = None,
    ) -> None:
        self.container_id = next(_container_ids)
        self.node = node
        self.memory_bytes = memory_bytes
        self.vcores = vcores
        self.app_id = app_id
        self.state = ContainerState.ALLOCATED
        #: The workload this grant runs (typically a TaskId); used to
        #: cancel the task's labelled flows when the container is killed.
        self.tag = tag

    @property
    def max_cores(self) -> float:
        """Physical cores this container's vcore grant entitles it to."""
        return self.vcores * self.node.resources.cores_per_vcore

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        mb = self.memory_bytes // (1024 * 1024)
        return (
            f"<Container #{self.container_id} {mb}MB/{self.vcores}vc "
            f"on {self.node.hostname} [{self.state.value}]>"
        )
