"""Simulated cluster hardware: nodes, disks, NICs, racks.

The default topology mirrors the paper's 19-node testbed: one master
and 18 slaves split across two racks (9 + 10 nodes including the
master), each slave with 8 physical cores, 8 GB of memory, a single
SATA disk, and a 1 Gbps NIC.
"""

from repro.cluster.container import Container, ContainerState
from repro.cluster.network import Network
from repro.cluster.node import Node, NodeResources
from repro.cluster.topology import Cluster, ClusterSpec, build_cluster, paper_cluster_spec

__all__ = [
    "Cluster",
    "ClusterSpec",
    "Container",
    "ContainerState",
    "Network",
    "Node",
    "NodeResources",
    "build_cluster",
    "paper_cluster_spec",
]
