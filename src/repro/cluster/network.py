"""Cluster network: per-node NICs, rack uplinks, and a core switch.

All transfers share one cluster-wide :class:`FlowScheduler`; a transfer
from node A to node B traverses A's TX link and B's RX link, plus both
racks' uplinks when it crosses racks.  Rates are max-min fair across
everything in flight, so shuffle-heavy phases create exactly the kind
of contention the paper's monitor observes as network hot spots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.node import Node
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.resources import FlowScheduler, Link


class Network:
    """The cluster fabric connecting nodes."""

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[Node],
        rack_uplink_bw: Optional[float] = None,
        oversubscription: float = 4.0,
    ) -> None:
        self.sim = sim
        self.nodes = list(nodes)
        self.scheduler = FlowScheduler(sim, name="net")
        self._tx: Dict[int, Link] = {}
        self._rx: Dict[int, Link] = {}
        racks = sorted({n.rack for n in self.nodes})
        self._uplink: Dict[int, Link] = {}
        for node in self.nodes:
            bw = node.resources.nic_bw
            self._tx[node.node_id] = Link(f"{node.hostname}.tx", bw)
            self._rx[node.node_id] = Link(f"{node.hostname}.rx", bw)
        for rack in racks:
            members = [n for n in self.nodes if n.rack == rack]
            if rack_uplink_bw is None:
                # Typical top-of-rack oversubscription: aggregate NIC
                # bandwidth divided by the oversubscription factor.
                bw = sum(n.resources.nic_bw for n in members) / oversubscription
            else:
                bw = rack_uplink_bw
            self._uplink[rack] = Link(f"rack{rack}.uplink", bw)
        # Aggregate fabric capacity for scatter-style fetches (shuffle):
        # sources are spread across the cluster, so the constraint is the
        # sum of uplink capacities rather than any single path.
        core_bw = max(sum(lnk.capacity for lnk in self._uplink.values()), 1.0)
        self._core = Link("fabric.core", core_bw)

    def transfer(
        self,
        src: Node,
        dst: Node,
        nbytes: float,
        cap: Optional[float] = None,
        label: str = "",
    ) -> Event:
        """Stream *nbytes* from *src* to *dst*; returns a completion event.

        Node-local "transfers" bypass the fabric entirely (loopback) and
        complete on the next calendar step, matching how Hadoop serves
        node-local shuffle segments from the local filesystem.
        """
        if src.node_id == dst.node_id:
            ev = self.sim.event()
            ev.succeed(0.0)
            return ev
        links: List[Link] = [self._tx[src.node_id]]
        if src.rack != dst.rack:
            links.append(self._uplink[src.rack])
            links.append(self._uplink[dst.rack])
        links.append(self._rx[dst.node_id])
        return self.scheduler.transfer(links, nbytes, cap=cap, label=label)

    def fetch_into(
        self,
        dst: Node,
        nbytes: float,
        cap: Optional[float] = None,
        extra_links: Sequence[Link] = (),
        label: str = "",
    ) -> Event:
        """An aggregated many-sources-to-one fetch (shuffle rounds).

        The flow is charged to the destination's RX link and the fabric
        core (sources are spread out, so no single TX link binds); the
        caller may thread extra links through, e.g. a per-reducer copier
        link whose capacity encodes ``shuffle.parallelcopies``.
        """
        links: List[Link] = [self._core, self._rx[dst.node_id], *extra_links]
        return self.scheduler.transfer(links, nbytes, cap=cap, label=label)

    # -- monitoring -------------------------------------------------------
    def nic_utilization(self, node: Node) -> Tuple[float, ...]:
        """``(rx, tx)`` utilization for *node*, one scan of active flows.

        The slave monitors sample both directions every heartbeat; the
        batched form halves the per-sample flow-list scans while staying
        bit-identical to two :meth:`rx_utilization`/:meth:`tx_utilization`
        calls.
        """
        return self.scheduler.utilizations(
            (self._rx[node.node_id], self._tx[node.node_id])
        )

    def rx_utilization(self, node: Node) -> float:
        return self.scheduler.utilization(self._rx[node.node_id])

    def tx_utilization(self, node: Node) -> float:
        return self.scheduler.utilization(self._tx[node.node_id])

    def uplink_utilization(self, rack: int) -> float:
        return self.scheduler.utilization(self._uplink[rack])
