"""Cluster network: per-node NICs, rack uplinks, and a core switch.

All transfers share one cluster-wide :class:`FlowScheduler`; a transfer
from node A to node B traverses A's TX link and B's RX link, plus both
racks' uplinks when it crosses racks.  Rates are max-min fair across
everything in flight, so shuffle-heavy phases create exactly the kind
of contention the paper's monitor observes as network hot spots.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.node import FROZEN_CAPACITY, Node
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.resources import FlowScheduler, Link

if TYPE_CHECKING:
    from repro.faults.network_state import NetworkFaultState


class Network:
    """The cluster fabric connecting nodes."""

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[Node],
        rack_uplink_bw: Optional[float] = None,
        oversubscription: float = 4.0,
    ) -> None:
        self.sim = sim
        self.nodes = list(nodes)
        self.scheduler = FlowScheduler(sim, name="net")
        self._tx: Dict[int, Link] = {}
        self._rx: Dict[int, Link] = {}
        racks = sorted({n.rack for n in self.nodes})
        self._uplink: Dict[int, Link] = {}
        for node in self.nodes:
            bw = node.resources.nic_bw
            self._tx[node.node_id] = Link(f"{node.hostname}.tx", bw)
            self._rx[node.node_id] = Link(f"{node.hostname}.rx", bw)
        for rack in racks:
            members = [n for n in self.nodes if n.rack == rack]
            if rack_uplink_bw is None:
                # Typical top-of-rack oversubscription: aggregate NIC
                # bandwidth divided by the oversubscription factor.
                bw = sum(n.resources.nic_bw for n in members) / oversubscription
            else:
                bw = rack_uplink_bw
            self._uplink[rack] = Link(f"rack{rack}.uplink", bw)
        # Aggregate fabric capacity for scatter-style fetches (shuffle):
        # sources are spread across the cluster, so the constraint is the
        # sum of uplink capacities rather than any single path.
        core_bw = max(sum(lnk.capacity for lnk in self._uplink.values()), 1.0)
        self._core = Link("fabric.core", core_bw)
        # -- fault bookkeeping (mirrors Node's base-capacity idiom) -----
        self._base_nic: Dict[int, float] = {
            n.node_id: n.resources.nic_bw for n in self.nodes
        }
        self._base_uplink: Dict[int, float] = {
            rack: lnk.capacity for rack, lnk in self._uplink.items()
        }
        self._nic_frozen: Set[int] = set()
        self._partition_depth: Dict[int, int] = {rack: 0 for rack in self._uplink}
        #: Armed by the fault injector when the plan has network kinds;
        #: ``None`` means the gray-failure fetch path stays dormant.
        self.faults: Optional["NetworkFaultState"] = None

    # -- elastic membership -----------------------------------------------
    def attach_node(self, node: Node) -> None:
        """Wire a freshly joined node into the fabric.

        The newcomer gets its own TX/RX links; its rack's uplink (and
        the core) keep their provisioned capacity -- racking one more
        machine into an existing ToR switch does not widen the trunk.
        """
        if node.node_id in self._tx:
            raise ValueError(f"node {node.node_id} is already attached")
        if node.rack not in self._uplink:
            raise ValueError(f"node {node.node_id} names unknown rack {node.rack}")
        bw = node.resources.nic_bw
        self.nodes.append(node)
        self._tx[node.node_id] = Link(f"{node.hostname}.tx", bw)
        self._rx[node.node_id] = Link(f"{node.hostname}.rx", bw)
        self._base_nic[node.node_id] = bw

    # -- fault surfaces ---------------------------------------------------
    def scale_node_nic(self, node_id: int, factor: float) -> None:
        """Rescale a node's TX and RX links to *factor* of nominal."""
        if not (0.0 < factor <= 1.0):
            raise ValueError(f"NIC factor must be in (0, 1], got {factor}")
        if node_id in self._nic_frozen:
            return
        cap = self._base_nic[node_id] * factor
        self.scheduler.set_link_capacity(self._tx[node_id], cap)
        self.scheduler.set_link_capacity(self._rx[node_id], cap)

    def restore_node_nic(self, node_id: int) -> None:
        """Heal a degraded NIC back to nominal (no-op once frozen)."""
        self.scale_node_nic(node_id, 1.0)

    def freeze_node_nic(self, node_id: int) -> None:
        """Permanently stall a dead node's NIC (crash in network mode)."""
        self._nic_frozen.add(node_id)
        self.scheduler.set_link_capacity(self._tx[node_id], FROZEN_CAPACITY)
        self.scheduler.set_link_capacity(self._rx[node_id], FROZEN_CAPACITY)

    def partition_rack(self, rack: int) -> None:
        """Stall a rack's uplink; nested partitions stack (depth count)."""
        self._partition_depth[rack] += 1
        if self._partition_depth[rack] == 1:
            self.scheduler.set_link_capacity(self._uplink[rack], FROZEN_CAPACITY)

    def heal_rack(self, rack: int) -> None:
        """Undo one :meth:`partition_rack`; heals at depth zero."""
        if self._partition_depth[rack] == 0:
            return
        self._partition_depth[rack] -= 1
        if self._partition_depth[rack] == 0:
            self.scheduler.set_link_capacity(self._uplink[rack], self._base_uplink[rack])

    def rack_partitioned(self, rack: int) -> bool:
        return self._partition_depth[rack] > 0

    def transfer(
        self,
        src: Node,
        dst: Node,
        nbytes: float,
        cap: Optional[float] = None,
        label: str = "",
    ) -> Event:
        """Stream *nbytes* from *src* to *dst*; returns a completion event.

        Node-local "transfers" bypass the fabric entirely (loopback) and
        complete on the next calendar step, matching how Hadoop serves
        node-local shuffle segments from the local filesystem.
        """
        if src.node_id == dst.node_id:
            ev = self.sim.event()
            ev.succeed(0.0)
            return ev
        links: List[Link] = [self._tx[src.node_id]]
        if src.rack != dst.rack:
            links.append(self._uplink[src.rack])
            links.append(self._uplink[dst.rack])
        links.append(self._rx[dst.node_id])
        return self.scheduler.transfer(links, nbytes, cap=cap, label=label)

    def fetch_into(
        self,
        dst: Node,
        nbytes: float,
        cap: Optional[float] = None,
        extra_links: Sequence[Link] = (),
        label: str = "",
    ) -> Event:
        """An aggregated many-sources-to-one fetch (shuffle rounds).

        The flow is charged to the destination's RX link and the fabric
        core (sources are spread out, so no single TX link binds); the
        caller may thread extra links through, e.g. a per-reducer copier
        link whose capacity encodes ``shuffle.parallelcopies``.
        """
        links: List[Link] = [self._core, self._rx[dst.node_id], *extra_links]
        return self.scheduler.transfer(links, nbytes, cap=cap, label=label)

    def fetch_from(
        self,
        src: Node,
        dst: Node,
        nbytes: float,
        cap: Optional[float] = None,
        extra_links: Sequence[Link] = (),
        label: str = "",
    ) -> Event:
        """One source-attributed shuffle fetch (gray-failure fetch path).

        Unlike :meth:`fetch_into`, the flow traverses the *source*'s TX
        link (plus both rack uplinks when it crosses racks), so a
        degraded NIC or partitioned rack stalls exactly the fetches that
        touch it.  Node-local segments bypass the fabric like
        :meth:`transfer`.
        """
        if src.node_id == dst.node_id:
            ev = self.sim.event()
            ev.succeed(0.0)
            return ev
        links: List[Link] = [self._tx[src.node_id]]
        if src.rack != dst.rack:
            links.append(self._uplink[src.rack])
            links.append(self._uplink[dst.rack])
        links.append(self._rx[dst.node_id])
        links.extend(extra_links)
        return self.scheduler.transfer(links, nbytes, cap=cap, label=label)

    # -- monitoring -------------------------------------------------------
    def nic_utilization(self, node: Node) -> Tuple[float, ...]:
        """``(rx, tx)`` utilization for *node*, one scan of active flows.

        The slave monitors sample both directions every heartbeat; the
        batched form halves the per-sample flow-list scans while staying
        bit-identical to two :meth:`rx_utilization`/:meth:`tx_utilization`
        calls.
        """
        return self.scheduler.utilizations(
            (self._rx[node.node_id], self._tx[node.node_id])
        )

    def rx_utilization(self, node: Node) -> float:
        return self.scheduler.utilization(self._rx[node.node_id])

    def tx_utilization(self, node: Node) -> float:
        return self.scheduler.utilization(self._tx[node.node_id])

    def uplink_utilization(self, rack: int) -> float:
        return self.scheduler.utilization(self._uplink[rack])
