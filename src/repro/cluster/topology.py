"""Cluster construction: specs and the paper's 19-node testbed."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.cluster.network import Network
from repro.cluster.node import Node, NodeResources
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a cluster to build."""

    #: Number of slave (worker) nodes; the master is not modelled as a
    #: compute node because it runs no containers in the paper's setup.
    num_slaves: int = 18
    #: Rack sizes; must sum to ``num_slaves``.
    racks: Sequence[int] = (9, 9)
    node_resources: NodeResources = field(default_factory=NodeResources)
    rack_uplink_bw: Optional[float] = None
    oversubscription: float = 4.0

    def __post_init__(self) -> None:
        if sum(self.racks) != self.num_slaves:
            raise ValueError(
                f"rack sizes {tuple(self.racks)} do not sum to num_slaves={self.num_slaves}"
            )


def paper_cluster_spec() -> ClusterSpec:
    """The evaluation testbed: 19 nodes (1 master + 18 slaves), 2 racks.

    The paper arranges nine and ten nodes per rack; the master occupies
    one slot of the ten-node rack, so slaves split 9/9.
    """
    return ClusterSpec(num_slaves=18, racks=(9, 9))


class Cluster:
    """A built cluster: nodes plus the network fabric."""

    def __init__(self, sim: Simulator, spec: ClusterSpec) -> None:
        self.sim = sim
        self.spec = spec
        self.nodes: List[Node] = []
        node_id = 0
        for rack_idx, size in enumerate(spec.racks):
            for _ in range(size):
                self.nodes.append(Node(sim, node_id, rack_idx, spec.node_resources))
                node_id += 1
        self.network = Network(
            sim,
            self.nodes,
            rack_uplink_bw=spec.rack_uplink_bw,
            oversubscription=spec.oversubscription,
        )

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def add_node(self, rack: int) -> Node:
        """Register a brand-new node mid-run (elastic join).

        The newcomer gets the next sequential id (``node_id`` doubles as
        the index into ``nodes``, so departed nodes stay in the list and
        joins only ever append) and is attached to *rack*'s existing
        fabric -- its NIC links join the rack uplink without changing
        the uplink's capacity, exactly like racking a fresh machine into
        a ToR switch that was provisioned ahead of time.
        """
        if not (0 <= rack < len(self.spec.racks)):
            raise ValueError(f"unknown rack {rack}, have {len(self.spec.racks)} rack(s)")
        node = Node(self.sim, len(self.nodes), rack, self.spec.node_resources)
        self.nodes.append(node)
        self.network.attach_node(node)
        return node

    @property
    def total_yarn_memory(self) -> int:
        return sum(n.yarn_memory_total for n in self.nodes)

    @property
    def total_yarn_vcores(self) -> int:
        return sum(n.yarn_vcores_total for n in self.nodes)

    @property
    def live_nodes(self) -> List[Node]:
        """Nodes currently in service (not crashed, departed, or dead)."""
        return [n for n in self.nodes if n.alive]

    @property
    def live_yarn_memory(self) -> int:
        return sum(n.yarn_memory_total for n in self.nodes if n.alive)

    @property
    def live_yarn_vcores(self) -> int:
        return sum(n.yarn_vcores_total for n in self.nodes if n.alive)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Cluster {len(self.nodes)} slaves, {len(self.spec.racks)} racks>"


def build_cluster(sim: Simulator, spec: Optional[ClusterSpec] = None) -> Cluster:
    """Build a cluster; defaults to the paper's 19-node testbed."""
    return Cluster(sim, spec or paper_cluster_spec())
