"""A cluster node: CPU, memory pool, and local disk.

CPU is modelled as a :class:`~repro.sim.resources.FlowScheduler` with a
single link whose capacity is ``physical_cores`` core-seconds per
second; a compute flow's per-flow cap encodes how many cores the task
may use (its container's vcore grant converted to physical cores,
further capped by the task's inherent parallelism).  The disk is a
second scheduler shared by reads and writes.

Memory is bookkeeping only: containers reserve memory from the node's
pool; the pool never oversubscribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Event
from repro.sim.resources import FlowScheduler, Link

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.container import Container

MB = 1024 * 1024
GB = 1024 * MB

#: Capacity a crashed node's links are frozen at.  It must stay positive
#: (the flow scheduler rejects zero-capacity links), but is small enough
#: that any in-flight work effectively never finishes: the failure is
#: noticed through heartbeat expiry, not through task completion.
FROZEN_CAPACITY = 1e-9


@dataclass(frozen=True)
class NodeResources:
    """Static hardware description of a node."""

    physical_cores: int = 8
    #: Per-core compute throughput in "work units"/s.  Workloads express
    #: their compute demand in the same units, so only ratios matter.
    core_speed: float = 1.0
    memory_bytes: int = 8 * GB
    disk_read_bw: float = 110 * MB  # sequential read, bytes/s
    disk_write_bw: float = 90 * MB  # sequential write, bytes/s
    nic_bw: float = 117 * MB  # 1 Gbps full duplex, bytes/s each way

    #: YARN-visible resources (the paper: 28 vcores / 6 GB per slave for
    #: containers; the rest is reserved for DataNode + NodeManager).
    yarn_vcores: int = 28
    yarn_memory_bytes: int = 6 * GB

    @property
    def cores_per_vcore(self) -> float:
        """Physical-core share represented by one YARN vcore."""
        # The paper's nodes expose 32 vcores total (28 for containers + 4
        # reserved) over 8 physical cores => 1 vcore = 1/4 core.
        return self.physical_cores / 32.0


class Node:
    """A simulated slave node hosting containers."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        rack: int,
        resources: NodeResources,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.rack = rack
        self.resources = resources
        self.hostname = f"node{node_id:02d}"

        self.cpu_link = Link(
            f"{self.hostname}.cpu", resources.physical_cores * resources.core_speed
        )
        self.cpu = FlowScheduler(sim, name=f"{self.hostname}.cpu")
        self.disk_read_link = Link(f"{self.hostname}.disk.rd", resources.disk_read_bw)
        self.disk_write_link = Link(f"{self.hostname}.disk.wr", resources.disk_write_bw)
        # One scheduler for the spindle: reads and writes contend, but the
        # two links let us keep asymmetric sequential bandwidths.
        self.disk = FlowScheduler(sim, name=f"{self.hostname}.disk")

        # Memory pool for YARN containers.
        self.yarn_memory_total = resources.yarn_memory_bytes
        self.yarn_memory_used = 0
        self.yarn_vcores_total = resources.yarn_vcores
        self.yarn_vcores_used = 0

        self.containers: Dict[int, "Container"] = {}

        #: Liveness and health (driven by the fault injector).
        self.alive = True
        #: True once the node left the cluster through the elastic path
        #: (graceful decommission or spot reclaim) rather than a crash.
        self.departed = False
        self.cpu_slowdown = 1.0
        self.disk_slowdown = 1.0
        self._base_cpu_capacity = self.cpu_link.capacity
        self._base_disk_read_capacity = self.disk_read_link.capacity
        self._base_disk_write_capacity = self.disk_write_link.capacity

    # ------------------------------------------------------------------
    # Fault model (crash / degrade / recover)
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash the node: freeze its links so in-flight work stalls.

        The node is *not* cleaned up here -- detection happens through
        heartbeat expiry at the resource manager, exactly as on a real
        cluster where a dead NodeManager simply goes silent.
        """
        if not self.alive:
            return
        self.alive = False
        self.cpu.set_link_capacity(self.cpu_link, FROZEN_CAPACITY)
        self.disk.set_link_capacity(self.disk_read_link, FROZEN_CAPACITY)
        self.disk.set_link_capacity(self.disk_write_link, FROZEN_CAPACITY)

    def depart(self) -> None:
        """Remove the node from service through the elastic path.

        Same frozen-links end state as :meth:`fail` -- the machine is
        gone either way -- but flagged as an orderly departure so
        diagnostics can tell a reclaimed node from a crashed one.  The
        node object stays in ``Cluster.nodes`` (ids double as indices);
        liveness filters everywhere key off ``alive``.
        """
        self.departed = True
        self.fail()

    def degrade(self, cpu_factor: float = 1.0, disk_factor: float = 1.0) -> None:
        """Slow the node down: remaining work proceeds at a fraction of
        the hardware's base throughput (a straggler, not a crash)."""
        if not (0.0 < cpu_factor <= 1.0) or not (0.0 < disk_factor <= 1.0):
            raise SimulationError(
                f"slowdown factors must be in (0, 1], got {cpu_factor}/{disk_factor}"
            )
        if not self.alive:
            return
        self.cpu_slowdown = cpu_factor
        self.disk_slowdown = disk_factor
        self._apply_capacities()

    def restore(self) -> None:
        """Recover a degraded node to full speed (crashes are permanent)."""
        if not self.alive:
            return
        self.cpu_slowdown = 1.0
        self.disk_slowdown = 1.0
        self._apply_capacities()

    def _apply_capacities(self) -> None:
        self.cpu.set_link_capacity(
            self.cpu_link, self._base_cpu_capacity * self.cpu_slowdown
        )
        self.disk.set_link_capacity(
            self.disk_read_link, self._base_disk_read_capacity * self.disk_slowdown
        )
        self.disk.set_link_capacity(
            self.disk_write_link, self._base_disk_write_capacity * self.disk_slowdown
        )

    def cancel_task_flows(self, prefix: str) -> int:
        """Drop this node's CPU and disk flows labelled with *prefix*
        (a killed task's compute/spill work stops consuming bandwidth)."""
        return self.cpu.cancel_prefix(prefix) + self.disk.cancel_prefix(prefix)

    # ------------------------------------------------------------------
    # Resource accounting (used by the YARN scheduler)
    # ------------------------------------------------------------------
    def can_fit(self, memory_bytes: int, vcores: int) -> bool:
        return (
            self.yarn_memory_used + memory_bytes <= self.yarn_memory_total
            and self.yarn_vcores_used + vcores <= self.yarn_vcores_total
        )

    def reserve(self, memory_bytes: int, vcores: int) -> None:
        if not self.can_fit(memory_bytes, vcores):
            raise SimulationError(
                f"{self.hostname}: cannot reserve {memory_bytes}B/{vcores}vc "
                f"(used {self.yarn_memory_used}B/{self.yarn_vcores_used}vc of "
                f"{self.yarn_memory_total}B/{self.yarn_vcores_total}vc)"
            )
        self.yarn_memory_used += memory_bytes
        self.yarn_vcores_used += vcores

    def release(self, memory_bytes: int, vcores: int) -> None:
        self.yarn_memory_used -= memory_bytes
        self.yarn_vcores_used -= vcores
        if self.yarn_memory_used < 0 or self.yarn_vcores_used < 0:
            raise SimulationError(f"{self.hostname}: resource over-release")

    @property
    def memory_headroom(self) -> int:
        return self.yarn_memory_total - self.yarn_memory_used

    @property
    def vcore_headroom(self) -> int:
        return self.yarn_vcores_total - self.yarn_vcores_used

    # ------------------------------------------------------------------
    # Hardware operations (called by task models)
    # ------------------------------------------------------------------
    def compute(self, work: float, max_cores: float, label: str = "") -> Event:
        """Run *work* units of compute using up to *max_cores* cores."""
        cap = max_cores * self.resources.core_speed
        return self.cpu.transfer([self.cpu_link], work, cap=cap, label=label)

    def disk_read(self, nbytes: float, label: str = "") -> Event:
        return self.disk.transfer([self.disk_read_link], nbytes, label=label)

    def disk_write(self, nbytes: float, label: str = "") -> Event:
        return self.disk.transfer([self.disk_write_link], nbytes, label=label)

    # ------------------------------------------------------------------
    # Monitoring hooks
    # ------------------------------------------------------------------
    def cpu_utilization(self) -> float:
        """Fraction of physical CPU capacity in use right now."""
        return self.cpu.utilization(self.cpu_link)

    def memory_utilization(self) -> float:
        """Fraction of the YARN memory pool reserved by containers."""
        if self.yarn_memory_total == 0:
            return 0.0
        return self.yarn_memory_used / self.yarn_memory_total

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Node {self.hostname} rack={self.rack}>"
