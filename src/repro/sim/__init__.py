"""Discrete-event simulation engine.

This package provides the substrate on which the cluster, YARN, and
MapReduce models run:

- :mod:`repro.sim.engine` -- the event calendar and simulated clock.
- :mod:`repro.sim.events` -- events, timeouts, and generator-based
  processes (a deliberately small simpy-like kernel).
- :mod:`repro.sim.resources` -- max-min fair-shared resources (disks,
  NICs, CPUs) modelled as links carrying flows, plus counting
  semaphores for slot-style resources.
- :mod:`repro.sim.rng` -- deterministic random-stream management.

The engine is deterministic: given the same seed and the same sequence
of scheduling calls, two runs produce identical event orders (ties are
broken by a monotone sequence number).
"""

from repro.sim.engine import Simulator
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Process, Timeout
from repro.sim.resources import FlowScheduler, Link, Semaphore, Store
from repro.sim.rng import RngRegistry, derive_seed

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "FlowScheduler",
    "Interrupt",
    "Link",
    "Process",
    "RngRegistry",
    "Semaphore",
    "Simulator",
    "Store",
    "Timeout",
    "derive_seed",
]
