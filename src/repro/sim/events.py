"""Events, timeouts, and generator-based processes.

This is a deliberately small simpy-like kernel.  A :class:`Process`
wraps a generator; each value the generator yields must be an
:class:`Event`, and the process resumes when that event fires.  A
process is itself an event that fires with the generator's return
value, so processes compose (``yield other_process``).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.engine import SimulationError, Simulator

EventCallback = Callable[["Event"], None]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulation calendar.

    An event is *triggered* once it has either succeeded (carrying a
    value) or failed (carrying an exception).  Callbacks registered
    before triggering run when the event fires; callbacks added after
    are invoked immediately.
    """

    __slots__ = ("sim", "callbacks", "value", "exception", "triggered", "scheduled", "cancelled")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.callbacks: List[EventCallback] = []
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        self.triggered = False
        self.scheduled = False
        self.cancelled = False

    # -- state transitions ---------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Mark the event successful and schedule it to fire."""
        if self.triggered or self.scheduled:
            raise SimulationError(f"{self!r} already triggered or scheduled")
        self.value = value
        self.sim.schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed and schedule it to fire."""
        if self.triggered or self.scheduled:
            raise SimulationError(f"{self!r} already triggered or scheduled")
        self.exception = exception
        self.sim.schedule(self, delay)
        return self

    def cancel(self) -> None:
        """Prevent a scheduled-but-unfired event from firing."""
        if self.triggered:
            raise SimulationError("cannot cancel a triggered event")
        self.cancelled = True

    def fire(self) -> None:
        """Invoke callbacks.  Called by the simulator only."""
        if self.triggered:
            raise SimulationError(f"{self!r} fired twice")
        self.triggered = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    # -- introspection ---------------------------------------------------
    @property
    def failed(self) -> bool:
        return self.triggered and self.exception is not None

    @property
    def ok(self) -> bool:
        return self.triggered and self.exception is None

    def add_callback(self, cb: EventCallback) -> None:
        """Register *cb*; runs immediately if the event already fired."""
        if self.triggered:
            cb(self)
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "triggered" if self.triggered else ("scheduled" if self.scheduled else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires a fixed delay after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: Simulator, delay: float, value: Any = None) -> None:
        super().__init__(sim)
        self.delay = delay
        self.value = value
        sim.schedule(self, delay)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Timeout delay={self.delay}>"


class Process(Event):
    """A generator-driven simulation process.

    The wrapped generator yields :class:`Event` instances.  When the
    generator returns, this process (itself an event) succeeds with the
    return value; an uncaught exception fails it.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off on the next calendar step so construction order does
        # not leak into execution order.
        start = Timeout(sim, 0.0)
        start.callbacks.append(self._resume)

    def _resume(self, fired: Event) -> None:
        self._waiting_on = None
        try:
            if fired.exception is not None:
                # A failed event (or child process) propagates its exception.
                target = self.generator.throw(fired.exception)
            else:
                target = self.generator.send(fired.value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}, expected an Event"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if self.triggered:
            return
        waiting = self._waiting_on
        self._waiting_on = None
        if waiting is not None and not waiting.triggered:
            # Detach: the interrupted event may still fire later; ignore it.
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
        kicker = Timeout(self.sim, 0.0)

        def _throw(_ev: Event) -> None:
            if self.triggered:
                return
            try:
                target = self.generator.throw(Interrupt(cause))
            except StopIteration as stop:
                self.succeed(getattr(stop, "value", None))
                return
            except BaseException as exc:
                self.fail(exc)
                return
            if not isinstance(target, Event):
                self.fail(SimulationError("process yielded a non-event after interrupt"))
                return
            self._waiting_on = target
            target.add_callback(self._resume)

        kicker.callbacks.append(_throw)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Process {self.name!r} {'done' if self.triggered else 'running'}>"


class AllOf(Event):
    """Fires once every child event has fired; value is the list of values.

    Fails fast with the first child failure.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: Simulator, events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._children:
            ev.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered or self.scheduled:
            return
        if child.exception is not None:
            self.fail(child.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Fires as soon as any child fires; value is ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, sim: Simulator, events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for idx, ev in enumerate(self._children):
            ev.add_callback(lambda child, idx=idx: self._on_child(idx, child))

    def _on_child(self, idx: int, child: Event) -> None:
        if self.triggered or self.scheduled:
            return
        if child.exception is not None:
            self.fail(child.exception)
        else:
            self.succeed((idx, child.value))
