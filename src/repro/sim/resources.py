"""Shared resources: fair-shared links, semaphores, and stores.

The central abstraction is the :class:`FlowScheduler`, which models a
set of capacity-limited :class:`Link` objects carrying :class:`Flow`
objects.  Every flow traverses one or more links and optionally has a
per-flow rate cap; the scheduler allocates rates by progressive-filling
**max-min fairness**, the standard model for bandwidth sharing on
disks, NICs, and (approximately) time-shared CPUs.

Whenever a flow is added or completes, the scheduler advances every
active flow by the elapsed time at its previous rate, recomputes the
max-min allocation, and schedules a completion event for the earliest
finisher.  Stale completion events are invalidated by a token counter.

Complexity per recompute is ``O(iterations * (links + flows))`` with at
least one flow or link frozen per iteration; schedulers in this
repository are kept node-local (per-disk, per-CPU) or cluster-global
(network) so the active flow counts stay small.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Event

_EPS = 1e-12


class Link:
    """A capacity-limited resource (bytes/s, ops/s, core-seconds/s)."""

    __slots__ = ("name", "capacity", "_active")

    def __init__(self, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError(f"link {name!r} needs positive capacity, got {capacity}")
        self.name = name
        self.capacity = float(capacity)
        self._active: int = 0  # maintained by the scheduler

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Link {self.name} cap={self.capacity:g}>"


class Flow:
    """A unit of work streaming through one or more links."""

    __slots__ = ("links", "cap", "remaining", "event", "rate", "started_at", "label", "total")

    def __init__(
        self,
        links: Sequence[Link],
        amount: float,
        event: Event,
        cap: Optional[float] = None,
        label: str = "",
    ) -> None:
        self.links = tuple(links)
        self.total = float(amount)
        self.remaining = float(amount)
        self.event = event
        self.cap = float(cap) if cap is not None else float("inf")
        self.rate = 0.0
        self.started_at = 0.0
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Flow {self.label} remaining={self.remaining:g} rate={self.rate:g}>"


def maxmin_rates(flows: Sequence[Flow]) -> Dict[Flow, float]:
    """Progressive-filling max-min fair allocation with per-flow caps.

    Returns a mapping flow -> rate.  Each iteration either freezes all
    flows bottlenecked at the tightest link at that link's fair share,
    or freezes flows whose cap is below the current water level, so the
    loop terminates in at most ``len(flows)`` iterations.
    """
    rates: Dict[Flow, float] = {}
    if not flows:
        return rates
    active: List[Flow] = list(flows)
    cap_left: Dict[Link, float] = {}
    counts: Dict[Link, int] = {}
    for f in active:
        for link in f.links:
            cap_left.setdefault(link, link.capacity)
            counts[link] = counts.get(link, 0) + 1

    while active:
        # Fair share on the currently tightest link.
        water = float("inf")
        for link, n in counts.items():
            if n > 0:
                share = cap_left[link] / n
                if share < water:
                    water = share
        if water == float("inf"):  # all remaining flows traverse no links
            for f in active:
                rates[f] = f.cap
            break
        capped = [f for f in active if f.cap <= water + _EPS]
        if capped:
            frozen = capped
            frozen_rates = {f: min(f.cap, water) for f in frozen}
        else:
            # Freeze every flow crossing a bottleneck link.
            bottlenecks = {
                link
                for link, n in counts.items()
                if n > 0 and cap_left[link] / n <= water + _EPS
            }
            frozen = [f for f in active if any(lnk in bottlenecks for lnk in f.links)]
            frozen_rates = {f: water for f in frozen}
        for f in frozen:
            r = frozen_rates[f]
            rates[f] = r
            for link in f.links:
                cap_left[link] = max(0.0, cap_left[link] - r)
                counts[link] -= 1
        active = [f for f in active if f not in rates]
    return rates


class FlowScheduler:
    """Allocates link bandwidth across active flows, max-min fairly."""

    def __init__(self, sim: Simulator, name: str = "flows") -> None:
        self.sim = sim
        self.name = name
        self._flows: List[Flow] = []
        self._last_update: float = 0.0
        self._token: int = 0  # invalidates stale completion events
        #: Total work completed through this scheduler (diagnostics).
        self.completed_work: float = 0.0
        self.completed_flows: int = 0

    # -- public API -------------------------------------------------------
    def transfer(
        self,
        links: Sequence[Link],
        amount: float,
        cap: Optional[float] = None,
        label: str = "",
    ) -> Event:
        """Stream *amount* units through *links*; returns a completion event.

        Zero-sized transfers complete on the next calendar step.
        """
        if amount < 0:
            raise SimulationError(f"negative transfer amount {amount}")
        done = self.sim.event()
        if amount <= _EPS:
            done.succeed(0.0)
            return done
        flow = Flow(links, amount, done, cap=cap, label=label)
        flow.started_at = self.sim.now
        self._advance()
        self._flows.append(flow)
        self._reschedule()
        return done

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def set_link_capacity(self, link: Link, capacity: float) -> None:
        """Change *link*'s capacity mid-flight (degraded / recovered hardware).

        In-flight flows keep the progress they made at the old rates; the
        allocation is recomputed from the new capacity.
        """
        if capacity <= 0:
            raise SimulationError(
                f"link {link.name!r} needs positive capacity, got {capacity}"
            )
        self._advance()
        link.capacity = float(capacity)
        self._reschedule()

    def cancel_prefix(self, prefix: str) -> int:
        """Drop every flow whose label starts with *prefix*.

        The cancelled flows' completion events never fire -- callers are
        expected to be interrupted out of their waits separately.  Returns
        the number of flows dropped.
        """
        if not prefix:
            return 0
        self._advance()
        dropped = [f for f in self._flows if f.label.startswith(prefix)]
        if not dropped:
            return 0
        self._flows = [f for f in self._flows if not f.label.startswith(prefix)]
        self._reschedule()
        return len(dropped)

    def utilization(self, link: Link) -> float:
        """Fraction of *link* capacity currently allocated."""
        self._advance_rates_only()
        used = sum(f.rate for f in self._flows if link in f.links)
        return min(1.0, used / link.capacity)

    # -- internals --------------------------------------------------------
    def _advance(self) -> None:
        """Credit progress to all flows for time elapsed at current rates."""
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0:
            for f in self._flows:
                f.remaining = max(0.0, f.remaining - f.rate * dt)
        self._last_update = now

    def _advance_rates_only(self) -> None:
        rates = maxmin_rates(self._flows)
        for f in self._flows:
            f.rate = rates.get(f, 0.0)

    def _reschedule(self) -> None:
        """Recompute rates and schedule the next completion."""
        self._token += 1
        token = self._token
        rates = maxmin_rates(self._flows)
        soonest: Optional[Flow] = None
        soonest_t = float("inf")
        for f in self._flows:
            f.rate = rates.get(f, 0.0)
            if f.rate > _EPS:
                t = f.remaining / f.rate
                if t < soonest_t:
                    soonest_t = t
                    soonest = f
        if soonest is None:
            if self._flows:
                raise SimulationError(
                    f"scheduler {self.name!r} has {len(self._flows)} flows but none "
                    "can make progress (all rates zero)"
                )
            return
        self.sim.call_at(self.sim.now + soonest_t, lambda: self._on_completion(token))

    def _on_completion(self, token: int) -> None:
        if token != self._token:
            return  # stale wakeup; a newer reschedule superseded it
        self._advance()
        finished = [f for f in self._flows if f.remaining <= _EPS * max(1.0, f.total)]
        if not finished:
            # Numerical slack: finish the closest flow.
            finished = [min(self._flows, key=lambda f: f.remaining)]
        for f in finished:
            self._flows.remove(f)
            self.completed_work += f.total
            self.completed_flows += 1
            f.event.succeed(self.sim.now - f.started_at)
        self._reschedule()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<FlowScheduler {self.name} active={len(self._flows)}>"


class Semaphore:
    """A counting semaphore with FIFO waiters (container slots, permits)."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "sem") -> None:
        if capacity < 1:
            raise ValueError("semaphore capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._waiters: List[tuple[int, Event]] = []

    def acquire(self, count: int = 1) -> Event:
        """Request *count* permits; the returned event fires when granted."""
        if count > self.capacity:
            raise SimulationError(
                f"requesting {count} permits from {self.name!r} (capacity {self.capacity})"
            )
        ev = self.sim.event()
        self._waiters.append((count, ev))
        self._drain()
        return ev

    def release(self, count: int = 1) -> None:
        self.in_use -= count
        if self.in_use < 0:
            raise SimulationError(f"semaphore {self.name!r} over-released")
        self._drain()

    def cancel(self, event: Event) -> bool:
        """Withdraw a not-yet-granted acquire; returns False if granted.

        A granted acquire (even one whose event has not fired yet) holds
        permits: the caller must :meth:`release` those instead.
        """
        for i, (_count, ev) in enumerate(self._waiters):
            if ev is event:
                del self._waiters[i]
                return True
        return False

    def _drain(self) -> None:
        while self._waiters:
            count, ev = self._waiters[0]
            if self.in_use + count > self.capacity:
                break
            self._waiters.pop(0)
            self.in_use += count
            ev.succeed(count)

    @property
    def available(self) -> int:
        return self.capacity - self.in_use


class Store:
    """An unbounded FIFO message store (mailboxes between components)."""

    def __init__(self, sim: Simulator, name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self._items: List[object] = []
        self._getters: List[Event] = []

    def put(self, item: object) -> None:
        self._items.append(item)
        self._drain()

    def get(self) -> Event:
        ev = self.sim.event()
        self._getters.append(ev)
        self._drain()
        return ev

    def _drain(self) -> None:
        while self._items and self._getters:
            ev = self._getters.pop(0)
            ev.succeed(self._items.pop(0))

    def __len__(self) -> int:
        return len(self._items)
