"""Shared resources: fair-shared links, semaphores, and stores.

The central abstraction is the :class:`FlowScheduler`, which models a
set of capacity-limited :class:`Link` objects carrying :class:`Flow`
objects.  Every flow traverses one or more links and optionally has a
per-flow rate cap; the scheduler allocates rates by progressive-filling
**max-min fairness**, the standard model for bandwidth sharing on
disks, NICs, and (approximately) time-shared CPUs.

Whenever a flow is added or completes, the scheduler advances every
active flow by the elapsed time at its previous rate, recomputes the
max-min allocation, and schedules a completion event for the earliest
finisher.  Stale completion events are invalidated by a token counter.

Hot-path notes
--------------
This module sits under every simulated byte and core-second, so the
scheduler keeps its bookkeeping incremental:

* per-link active-flow counts are maintained across calls (flow
  add/remove updates them) instead of being rebuilt from scratch on
  every recompute;
* the allocator writes rates in-place on :class:`Flow` objects rather
  than materialising a ``Dict[Flow, float]`` per recompute;
* an epoch counter tracks mutations (flow set or link capacities), so
  read-only consumers such as :meth:`FlowScheduler.utilization` -- the
  monitors poll it every heartbeat -- skip recomputation entirely when
  nothing changed since the last allocation;
* flow removal rebuilds the active list in one pass instead of paying
  ``list.remove`` per finished flow.

Determinism: the float arithmetic inside :func:`_fill_rates` mirrors
the original dict-returning implementation operation-for-operation, and
the active-flow list keeps strict insertion order (completion-time ties
and utilization float sums are order-sensitive), so event streams stay
byte-identical across the optimization (see
``tests/sim/test_kernel_equivalence.py``).

Complexity per recompute is ``O(iterations * (links + flows))`` with at
least one flow or link frozen per iteration; schedulers in this
repository are kept node-local (per-disk, per-CPU) or cluster-global
(network) so the active flow counts stay small.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Event

_EPS = 1e-12


class Link:
    """A capacity-limited resource (bytes/s, ops/s, core-seconds/s)."""

    __slots__ = ("name", "capacity")

    def __init__(self, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError(f"link {name!r} needs positive capacity, got {capacity}")
        self.name = name
        self.capacity = float(capacity)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Link {self.name} cap={self.capacity:g}>"


class Flow:
    """A unit of work streaming through one or more links."""

    __slots__ = ("links", "cap", "remaining", "event", "rate", "started_at", "label", "total")

    def __init__(
        self,
        links: Sequence[Link],
        amount: float,
        event: Event,
        cap: Optional[float] = None,
        label: str = "",
    ) -> None:
        self.links = tuple(links)
        self.total = float(amount)
        self.remaining = float(amount)
        self.event = event
        self.cap = float(cap) if cap is not None else float("inf")
        self.rate = 0.0
        self.started_at = 0.0
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Flow {self.label} remaining={self.remaining:g} rate={self.rate:g}>"


def _fill_rates(active: List[Flow], counts: Dict[Link, int]) -> None:
    """Progressive-filling max-min fair allocation, written in-place.

    ``active`` is only read (iteration rebinds a local); ``counts``
    (link -> number of active flows crossing it) is consumed.  Each
    iteration either freezes all flows whose cap is below the current
    water level, or freezes every flow crossing a bottleneck link, so
    the loop terminates in at most ``len(active)`` iterations.

    The float expressions here must stay operation-identical to the
    historical implementation: allocations feed completion times, and
    completion times feed the golden run digests.
    """
    cap_left: Dict[Link, float] = {link: link.capacity for link in counts}
    while active:
        # Fair share on the currently tightest link.
        water = float("inf")
        for link, n in counts.items():
            if n > 0:
                share = cap_left[link] / n
                if share < water:
                    water = share
        if water == float("inf"):  # all remaining flows traverse no links
            for f in active:
                f.rate = f.cap
            return
        threshold = water + _EPS
        frozen: List[Flow] = []
        rest: List[Flow] = []
        for f in active:
            if f.cap <= threshold:
                frozen.append(f)
            else:
                rest.append(f)
        if frozen:
            for f in frozen:
                f.rate = min(f.cap, water)
        else:
            # Freeze every flow crossing a bottleneck link.
            bottlenecks = {
                link
                for link, n in counts.items()
                if n > 0 and cap_left[link] / n <= threshold
            }
            rest = []
            for f in active:
                for lnk in f.links:
                    if lnk in bottlenecks:
                        frozen.append(f)
                        break
                else:
                    rest.append(f)
            for f in frozen:
                f.rate = water
        for f in frozen:
            r = f.rate
            for link in f.links:
                cap_left[link] = max(0.0, cap_left[link] - r)
                counts[link] -= 1
        active = rest


def maxmin_rates(flows: Sequence[Flow]) -> Dict[Flow, float]:
    """Max-min fair allocation with per-flow caps; returns flow -> rate.

    Compatibility wrapper around the in-place allocator the scheduler
    uses on its hot path: rates are *also* written to ``flow.rate`` as
    a side effect.
    """
    if not flows:
        return {}
    counts: Dict[Link, int] = {}
    for f in flows:
        for link in f.links:
            counts[link] = counts.get(link, 0) + 1
    _fill_rates(list(flows), counts)
    return {f: f.rate for f in flows}


class FlowScheduler:
    """Allocates link bandwidth across active flows, max-min fairly."""

    def __init__(self, sim: Simulator, name: str = "flows") -> None:
        self.sim = sim
        self.name = name
        #: Active flows in strict insertion order.  Order is load-bearing:
        #: completion ties fire in insertion order and utilization float
        #: sums accumulate in it, both of which feed the run digests.
        self._flows: List[Flow] = []
        #: Incremental link -> active-flow-count bookkeeping; links drop
        #: out when their count reaches zero.
        self._link_counts: Dict[Link, int] = {}
        self._last_update: float = 0.0
        self._token: int = 0  # invalidates stale completion events
        #: Mutation epoch: bumped whenever the active-flow set or a link
        #: capacity changes.  ``_rates_epoch`` records the epoch the
        #: current ``Flow.rate`` values were computed at, so read paths
        #: skip the allocator entirely while the two match.
        self._epoch: int = 1
        self._rates_epoch: int = 0
        #: Total work completed through this scheduler (diagnostics).
        self.completed_work: float = 0.0
        self.completed_flows: int = 0

    # -- public API -------------------------------------------------------
    def transfer(
        self,
        links: Sequence[Link],
        amount: float,
        cap: Optional[float] = None,
        label: str = "",
    ) -> Event:
        """Stream *amount* units through *links*; returns a completion event.

        Zero-sized transfers complete on the next calendar step.
        """
        if amount < 0:
            raise SimulationError(f"negative transfer amount {amount}")
        done = self.sim.event()
        if amount <= _EPS:
            done.succeed(0.0)
            return done
        flow = Flow(links, amount, done, cap=cap, label=label)
        flow.started_at = self.sim.now
        self._advance()
        self._flows.append(flow)
        self._track(flow)
        self._reschedule()
        return done

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def set_link_capacity(self, link: Link, capacity: float) -> None:
        """Change *link*'s capacity mid-flight (degraded / recovered hardware).

        In-flight flows keep the progress they made at the old rates; the
        allocation is recomputed from the new capacity.
        """
        if capacity <= 0:
            raise SimulationError(
                f"link {link.name!r} needs positive capacity, got {capacity}"
            )
        self._advance()
        link.capacity = float(capacity)
        self._epoch += 1
        self._reschedule()

    def cancel_prefix(self, prefix: str) -> int:
        """Drop every flow whose label starts with *prefix*.

        The cancelled flows' completion events never fire -- callers are
        expected to be interrupted out of their waits separately.  Returns
        the number of flows dropped.
        """
        if not prefix:
            return 0
        self._advance()
        dropped = [f for f in self._flows if f.label.startswith(prefix)]
        if not dropped:
            return 0
        self._flows = [f for f in self._flows if not f.label.startswith(prefix)]
        for f in dropped:
            self._untrack(f)
        self._reschedule()
        return len(dropped)

    def utilization(self, link: Link) -> float:
        """Fraction of *link* capacity currently allocated."""
        self._refresh_rates()
        used = sum(f.rate for f in self._flows if link in f.links)
        return min(1.0, used / link.capacity)

    def utilizations(self, links: Iterable[Link]) -> Tuple[float, ...]:
        """Utilization for several links in one pass over active flows.

        Equivalent to ``tuple(self.utilization(l) for l in links)`` --
        including bit-identical float sums, since per-link accumulation
        follows the same active-flow order -- but scans the flow list
        once instead of once per link.
        """
        wanted = tuple(links)
        self._refresh_rates()
        used: Dict[Link, float] = {link: 0.0 for link in wanted}
        for f in self._flows:
            r = f.rate
            for link in f.links:
                if link in used:
                    used[link] += r
        return tuple(min(1.0, used[link] / link.capacity) for link in wanted)

    # -- internals --------------------------------------------------------
    def _track(self, flow: Flow) -> None:
        """Register *flow*'s links in the incremental count bookkeeping."""
        counts = self._link_counts
        for link in flow.links:
            counts[link] = counts.get(link, 0) + 1
        self._epoch += 1

    def _untrack(self, flow: Flow) -> None:
        """Remove *flow*'s links from the incremental count bookkeeping."""
        counts = self._link_counts
        for link in flow.links:
            n = counts[link] - 1
            if n:
                counts[link] = n
            else:
                del counts[link]
        self._epoch += 1

    def _advance(self) -> None:
        """Credit progress to all flows for time elapsed at current rates."""
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0:
            for f in self._flows:
                rem = f.remaining - f.rate * dt
                f.remaining = rem if rem > 0.0 else 0.0
        self._last_update = now

    def _refresh_rates(self) -> None:
        """Bring ``Flow.rate`` values up to date; no-op when unchanged."""
        if self._rates_epoch != self._epoch:
            _fill_rates(self._flows, dict(self._link_counts))
            self._rates_epoch = self._epoch

    def _reschedule(self) -> None:
        """Recompute rates and schedule the next completion."""
        self._token += 1
        token = self._token
        self._refresh_rates()
        soonest: Optional[Flow] = None
        soonest_t = float("inf")
        for f in self._flows:
            r = f.rate
            if r > _EPS:
                t = f.remaining / r
                if t < soonest_t:
                    soonest_t = t
                    soonest = f
        if soonest is None:
            if self._flows:
                raise SimulationError(
                    f"scheduler {self.name!r} has {len(self._flows)} flows but none "
                    "can make progress (all rates zero)"
                )
            return
        self.sim.call_at(self.sim.now + soonest_t, lambda: self._on_completion(token))

    def _on_completion(self, token: int) -> None:
        if token != self._token:
            return  # stale wakeup; a newer reschedule superseded it
        self._advance()
        flows = self._flows
        finished = [f for f in flows if f.remaining <= _EPS * max(1.0, f.total)]
        if not finished:
            # Numerical slack: finish the closest flow.
            finished = [min(flows, key=lambda f: f.remaining)]
        if len(finished) == len(flows):
            self._flows = []
        else:
            done = set(finished)
            self._flows = [f for f in flows if f not in done]
        for f in finished:
            self._untrack(f)
            self.completed_work += f.total
            self.completed_flows += 1
            f.event.succeed(self.sim.now - f.started_at)
        self._reschedule()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<FlowScheduler {self.name} active={len(self._flows)}>"


class Semaphore:
    """A counting semaphore with FIFO waiters (container slots, permits)."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "sem") -> None:
        if capacity < 1:
            raise ValueError("semaphore capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Tuple[int, Event]] = deque()

    def acquire(self, count: int = 1) -> Event:
        """Request *count* permits; the returned event fires when granted."""
        if count > self.capacity:
            raise SimulationError(
                f"requesting {count} permits from {self.name!r} (capacity {self.capacity})"
            )
        ev = self.sim.event()
        self._waiters.append((count, ev))
        self._drain()
        return ev

    def release(self, count: int = 1) -> None:
        self.in_use -= count
        if self.in_use < 0:
            raise SimulationError(f"semaphore {self.name!r} over-released")
        self._drain()

    def cancel(self, event: Event) -> bool:
        """Withdraw a not-yet-granted acquire; returns False if granted.

        A granted acquire (even one whose event has not fired yet) holds
        permits: the caller must :meth:`release` those instead.
        """
        for i, (_count, ev) in enumerate(self._waiters):
            if ev is event:
                del self._waiters[i]
                return True
        return False

    def _drain(self) -> None:
        waiters = self._waiters
        while waiters:
            count, ev = waiters[0]
            if self.in_use + count > self.capacity:
                break
            waiters.popleft()
            self.in_use += count
            ev.succeed(count)

    @property
    def available(self) -> int:
        return self.capacity - self.in_use


class Store:
    """An unbounded FIFO message store (mailboxes between components)."""

    def __init__(self, sim: Simulator, name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[object] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: object) -> None:
        self._items.append(item)
        self._drain()

    def get(self) -> Event:
        ev = self.sim.event()
        self._getters.append(ev)
        self._drain()
        return ev

    def _drain(self) -> None:
        items, getters = self._items, self._getters
        while items and getters:
            ev = getters.popleft()
            ev.succeed(items.popleft())

    def __len__(self) -> int:
        return len(self._items)
