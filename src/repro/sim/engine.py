"""The event calendar and simulated clock.

The :class:`Simulator` owns a binary-heap event calendar keyed by
``(time, priority, sequence)``.  The sequence number makes event ordering
total and deterministic, which in turn makes every experiment in this
repository reproducible bit-for-bit under a fixed seed.

Hot-path notes: :meth:`Simulator.run` and
:meth:`Simulator.run_until_complete` inline the pop-and-fire loop of
:meth:`Simulator.step` with the heap bound to locals, the telemetry
event class is imported once and cached at module level (the per-event
``from ... import`` was measurable), and ``repr(event)`` is only built
when a trace or telemetry consumer actually exists.
"""

from __future__ import annotations

import heapq
import warnings
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.events import Event, Process, Timeout
    from repro.telemetry.bus import TelemetryBus


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


#: Cap on the deprecated :attr:`Simulator.trace_log`: long traced runs
#: keep only the most recent entries instead of growing without bound.
TRACE_LOG_LIMIT = 100_000

# Lazily-imported collaborator classes.  ``repro.sim.events`` and
# ``repro.telemetry.events`` both import this module, so the imports
# cannot sit at module scope; caching them here keeps the per-call
# import machinery out of the hot paths.
_EVENT_CLS = None
_TIMEOUT_CLS = None
_PROCESS_CLS = None
_SIM_EVENT_EXECUTED_CLS = None


def _event_classes():
    global _EVENT_CLS, _TIMEOUT_CLS, _PROCESS_CLS
    if _EVENT_CLS is None:
        from repro.sim.events import Event, Process, Timeout

        _EVENT_CLS, _TIMEOUT_CLS, _PROCESS_CLS = Event, Timeout, Process
    return _EVENT_CLS, _TIMEOUT_CLS, _PROCESS_CLS


def _sim_event_executed_cls():
    global _SIM_EVENT_EXECUTED_CLS
    if _SIM_EVENT_EXECUTED_CLS is None:
        from repro.telemetry.events import SimEventExecuted

        _SIM_EVENT_EXECUTED_CLS = SimEventExecuted
    return _SIM_EVENT_EXECUTED_CLS


# The trace= deprecation fires once per process, not once per Simulator:
# replica fan-outs construct thousands of simulators, and a warning per
# construction both floods output and defeats ``-W error`` triage.
_TRACE_DEPRECATION_EMITTED = False


def _warn_trace_deprecated() -> None:
    global _TRACE_DEPRECATION_EMITTED
    if _TRACE_DEPRECATION_EMITTED:
        return
    _TRACE_DEPRECATION_EMITTED = True
    warnings.warn(
        "Simulator(trace=True) is deprecated; attach a TelemetryBus "
        "and subscribe to the 'sim' category instead",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_trace_deprecation() -> None:
    """Re-arm the once-per-process trace= warning (test helper)."""
    global _TRACE_DEPRECATION_EMITTED
    _TRACE_DEPRECATION_EMITTED = False


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    trace:
        Deprecated.  When true, every executed event is appended to
        :attr:`trace_log` as ``(time, description)``, keeping at most
        :data:`TRACE_LOG_LIMIT` entries.  Attach a
        :class:`~repro.telemetry.bus.TelemetryBus` with a subscriber on
        the ``"sim"`` category instead (see :meth:`attach_telemetry`).
    """

    def __init__(self, trace: bool = False) -> None:
        self._now: float = 0.0
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq: int = 0
        self._running = False
        if trace:
            _warn_trace_deprecated()
        self.trace = trace
        self.trace_log: Deque[tuple[float, str]] = deque(maxlen=TRACE_LOG_LIMIT)
        #: Number of events executed so far (diagnostic counter).
        self.events_executed: int = 0
        #: The attached telemetry bus, or ``None`` (the default): every
        #: layer reaches the bus through ``sim.telemetry``, and emission
        #: sites reduce to a pointer check when nothing is attached.
        self.telemetry: Optional["TelemetryBus"] = None

    def attach_telemetry(self, bus: "TelemetryBus") -> None:
        """Attach *bus* as this simulator's telemetry bus."""
        self.telemetry = bus

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, event: "Event", delay: float = 0.0, priority: int = 0) -> None:
        """Schedule *event* to fire ``delay`` seconds from now.

        Negative delays are rejected: the calendar never travels back in
        time.  ``priority`` breaks ties at equal timestamps (lower runs
        first); the insertion sequence breaks any remaining ties.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay!r})")
        if event.scheduled:
            raise SimulationError(f"event {event!r} is already scheduled")
        event.scheduled = True
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def timeout(self, delay: float, value: Any = None) -> "Timeout":
        """Return a :class:`Timeout` event firing after *delay* seconds."""
        return _event_classes()[1](self, delay, value)

    def event(self) -> "Event":
        """Return a fresh, untriggered :class:`Event`."""
        return _event_classes()[0](self)

    def process(
        self, generator: Generator["Event", Any, Any], name: Optional[str] = None
    ) -> "Process":
        """Wrap *generator* in a :class:`Process` and start it immediately."""
        proc = _event_classes()[2](self, generator, name=name)
        tel = self.telemetry
        if tel is not None and tel.sim_events_wanted:
            from repro.telemetry.events import ProcessFinished, ProcessStarted

            tel.emit(ProcessStarted(time=self._now, name=proc.name))
            proc.callbacks.append(
                lambda ev: tel.emit(
                    ProcessFinished(time=self._now, name=proc.name, failed=ev.failed)
                )
            )
        return proc

    def call_at(self, when: float, fn: Callable[[], None]) -> "Event":
        """Invoke *fn* at absolute simulated time *when* (>= now)."""
        if when < self._now:
            raise SimulationError(f"call_at({when}) is in the past (now={self._now})")
        ev = self.timeout(when - self._now)
        ev.callbacks.append(lambda _ev: fn())
        return ev

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(self, when: float, event: "Event") -> None:
        """Bookkeeping + firing for one live event (clock already popped)."""
        self._now = when
        self.events_executed += 1
        if self.trace:
            self.trace_log.append((when, repr(event)))
        tel = self.telemetry
        if tel is not None and tel.sim_events_wanted:
            tel.emit(_sim_event_executed_cls()(time=when, description=repr(event)))
        event.fire()

    def step(self) -> bool:
        """Execute the next event.  Returns False when the calendar is empty."""
        queue = self._queue
        while queue:
            when, _prio, _seq, event = heapq.heappop(queue)
            if event.cancelled:
                continue
            self._execute(when, event)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the calendar is
            left intact, and ``now`` is set to ``until``).  ``None``
            drains the calendar.
        max_events:
            Safety valve against runaway simulations.

        Returns
        -------
        float
            The simulated time at which execution stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        heappop = heapq.heappop
        queue = self._queue
        execute = self._execute
        try:
            executed = 0
            while queue:
                if until is not None and queue[0][0] > until:
                    self._now = until
                    break
                # Inlined step(): pop until one live event fires.
                fired = False
                while queue:
                    when, _prio, _seq, event = heappop(queue)
                    if event.cancelled:
                        continue
                    execute(when, event)
                    fired = True
                    break
                if not fired:
                    break
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a runaway simulation"
                    )
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_until_complete(self, event: "Event", max_events: int = 50_000_000) -> Any:
        """Run until *event* has fired, then return its value.

        Raises the event's exception if it failed, and
        :class:`SimulationError` if the calendar drains first.
        """
        heappop = heapq.heappop
        queue = self._queue
        execute = self._execute
        executed = 0
        while not event.triggered:
            # Inlined step(): pop until one live event fires.
            fired = False
            while queue:
                when, _prio, _seq, popped = heappop(queue)
                if popped.cancelled:
                    continue
                execute(when, popped)
                fired = True
                break
            if not fired:
                raise SimulationError(
                    f"event calendar drained before {event!r} triggered"
                )
            executed += 1
            if executed > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        if event.failed:
            raise event.exception  # type: ignore[misc]
        return event.value

    @property
    def pending_events(self) -> int:
        """Number of events still on the calendar (including cancelled)."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Simulator now={self._now:.3f} pending={len(self._queue)}>"
