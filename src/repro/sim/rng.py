"""Deterministic random-stream management.

Every stochastic choice in the repository draws from a named
:class:`numpy.random.Generator` stream derived from a single experiment
seed.  Naming the streams (``"lhs"``, ``"placement"``, ``"noise"``, ...)
decouples them: adding draws to one subsystem does not perturb another,
which keeps A/B experiment comparisons honest.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a child seed from *root_seed* and a path of names.

    Uses SHA-256 over the textual path so the mapping is stable across
    Python versions and platforms (unlike ``hash()``).
    """
    payload = repr((int(root_seed),) + tuple(str(n) for n in names)).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """A registry of independent named random streams under one root seed."""

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, *names: object) -> np.random.Generator:
        """Return (and memoize) the generator for the named stream."""
        key = "/".join(str(n) for n in names)
        gen = self._streams.get(key)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.root_seed, key))
            self._streams[key] = gen
        return gen

    def child(self, *names: object) -> "RngRegistry":
        """Return a registry rooted at a derived seed (for sub-experiments)."""
        return RngRegistry(derive_seed(self.root_seed, *names))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<RngRegistry seed={self.root_seed} streams={len(self._streams)}>"
