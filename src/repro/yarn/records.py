"""YARN protocol records: resources, priorities, container requests."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

MB = 1024 * 1024


class Priority:
    """Request priorities (lower value = more urgent), as in MRAppMaster."""

    AM = 0
    REDUCE = 10
    MAP = 20


@dataclass(frozen=True)
class Resource:
    """A memory/vcore pair -- the unit YARN schedules."""

    memory_bytes: int
    vcores: int

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0 or self.vcores <= 0:
            raise ValueError(f"invalid resource {self.memory_bytes}B/{self.vcores}vc")

    @classmethod
    def of_mb(cls, memory_mb: int, vcores: int) -> "Resource":
        return cls(int(memory_mb) * MB, int(vcores))

    def fits_in(self, memory_bytes: int, vcores: int) -> bool:
        return self.memory_bytes <= memory_bytes and self.vcores <= vcores


_request_ids = itertools.count(1)


@dataclass
class ContainerRequest:
    """One outstanding ask for a container.

    ``preferred_nodes`` encodes data locality (the map split's replica
    hosts); an empty tuple means "anywhere".
    """

    app_id: str
    resource: Resource
    priority: int = Priority.MAP
    preferred_nodes: Tuple[int, ...] = ()
    #: Nodes the application refuses (Hadoop-style per-app blacklist and
    #: speculation's "not where the original attempt runs").  Ignored when
    #: honouring it would leave no usable node at all.
    blacklisted_nodes: Tuple[int, ...] = ()
    tag: Optional[object] = None  # typically an attempt-scoped flow prefix
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Request #{self.request_id} app={self.app_id} "
            f"{self.resource.memory_bytes // MB}MB/{self.resource.vcores}vc "
            f"prio={self.priority} tag={self.tag}>"
        )
