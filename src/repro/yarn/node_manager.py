"""Node managers: per-node container execution and slave monitoring."""

from __future__ import annotations

from typing import Callable, Dict, Generator, List

from repro.cluster.container import Container, ContainerState
from repro.cluster.node import Node
from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Event, Process


class NodeManager:
    """Runs containers on one node and samples its resource state.

    MRONLINE's slave components (monitor + configurator threads) hook in
    here; see :class:`repro.monitor.slave_monitor.SlaveMonitor` and
    :class:`repro.core.configurator.SlaveConfigurator`.
    """

    def __init__(self, sim: Simulator, node: Node) -> None:
        self.sim = sim
        self.node = node
        self._running: Dict[int, Process] = {}
        #: Completed-container observers (e.g. monitors).
        self.on_container_finished: List[Callable[[Container], None]] = []

    def launch(self, container: Container, task: Generator[Event, object, object]) -> Process:
        """Start *task* inside *container*; returns the task process."""
        if container.node is not self.node:
            raise SimulationError(
                f"{container!r} belongs to {container.node.hostname}, "
                f"not {self.node.hostname}"
            )
        if container.state is not ContainerState.ALLOCATED:
            raise SimulationError(f"cannot launch into {container!r}")
        container.state = ContainerState.RUNNING
        process = self.sim.process(task, name=f"container-{container.container_id}")

        def _done(_ev: Event) -> None:
            container.state = ContainerState.COMPLETED
            self._running.pop(container.container_id, None)
            for observer in self.on_container_finished:
                observer(container)

        process.add_callback(_done)
        self._running[container.container_id] = process
        return process

    @property
    def running_containers(self) -> int:
        return len(self._running)

    # -- monitoring hooks ---------------------------------------------------
    def cpu_utilization(self) -> float:
        return self.node.cpu_utilization()

    def memory_utilization(self) -> float:
        return self.node.memory_utilization()
