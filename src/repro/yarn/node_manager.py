"""Node managers: per-node container execution and slave monitoring."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Generator, List, Optional

from repro.cluster.container import Container, ContainerState
from repro.cluster.node import Node
from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Event, Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.network import Network
    from repro.yarn.resource_manager import ResourceManager

#: How often a live NodeManager reports to the resource manager.
HEARTBEAT_INTERVAL = 3.0


class KillReason:
    """Why a container was killed; carried as the interrupt cause.

    ``kind`` feeds :attr:`TaskStats.failure_kind` so the tuner can tell
    environmental failures (preemption, node loss) apart from
    config-induced ones (OOM).
    """

    __slots__ = ("kind", "detail")

    def __init__(self, kind: str, detail: str = "") -> None:
        self.kind = kind
        self.detail = detail

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<KillReason {self.kind}: {self.detail}>"


class NodeManager:
    """Runs containers on one node and samples its resource state.

    MRONLINE's slave components (monitor + configurator threads) hook in
    here; see :class:`repro.monitor.slave_monitor.SlaveMonitor` and
    :class:`repro.core.configurator.SlaveConfigurator`.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        network: Optional["Network"] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.network = network
        self.decommissioned = False
        #: Graceful-drain state (elastic decommission / preemption
        #: notice): no new launches are accepted, but running containers
        #: keep executing and the heartbeat loop stays up until the node
        #: actually departs.
        self.draining = False
        self._running: Dict[int, Process] = {}
        self._container_of: Dict[int, Container] = {}
        #: Completed-container observers (e.g. monitors).
        self.on_container_finished: List[Callable[[Container], None]] = []
        #: Diagnostics: containers killed on this node, by reason kind.
        self.kills: Dict[str, int] = {}

    def launch(self, container: Container, task: Generator[Event, object, object]) -> Process:
        """Start *task* inside *container*; returns the task process."""
        if container.node is not self.node:
            raise SimulationError(
                f"{container!r} belongs to {container.node.hostname}, "
                f"not {self.node.hostname}"
            )
        if container.state is not ContainerState.ALLOCATED:
            raise SimulationError(f"cannot launch into {container!r}")
        if self.decommissioned:
            raise SimulationError(
                f"{self.node.hostname} is decommissioned; cannot launch {container!r}"
            )
        if self.draining:
            raise SimulationError(
                f"{self.node.hostname} is draining; cannot launch {container!r}"
            )
        container.state = ContainerState.RUNNING
        process = self.sim.process(task, name=f"container-{container.container_id}")

        def _done(_ev: Event) -> None:
            container.state = ContainerState.COMPLETED
            self._running.pop(container.container_id, None)
            self._container_of.pop(container.container_id, None)
            for observer in self.on_container_finished:
                observer(container)

        process.add_callback(_done)
        self._running[container.container_id] = process
        self._container_of[container.container_id] = container
        return process

    # -- kills --------------------------------------------------------------
    def kill_container(self, container: Container, reason: KillReason) -> bool:
        """Kill a running container: stop its flows, interrupt its task."""
        process = self._running.get(container.container_id)
        if process is None or process.triggered:
            return False
        if container.tag is not None:
            prefix = str(container.tag)
            self.node.cancel_task_flows(prefix)
            if self.network is not None:
                self.network.scheduler.cancel_prefix(prefix)
        self.kills[reason.kind] = self.kills.get(reason.kind, 0) + 1
        tel = self.sim.telemetry
        if tel is not None and tel.wants("yarn"):
            from repro.telemetry.events import ContainerKilled

            tel.emit(
                ContainerKilled(
                    time=self.sim.now,
                    node_id=self.node.node_id,
                    container_id=container.container_id,
                    reason=reason.kind,
                    detail=reason.detail,
                )
            )
            tel.increment("yarn.containers_killed")
        process.interrupt(reason)
        return True

    def kill_some(self, count: int, reason: KillReason) -> int:
        """Kill up to *count* running containers (oldest grants first)."""
        victims = sorted(self._container_of.values(), key=lambda c: c.container_id)
        killed = 0
        for container in victims:
            if killed >= count:
                break
            if self.kill_container(container, reason):
                killed += 1
        return killed

    def kill_all(self, reason: KillReason) -> int:
        return self.kill_some(len(self._container_of), reason)

    def decommission(self, reason: KillReason) -> int:
        """Mark the node unusable and kill everything still running on it."""
        self.decommissioned = True
        return self.kill_all(reason)

    def drain(self) -> None:
        """Stop accepting new containers; running tasks finish undisturbed."""
        self.draining = True

    # -- heartbeats ---------------------------------------------------------
    def start_heartbeats(self, rm: "ResourceManager") -> Process:
        """Report liveness to *rm* every :data:`HEARTBEAT_INTERVAL` seconds.

        The loop stops as soon as the node dies -- a crashed NodeManager
        simply goes silent, and the RM notices through expiry.
        """
        return self.sim.process(self._heartbeat_loop(rm), name=f"{self.node.hostname}-hb")

    def _heartbeat_loop(self, rm: "ResourceManager") -> Generator[Event, object, None]:
        while self.node.alive and not self.decommissioned:
            rm.node_heartbeat(self.node.node_id)
            yield self.sim.timeout(HEARTBEAT_INTERVAL)

    @property
    def running_containers(self) -> int:
        return len(self._running)

    # -- monitoring hooks ---------------------------------------------------
    def cpu_utilization(self) -> float:
        return self.node.cpu_utilization()

    def memory_utilization(self) -> float:
        return self.node.memory_utilization()
