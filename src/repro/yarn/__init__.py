"""The YARN model: resource manager, schedulers, node managers, app master.

MRONLINE's enabling system hook is YARN's container abstraction with
*variable-sized* allocations (Section 4): the scheduler here supports a
different memory/vcore grant per request, FIFO-with-priorities and
fair-share policies, and locality-preferring placement.
"""

from repro.yarn.app_master import LaunchGate, MRAppMaster, WaveGate
from repro.yarn.fair_scheduler import FairScheduler
from repro.yarn.node_manager import NodeManager
from repro.yarn.records import ContainerRequest, Priority, Resource
from repro.yarn.resource_manager import ResourceManager
from repro.yarn.scheduler import FifoScheduler, SchedulerBase

__all__ = [
    "ContainerRequest",
    "FairScheduler",
    "FifoScheduler",
    "LaunchGate",
    "MRAppMaster",
    "NodeManager",
    "Priority",
    "Resource",
    "ResourceManager",
    "SchedulerBase",
    "WaveGate",
]
