"""Container scheduling policies.

The base class holds the request book-keeping -- including the
hash-map-of-sizes structure the paper adds so that *different-sized*
container requests coexist (Section 4) -- and the placement logic
(data-local, then rack-local, then least-loaded).  Policies differ only
in which pending request gets the next available slot.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.yarn.records import ContainerRequest, Resource


class SchedulerBase:
    """Request queue + placement; subclasses choose the ordering."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._pending: List[ContainerRequest] = []
        #: The paper's "hash map data structure to keep track of the
        #: different-sized containers requested" -- resource -> count.
        self.requested_sizes: Dict[Resource, int] = defaultdict(int)
        self._app_weight: Dict[str, float] = {}
        #: app -> currently allocated memory bytes (fair-share bookkeeping).
        self.app_memory_usage: Dict[str, int] = defaultdict(int)
        #: Nodes the resource manager has declared lost (heartbeat expiry);
        #: they receive no further containers.
        self._lost_nodes: Set[int] = set()
        #: Nodes gracefully draining (decommission / preemption notice):
        #: still alive and finishing their running work, but excluded
        #: from every new placement.
        self._draining_nodes: Set[int] = set()

    # ------------------------------------------------------------------
    # App lifecycle
    # ------------------------------------------------------------------
    def add_app(self, app_id: str, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError("app weight must be positive")
        self._app_weight[app_id] = weight

    def set_app_weight(self, app_id: str, weight: float) -> bool:
        """Re-weight a live app's fair share mid-run.

        This is the service-level preemption mechanism: instead of
        killing containers, a job being preempted is down-weighted so
        every future allocation favors the starved tenant, and the
        victim finishes on the containers it already holds (Hadoop's
        "preemption without kill").  Returns False when the app has
        already completed (re-weighting then is a harmless no-op race).
        """
        if weight <= 0:
            raise ValueError("app weight must be positive")
        if app_id not in self._app_weight:
            return False
        self._app_weight[app_id] = weight
        return True

    def remove_app(self, app_id: str) -> None:
        self._app_weight.pop(app_id, None)
        self.app_memory_usage.pop(app_id, None)
        removed = [r for r in self._pending if r.app_id == app_id]
        for r in removed:
            self.requested_sizes[r.resource] -= 1
        self._pending = [r for r in self._pending if r.app_id != app_id]

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def enqueue(self, request: ContainerRequest) -> None:
        if request.app_id not in self._app_weight:
            raise KeyError(f"unknown app {request.app_id!r}")
        self._pending.append(request)
        self.requested_sizes[request.resource] += 1

    def cancel(self, request: ContainerRequest) -> bool:
        try:
            self._pending.remove(request)
        except ValueError:
            return False
        self.requested_sizes[request.resource] -= 1
        return True

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # Accounting (driven by the resource manager)
    # ------------------------------------------------------------------
    def on_allocated(self, app_id: str, resource: Resource) -> None:
        self.app_memory_usage[app_id] += resource.memory_bytes

    def on_released(self, app_id: str, resource: Resource) -> None:
        self.app_memory_usage[app_id] -= resource.memory_bytes
        if self.app_memory_usage[app_id] < 0:
            raise RuntimeError(f"negative usage for app {app_id!r}")

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def mark_node_lost(self, node_id: int) -> None:
        """Exclude *node_id* from all future placements."""
        self._lost_nodes.add(node_id)
        self._draining_nodes.discard(node_id)

    def is_node_lost(self, node_id: int) -> bool:
        return node_id in self._lost_nodes

    def mark_node_draining(self, node_id: int) -> None:
        """Exclude *node_id* from new placements while it drains.

        Unlike :meth:`mark_node_lost` the node is still healthy --
        running containers finish normally -- but a decommissioning or
        preemption-noticed node must not receive fresh work.
        """
        self._draining_nodes.add(node_id)

    def is_node_draining(self, node_id: int) -> bool:
        return node_id in self._draining_nodes

    def schedulable_nodes(self) -> List[Node]:
        """Nodes eligible for new placements (neither lost nor draining)."""
        return [
            n
            for n in self.cluster.nodes
            if n.node_id not in self._lost_nodes
            and n.node_id not in self._draining_nodes
        ]

    def find_node(self, request: ContainerRequest) -> Optional[Node]:
        """Pick a node for *request*: data-local > rack-local > emptiest.

        Lost and draining nodes are never used.  A request's blacklist
        is honoured unless it covers every remaining live node, in which
        case it is ignored entirely (Hadoop's AMs likewise release their
        blacklist rather than deadlock the job) -- the live set here
        already excludes lost *and* draining nodes, so blacklisting can
        never deadlock scheduling even after churn shrinks the cluster.
        """
        res = request.resource
        live = self.schedulable_nodes()
        blocked = set(request.blacklisted_nodes)
        if blocked and any(n.node_id not in blocked for n in live):
            live = [n for n in live if n.node_id not in blocked]
        fits = [n for n in live if n.can_fit(res.memory_bytes, res.vcores)]
        if not fits:
            return None
        if request.preferred_nodes:
            preferred = set(request.preferred_nodes)
            local = [n for n in fits if n.node_id in preferred]
            if local:
                return min(local, key=lambda n: n.yarn_memory_used)
            racks = {
                self.cluster.node(nid).rack
                for nid in preferred
                if nid < len(self.cluster.nodes)
            }
            rack_local = [n for n in fits if n.rack in racks]
            if rack_local:
                return min(rack_local, key=lambda n: n.yarn_memory_used)
        return min(fits, key=lambda n: n.yarn_memory_used)

    # ------------------------------------------------------------------
    # Policy hook
    # ------------------------------------------------------------------
    def assign_once(self) -> Optional[Tuple[ContainerRequest, Node]]:
        """Pick one (request, node) assignment, or None if nothing fits."""
        raise NotImplementedError

    def _take(self, request: ContainerRequest, node: Node) -> Tuple[ContainerRequest, Node]:
        self._pending.remove(request)
        self.requested_sizes[request.resource] -= 1
        return request, node


class FifoScheduler(SchedulerBase):
    """Priority-then-arrival order, as YARN's default queue behaves.

    Within a priority level requests are served in arrival order;
    requests that don't currently fit are skipped rather than blocking
    the queue (YARN heartbeats likewise skip unsatisfiable asks).
    """

    def assign_once(self) -> Optional[Tuple[ContainerRequest, Node]]:
        for request in sorted(self._pending, key=lambda r: (r.priority, r.request_id)):
            node = self.find_node(request)
            if node is not None:
                return self._take(request, node)
        return None
