"""Fair-share scheduling for multi-tenant experiments (Section 8.5).

Each allocation goes to the app with the smallest weighted memory
share, mirroring the fair scheduler the paper runs Terasort + BBP
under.  Within an app, requests follow priority-then-arrival order.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cluster.node import Node
from repro.yarn.records import ContainerRequest
from repro.yarn.scheduler import SchedulerBase


class FairScheduler(SchedulerBase):
    """Weighted fair sharing by allocated memory."""

    def _app_share(self, app_id: str) -> float:
        weight = self._app_weight.get(app_id, 1.0)
        return self.app_memory_usage.get(app_id, 0) / weight

    def assign_once(self) -> Optional[Tuple[ContainerRequest, Node]]:
        # Under elastic churn the whole live set can momentarily be
        # draining (e.g. a preemption notice on the last free node);
        # bail out before the per-app scan rather than probing every
        # pending request against an empty cluster.  Shares themselves
        # need no rebalancing on a capacity change: they are relative
        # (usage / weight), so the most-starved ordering is invariant
        # under the cluster growing or shrinking.
        if not self._pending or not self.schedulable_nodes():
            return None
        # Apps with pending requests, most-starved first.
        apps = sorted(
            {r.app_id for r in self._pending},
            key=lambda a: (self._app_share(a), a),
        )
        for app_id in apps:
            requests = sorted(
                (r for r in self._pending if r.app_id == app_id),
                key=lambda r: (r.priority, r.request_id),
            )
            for request in requests:
                node = self.find_node(request)
                if node is not None:
                    return self._take(request, node)
        return None
