"""The MapReduce application master.

Runs one job: spawns a lifecycle process per task, requests
appropriately sized containers (per-task configuration!), enforces
slowstart and reduce ramp-up, retries failed attempts, and aggregates
counters.

Two seams let MRONLINE plug in without the AM knowing about tuning:

* a **config provider** is consulted for every task attempt's
  configuration (the dynamic configurator's per-task table sits behind
  it), and
* a **launch gate** controls when a task may be requested.  The default
  gate admits immediately (conservative tuning "does not interrupt the
  application task scheduling sequence"); the :class:`WaveGate`
  implements aggressive tuning's hold-the-next-wave behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Protocol

import numpy as np

from repro.cluster.topology import Cluster
from repro.core import parameters as P
from repro.core.configuration import Configuration, enforce_dependencies
from repro.hdfs.filesystem import HdfsFileSystem
from repro.mapreduce.counters import Counter, Counters
from repro.mapreduce.dataflow import JobDataflow
from repro.mapreduce.jobspec import JobSpec, TaskId, TaskType
from repro.mapreduce.map_task import run_map_task
from repro.mapreduce.reduce_task import run_reduce_task
from repro.mapreduce.shuffle import MapOutputCatalog
from repro.mapreduce.task_context import TaskContext
from repro.monitor.statistics import TaskStats
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.resources import Semaphore
from repro.yarn.node_manager import NodeManager
from repro.yarn.records import ContainerRequest, Priority, Resource
from repro.yarn.resource_manager import ResourceManager

MAX_TASK_ATTEMPTS = 2
#: Fraction of cluster memory reduce containers may occupy while maps
#: are still pending (MRAppMaster's reduce ramp-up limit).
REDUCE_RAMPUP_LIMIT = 0.5


class ConfigProvider(Protocol):
    """Source of per-task configurations (Table-1 seam)."""

    def task_config(self, spec: JobSpec, task_id: TaskId) -> Configuration: ...


class BaseConfigProvider:
    """Every task runs the job's base configuration (vanilla YARN)."""

    def task_config(self, spec: JobSpec, task_id: TaskId) -> Configuration:
        return spec.base_config


class LaunchGate:
    """Default gate: admit every task immediately (wave = -1)."""

    def admit(self, task_type: TaskType, sim: Simulator) -> Event:
        ev = sim.event()
        ev.succeed(-1)
        return ev

    def task_completed(self, task_type: TaskType) -> None:
        pass


@dataclass
class _WaveState:
    wave_size: int
    wave: int = 0
    admitted: int = 0
    outstanding: int = 0
    queue: List[Event] = field(default_factory=list)


class WaveGate(LaunchGate):
    """Admit tasks in fixed-size waves; hold wave k+1 until k finishes.

    This is the aggressive strategy's "wave pattern for invoking
    parameter changes" (Section 6.1): the tuner sees the complete
    statistics of a wave before the next wave's tasks ask for their
    configurations.
    """

    def __init__(self, map_wave_size: int, reduce_wave_size: Optional[int] = None) -> None:
        if map_wave_size < 1:
            raise ValueError("wave size must be >= 1")
        self._states: Dict[TaskType, _WaveState] = {
            TaskType.MAP: _WaveState(map_wave_size),
            TaskType.REDUCE: _WaveState(reduce_wave_size or map_wave_size),
        }

    def admit(self, task_type: TaskType, sim: Simulator) -> Event:
        st = self._states[task_type]
        ev = sim.event()
        if st.admitted < st.wave_size:
            st.admitted += 1
            st.outstanding += 1
            ev.succeed(st.wave)
        else:
            st.queue.append(ev)
        return ev

    def task_completed(self, task_type: TaskType) -> None:
        st = self._states[task_type]
        st.outstanding -= 1
        if st.outstanding == 0 and st.queue:
            st.wave += 1
            st.admitted = 0
            while st.queue and st.admitted < st.wave_size:
                ev = st.queue.pop(0)
                st.admitted += 1
                st.outstanding += 1
                ev.succeed(st.wave)

    def current_wave(self, task_type: TaskType) -> int:
        return self._states[task_type].wave


@dataclass
class JobResult:
    """Outcome of one job run."""

    job_id: str
    succeeded: bool
    start_time: float
    end_time: float
    counters: Counters
    task_stats: List[TaskStats]

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def stats_of(self, task_type: TaskType) -> List[TaskStats]:
        return [s for s in self.task_stats if s.task_type is task_type]


class MRAppMaster:
    """Per-job orchestration (YARN delegates task tracking to us)."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        hdfs: HdfsFileSystem,
        rm: ResourceManager,
        node_managers: Dict[int, NodeManager],
        spec: JobSpec,
        config_provider: Optional[ConfigProvider] = None,
        gate: Optional[LaunchGate] = None,
        rng: Optional[np.random.Generator] = None,
        app_weight: float = 1.0,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.hdfs = hdfs
        self.rm = rm
        self.node_managers = node_managers
        self.spec = spec
        self.provider: ConfigProvider = config_provider or BaseConfigProvider()
        self.gate = gate or LaunchGate()
        self.app_weight = app_weight

        input_file = hdfs.get(spec.input_path)
        self.dataflow = JobDataflow(spec, input_file, rng=rng)
        self.catalog = MapOutputCatalog(
            sim, self.dataflow.num_maps, self.dataflow.num_reducers
        )
        self.ctx = TaskContext(sim, cluster, hdfs, spec, self.dataflow, self.catalog)
        self._input_file = input_file

        self.completion: Event = sim.event()
        self.counters = Counters()
        self.task_stats: List[TaskStats] = []
        self.stats_listeners: List[Callable[[TaskStats], None]] = []

        self._start_time: float = 0.0
        self._completed_maps = 0
        self._map_lifecycles_done = 0
        self._completed_reduces = 0
        self._lifecycles_done = 0
        self._permanent_failures = 0
        self._reduces_started = False
        self._reduce_mem_outstanding = 0
        self._headroom_waiters: List[Event] = []
        self._started = False
        # Keep at most ~half a wave of container requests outstanding per
        # task type.  Configurations are resolved at request time, so a
        # bounded pipeline is what makes category-2 parameters (container
        # size!) tunable mid-job: requests made a whole job in advance
        # would freeze the sizing at submission-time values.  Half a wave
        # keeps the scheduler fed while letting tuning reach tasks within
        # the same wave in shared (multi-tenant) clusters.
        depth = max(16, cluster.total_yarn_memory // (2 * 1024 * 1024 * 1024))
        self._request_tokens: Dict[TaskType, Semaphore] = {
            TaskType.MAP: Semaphore(sim, depth, name=f"{spec.job_id}-mreq"),
            TaskType.REDUCE: Semaphore(sim, depth, name=f"{spec.job_id}-rreq"),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Event:
        """Submit the job; returns the completion event."""
        if self._started:
            raise RuntimeError("job already started")
        self._started = True
        self._start_time = self.sim.now
        self.rm.register_app(self.spec.job_id, weight=self.app_weight)
        for index in range(self.dataflow.num_maps):
            self.sim.process(
                self._map_lifecycle(index), name=f"{self.spec.job_id}-m{index}"
            )
        if self._slowstart_threshold() == 0:
            self._start_reduces()
        return self.completion

    def _slowstart_threshold(self) -> int:
        import math

        return math.ceil(self.spec.slowstart * self.dataflow.num_maps)

    # ------------------------------------------------------------------
    # Task configuration
    # ------------------------------------------------------------------
    def _task_config(self, task_id: TaskId) -> Configuration:
        cfg = self.provider.task_config(self.spec, task_id)
        if getattr(self.provider, "provides_feasible_configs", False):
            return cfg
        return enforce_dependencies(cfg)

    def _launch_config(self, task_id: TaskId, requested: Configuration) -> Configuration:
        """Refresh the configuration when the container actually starts.

        Providers with a launch-time view (the dynamic configurator's
        slave side) may hand the task fresher values than what sized the
        container request; others keep the requested configuration.
        """
        refresh = getattr(self.provider, "task_launch_config", None)
        if refresh is None:
            return requested
        return refresh(self.spec, task_id, requested)

    def _fallback_config(self, task_id: TaskId) -> Configuration:
        """Second attempts run the job's base configuration, clamped."""
        return enforce_dependencies(self.spec.base_config)

    # ------------------------------------------------------------------
    # Map tasks
    # ------------------------------------------------------------------
    def _map_lifecycle(self, index: int) -> Generator[Event, object, None]:
        task_id = self.spec.map_task_id(index)
        block = self._input_file.blocks[index]
        stats: Optional[TaskStats] = None
        for attempt in range(1, MAX_TASK_ATTEMPTS + 1):
            wave = yield self.gate.admit(TaskType.MAP, self.sim)
            yield self._request_tokens[TaskType.MAP].acquire()
            config = (
                self._task_config(task_id)
                if attempt == 1
                else self._fallback_config(task_id)
            )
            resource = Resource.of_mb(
                int(config[P.MAP_MEMORY_MB]), int(config[P.MAP_CPU_VCORES])
            )
            request = ContainerRequest(
                app_id=self.spec.job_id,
                resource=resource,
                priority=Priority.MAP,
                preferred_nodes=tuple(loc.node_id for loc in block.locations),
                tag=task_id,
            )
            container = yield self.rm.allocate(request)
            self._request_tokens[TaskType.MAP].release()
            config = self._launch_config(task_id, config)
            nm = self.node_managers[container.node.node_id]
            proc = nm.launch(
                container,
                run_map_task(self.ctx, index, block, container, config, attempt, wave),
            )
            stats = yield proc
            self.rm.release_container(container)
            self._record(stats)
            self.gate.task_completed(TaskType.MAP)
            self._poke_headroom()
            if not stats.failed:
                break
        assert stats is not None
        self._map_lifecycles_done += 1
        if stats.failed:
            self._permanent_failures += 1
            # Reducers must not wait forever for this map's output.
            self.catalog.mark_all_maps_done()
        else:
            self._completed_maps += 1
        if not self._reduces_started and (
            self._completed_maps >= self._slowstart_threshold()
            # Every map lifecycle has ended (some permanently failed):
            # slowstart can never be met, so let the reducers drain what
            # exists rather than deadlocking the job.
            or self._map_lifecycles_done >= self.dataflow.num_maps
        ):
            self._start_reduces()
        self._lifecycle_finished()

    # ------------------------------------------------------------------
    # Reduce tasks
    # ------------------------------------------------------------------
    def _start_reduces(self) -> None:
        if self._reduces_started:
            return
        self._reduces_started = True
        for index in range(self.dataflow.num_reducers):
            self.sim.process(
                self._reduce_lifecycle(index), name=f"{self.spec.job_id}-r{index}"
            )

    def _reduce_lifecycle(self, index: int) -> Generator[Event, object, None]:
        task_id = self.spec.reduce_task_id(index)
        stats: Optional[TaskStats] = None
        for attempt in range(1, MAX_TASK_ATTEMPTS + 1):
            wave = yield self.gate.admit(TaskType.REDUCE, self.sim)
            yield self._request_tokens[TaskType.REDUCE].acquire()
            config = (
                self._task_config(task_id)
                if attempt == 1
                else self._fallback_config(task_id)
            )
            resource = Resource.of_mb(
                int(config[P.REDUCE_MEMORY_MB]), int(config[P.REDUCE_CPU_VCORES])
            )
            yield from self._await_reduce_headroom(resource.memory_bytes)
            request = ContainerRequest(
                app_id=self.spec.job_id,
                resource=resource,
                priority=Priority.REDUCE,
                tag=task_id,
            )
            container = yield self.rm.allocate(request)
            self._request_tokens[TaskType.REDUCE].release()
            config = self._launch_config(task_id, config)
            nm = self.node_managers[container.node.node_id]
            proc = nm.launch(
                container,
                run_reduce_task(self.ctx, index, container, config, attempt, wave),
            )
            stats = yield proc
            self.rm.release_container(container)
            self._reduce_mem_outstanding -= resource.memory_bytes
            self._record(stats)
            self.gate.task_completed(TaskType.REDUCE)
            self._poke_headroom()
            if not stats.failed:
                break
        assert stats is not None
        if stats.failed:
            self._permanent_failures += 1
        else:
            self._completed_reduces += 1
        self._lifecycle_finished()

    def _await_reduce_headroom(
        self, memory_bytes: int
    ) -> Generator[Event, object, None]:
        """Reduce ramp-up: cap reducers' memory share while maps remain."""
        limit = REDUCE_RAMPUP_LIMIT * self.cluster.total_yarn_memory
        while (
            self._maps_remaining() > 0
            and self._reduce_mem_outstanding + memory_bytes > limit
        ):
            ev = self.sim.event()
            self._headroom_waiters.append(ev)
            yield ev
        self._reduce_mem_outstanding += memory_bytes

    def _maps_remaining(self) -> int:
        return self.dataflow.num_maps - self._completed_maps

    def _poke_headroom(self) -> None:
        waiters, self._headroom_waiters = self._headroom_waiters, []
        for ev in waiters:
            ev.succeed()

    # ------------------------------------------------------------------
    # Completion bookkeeping
    # ------------------------------------------------------------------
    def _record(self, stats: TaskStats) -> None:
        self.task_stats.append(stats)
        c = self.counters
        if stats.failed:
            c.increment(Counter.FAILED_TASK_ATTEMPTS)
        else:
            if stats.task_type is TaskType.MAP:
                c.increment(Counter.MAP_OUTPUT_RECORDS, stats.map_output_records)
                c.increment(Counter.MAP_OUTPUT_BYTES, stats.map_output_bytes)
                c.increment(Counter.COMBINE_OUTPUT_RECORDS, stats.combine_output_records)
            else:
                c.increment(Counter.SHUFFLED_BYTES, stats.shuffled_bytes)
                c.increment(Counter.REDUCE_INPUT_RECORDS, stats.reduce_input_records)
            c.increment(Counter.SPILLED_RECORDS, stats.spilled_records)
            c.increment(Counter.CPU_MILLISECONDS, stats.cpu_seconds * 1000.0)
        for listener in self.stats_listeners:
            listener(stats)

    def _lifecycle_finished(self) -> None:
        self._lifecycles_done += 1
        total = self.dataflow.num_maps + self.dataflow.num_reducers
        if self._lifecycles_done >= total:
            self.rm.unregister_app(self.spec.job_id)
            result = JobResult(
                job_id=self.spec.job_id,
                succeeded=self._permanent_failures == 0,
                start_time=self._start_time,
                end_time=self.sim.now,
                counters=self.counters,
                task_stats=self.task_stats,
            )
            self.completion.succeed(result)
