"""The MapReduce application master.

Runs one job: spawns a lifecycle process per task, requests
appropriately sized containers (per-task configuration!), enforces
slowstart and reduce ramp-up, retries failed attempts, and aggregates
counters.

Two seams let MRONLINE plug in without the AM knowing about tuning:

* a **config provider** is consulted for every task attempt's
  configuration (the dynamic configurator's per-task table sits behind
  it), and
* a **launch gate** controls when a task may be requested.  The default
  gate admits immediately (conservative tuning "does not interrupt the
  application task scheduling sequence"); the :class:`WaveGate`
  implements aggressive tuning's hold-the-next-wave behaviour.

Fault tolerance mirrors Hadoop's MRAppMaster: attempts lost to a dead
node or a preemption are re-executed (with their own retry budget,
separate from the config-failure ladder that ends at the safe fallback
configuration), nodes that repeatedly kill attempts are blacklisted for
the application, and -- when enabled -- a LATE-style speculator launches
backup attempts for stragglers; the first finisher wins and the loser is
killed and its partial output swept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Protocol, Set, Tuple

import numpy as np

from repro.cluster.container import Container, ContainerState
from repro.cluster.topology import Cluster
from repro.core import parameters as P
from repro.core.configuration import Configuration, enforce_dependencies
from repro.hdfs.filesystem import HdfsFileSystem
from repro.mapreduce.counters import Counter, Counters
from repro.mapreduce.dataflow import JobDataflow
from repro.mapreduce.jobspec import JobSpec, TaskId, TaskType
from repro.mapreduce.map_task import run_map_task
from repro.mapreduce.reduce_task import attempt_output_dir, run_reduce_task
from repro.mapreduce.shuffle import (
    FetchRecoverySettings,
    MapOutputCatalog,
    ShuffleFetchService,
)
from repro.mapreduce.task_context import TaskContext
from repro.monitor.statistics import ProgressBoard, TaskStats
from repro.sim.engine import Simulator
from repro.sim.events import Event, Interrupt, Process
from repro.sim.resources import Semaphore
from repro.yarn.node_manager import KillReason, NodeManager
from repro.yarn.records import ContainerRequest, Priority, Resource
from repro.yarn.resource_manager import ResourceManager

MAX_TASK_ATTEMPTS = 2
#: Fraction of cluster memory reduce containers may occupy while maps
#: are still pending (MRAppMaster's reduce ramp-up limit).
REDUCE_RAMPUP_LIMIT = 0.5

#: Failure kinds the environment (not the configuration) is to blame
#: for; they consume the re-execution budget, never the config ladder.
ENVIRONMENTAL_KINDS = frozenset(
    {"preempted", "node_lost", "speculation", "fetch_failure"}
)


@dataclass(frozen=True)
class SpeculationSettings:
    """LATE-style speculative execution knobs."""

    #: How often the speculator scans the progress board.
    interval: float = 15.0
    #: An attempt is a straggler candidate once it has been running
    #: longer than this multiple of the mean completed-task duration.
    slowness_factor: float = 1.5
    #: Completed tasks (per type) needed before estimates are trusted.
    min_completed: int = 1
    #: Cluster-wide cap on concurrently running backup attempts.
    max_concurrent: int = 4


@dataclass(frozen=True)
class FaultToleranceSettings:
    """Retry, blacklist, and speculation policy for one job."""

    #: Config-failure ladder: tuned/task config, then the safe fallback.
    max_attempts: int = MAX_TASK_ATTEMPTS
    #: Re-executions after kills (preemption, node loss) per task.
    max_env_retries: int = 4
    #: Environmental failures on one node before it is blacklisted.
    blacklist_threshold: int = 3
    #: Fetch-failure reports against one map output before the AM
    #: declares it lost and re-executes the map (capped at the number
    #: of reducers, so small jobs still converge).
    fetch_failure_threshold: int = 3
    #: None disables speculative execution (the default: a fault-free
    #: run must stay bit-identical to earlier versions of itself).
    speculation: Optional[SpeculationSettings] = None


class ConfigProvider(Protocol):
    """Source of per-task configurations (Table-1 seam)."""

    def task_config(self, spec: JobSpec, task_id: TaskId) -> Configuration: ...


class BaseConfigProvider:
    """Every task runs the job's base configuration (vanilla YARN)."""

    def task_config(self, spec: JobSpec, task_id: TaskId) -> Configuration:
        return spec.base_config


class LaunchGate:
    """Default gate: admit every task immediately (wave = -1)."""

    def admit(self, task_type: TaskType, sim: Simulator) -> Event:
        ev = sim.event()
        ev.succeed(-1)
        return ev

    def task_completed(self, task_type: TaskType) -> None:
        pass

    def retract(self, task_type: TaskType, admit_event: Event) -> None:
        """Undo an admission whose attempt was killed before launch."""


@dataclass
class _WaveState:
    wave_size: int
    wave: int = 0
    admitted: int = 0
    outstanding: int = 0
    queue: List[Event] = field(default_factory=list)


class WaveGate(LaunchGate):
    """Admit tasks in fixed-size waves; hold wave k+1 until k finishes.

    This is the aggressive strategy's "wave pattern for invoking
    parameter changes" (Section 6.1): the tuner sees the complete
    statistics of a wave before the next wave's tasks ask for their
    configurations.
    """

    def __init__(self, map_wave_size: int, reduce_wave_size: Optional[int] = None) -> None:
        if map_wave_size < 1:
            raise ValueError("wave size must be >= 1")
        self._states: Dict[TaskType, _WaveState] = {
            TaskType.MAP: _WaveState(map_wave_size),
            TaskType.REDUCE: _WaveState(reduce_wave_size or map_wave_size),
        }

    def admit(self, task_type: TaskType, sim: Simulator) -> Event:
        st = self._states[task_type]
        ev = sim.event()
        if st.admitted < st.wave_size:
            st.admitted += 1
            st.outstanding += 1
            ev.succeed(st.wave)
        else:
            st.queue.append(ev)
        return ev

    def task_completed(self, task_type: TaskType) -> None:
        st = self._states[task_type]
        st.outstanding -= 1
        if st.outstanding == 0 and st.queue:
            st.wave += 1
            st.admitted = 0
            while st.queue and st.admitted < st.wave_size:
                ev = st.queue.pop(0)
                st.admitted += 1
                st.outstanding += 1
                ev.succeed(st.wave)

    def retract(self, task_type: TaskType, admit_event: Event) -> None:
        st = self._states[task_type]
        if admit_event in st.queue:
            st.queue.remove(admit_event)
            return
        # Already admitted (the event fired, or is about to): the wave
        # slot it occupies must be released like a completed task.
        self.task_completed(task_type)

    def current_wave(self, task_type: TaskType) -> int:
        return self._states[task_type].wave

    def outstanding(self, task_type: TaskType) -> int:
        return self._states[task_type].outstanding


@dataclass
class JobResult:
    """Outcome of one job run."""

    job_id: str
    succeeded: bool
    start_time: float
    end_time: float
    counters: Counters
    task_stats: List[TaskStats]
    #: Failed/killed attempt counts keyed by failure kind (``"oom"``,
    #: ``"preempted"``, ``"node_lost"``, ``"speculation"``) -- empty for
    #: a clean run.  A job can succeed with a non-empty map (attempts
    #: were lost but re-execution recovered them).
    failure_reasons: Dict[str, int] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def stats_of(self, task_type: TaskType) -> List[TaskStats]:
        return [s for s in self.task_stats if s.task_type is task_type]

    def failure_summary(self) -> str:
        """Human-readable aggregation, e.g. ``"oom x3, node_lost x1"``."""
        if not self.failure_reasons:
            return ""
        return ", ".join(
            f"{kind} x{count}" for kind, count in sorted(self.failure_reasons.items())
        )


class _Attempt:
    """One container-level execution attempt of a task."""

    __slots__ = (
        "number", "speculative", "tier", "wave", "config",
        "container", "process", "runner", "avoid_nodes", "settled",
        "migration",
    )

    def __init__(
        self,
        number: int,
        speculative: bool,
        tier: int,
        config: Optional[Configuration] = None,
        avoid_nodes: Tuple[int, ...] = (),
        migration: bool = False,
    ) -> None:
        self.number = number
        self.speculative = speculative
        #: 1 = the task's assigned configuration, 2 = the safe fallback.
        self.tier = tier
        self.wave = -1
        self.config = config
        self.container: Optional[Container] = None
        self.process: Optional[Process] = None
        self.runner: Optional[Process] = None
        self.avoid_nodes = avoid_nodes
        self.settled = False
        #: A grace-window replacement launched on a preemption notice;
        #: while one is live the doomed primary's death triggers no
        #: crash-style re-execution.
        self.migration = migration


class _TaskRun:
    """Tracker for one logical task across all of its attempts."""

    __slots__ = (
        "task_id", "task_type", "index", "attempt_counter", "running",
        "winner", "last_failure", "config_failures", "env_failures",
        "permanent", "done", "tier1_config", "inbox", "waiter",
        "relaunch_on_settle",
    )

    def __init__(self, task_id: TaskId, task_type: TaskType, index: int) -> None:
        self.task_id = task_id
        self.task_type = task_type
        self.index = index
        self.attempt_counter = 0
        self.running: List[_Attempt] = []
        self.winner: Optional[TaskStats] = None
        self.last_failure: Optional[TaskStats] = None
        self.config_failures = 0
        self.env_failures = 0
        self.permanent = False
        self.done = False
        #: The provider-assigned configuration, resolved once; environmental
        #: retries re-evaluate it rather than popping a fresh one.
        self.tier1_config: Optional[Configuration] = None
        self.inbox: List[Tuple[_Attempt, TaskStats]] = []
        self.waiter: Optional[Event] = None
        #: Set when this task's map output was declared lost while the
        #: lifecycle was still settling attempts: re-execute once every
        #: in-flight attempt has settled instead of finishing.
        self.relaunch_on_settle = False


def _reraise_runner_failure(ev: Event) -> None:
    if ev.exception is not None:
        raise ev.exception


class MRAppMaster:
    """Per-job orchestration (YARN delegates task tracking to us)."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        hdfs: HdfsFileSystem,
        rm: ResourceManager,
        node_managers: Dict[int, NodeManager],
        spec: JobSpec,
        config_provider: Optional[ConfigProvider] = None,
        gate: Optional[LaunchGate] = None,
        rng: Optional[np.random.Generator] = None,
        app_weight: float = 1.0,
        fault_tolerance: Optional[FaultToleranceSettings] = None,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.hdfs = hdfs
        self.rm = rm
        self.node_managers = node_managers
        self.spec = spec
        self.provider: ConfigProvider = config_provider or BaseConfigProvider()
        self.gate = gate or LaunchGate()
        self.app_weight = app_weight
        self.ft = fault_tolerance or FaultToleranceSettings()

        input_file = hdfs.get(spec.input_path)
        self.dataflow = JobDataflow(spec, input_file, rng=rng)
        self.catalog = MapOutputCatalog(
            sim, self.dataflow.num_maps, self.dataflow.num_reducers
        )
        self.progress = ProgressBoard()
        self.ctx = TaskContext(
            sim, cluster, hdfs, spec, self.dataflow, self.catalog,
            progress=self.progress,
        )
        if getattr(cluster.network, "faults", None) is not None:
            # The injector armed the gray-failure network state before
            # this job was submitted: switch reducers onto the per-fetch
            # recovery path and accept their fetch-failure reports.
            self.ctx.fetch = ShuffleFetchService(
                sim, cluster, self.catalog,
                FetchRecoverySettings(), self._on_fetch_failure_report,
            )
        self._input_file = input_file

        self.completion: Event = sim.event()
        self.counters = Counters()
        self.task_stats: List[TaskStats] = []
        self.stats_listeners: List[Callable[[TaskStats], None]] = []

        self._start_time: float = 0.0
        self._runs: Dict[str, _TaskRun] = {}
        self._completed_maps = 0
        self._map_lifecycles_done = 0
        self._completed_reduces = 0
        self._lifecycles_done = 0
        self._permanent_failures = 0
        self._reduces_started = False
        self._reduce_mem_outstanding = 0
        self._headroom_waiters: List[Event] = []
        self._started = False
        #: Per-node environmental failure counts and the resulting
        #: application-level blacklist (Hadoop's AM blacklisting).
        self._node_failures: Dict[int, int] = {}
        #: Fetch-failure aggregation per map index: total report count
        #: and the distinct reporting reducers (telemetry detail).
        self._fetch_report_counts: Dict[int, int] = {}
        self._fetch_reporters: Dict[int, Set[str]] = {}
        #: Loss details awaiting a lifecycle to charge them, keyed by
        #: task id: ``(map_index, src_node_id, report_count)``.
        self._pending_loss: Dict[str, Tuple[int, int, int]] = {}
        self._blacklisted_nodes: Set[int] = set()
        #: Attempts proactively migrated off preemption-noticed nodes
        #: during the grace window (elastic churn only).
        self.preempt_migrations = 0
        #: Mean-duration inputs for the speculator, per task type.
        self._completed_durations: Dict[TaskType, List[float]] = {
            TaskType.MAP: [], TaskType.REDUCE: [],
        }
        # Keep at most ~half a wave of container requests outstanding per
        # task type.  Configurations are resolved at request time, so a
        # bounded pipeline is what makes category-2 parameters (container
        # size!) tunable mid-job: requests made a whole job in advance
        # would freeze the sizing at submission-time values.  Half a wave
        # keeps the scheduler fed while letting tuning reach tasks within
        # the same wave in shared (multi-tenant) clusters.
        depth = max(16, cluster.total_yarn_memory // (2 * 1024 * 1024 * 1024))
        self._request_tokens: Dict[TaskType, Semaphore] = {
            TaskType.MAP: Semaphore(sim, depth, name=f"{spec.job_id}-mreq"),
            TaskType.REDUCE: Semaphore(sim, depth, name=f"{spec.job_id}-rreq"),
        }

    def _telemetry(self, category: str):
        """The attached bus if someone subscribed to *category*, else None."""
        tel = self.sim.telemetry
        if tel is not None and tel.wants(category):
            return tel
        return None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Event:
        """Submit the job; returns the completion event."""
        if self._started:
            raise RuntimeError("job already started")
        self._started = True
        self._start_time = self.sim.now
        tel = self._telemetry("job")
        if tel is not None:
            from repro.telemetry.events import JobSubmitted

            tel.emit(
                JobSubmitted(
                    time=self.sim.now,
                    job_id=self.spec.job_id,
                    name=self.spec.name,
                    num_maps=self.dataflow.num_maps,
                    num_reduces=self.dataflow.num_reducers,
                )
            )
        self.rm.register_app(self.spec.job_id, weight=self.app_weight)
        for index in range(self.dataflow.num_maps):
            run = self._make_run(TaskType.MAP, index)
            self.sim.process(
                self._task_lifecycle(run), name=f"{self.spec.job_id}-m{index}"
            )
        if self._slowstart_threshold() == 0:
            self._start_reduces()
        if self.ft.speculation is not None:
            self.sim.process(
                self._speculator_loop(self.ft.speculation),
                name=f"{self.spec.job_id}-speculator",
            )
        return self.completion

    def _slowstart_threshold(self) -> int:
        import math

        return math.ceil(self.spec.slowstart * self.dataflow.num_maps)

    def _make_run(self, task_type: TaskType, index: int) -> _TaskRun:
        task_id = (
            self.spec.map_task_id(index)
            if task_type is TaskType.MAP
            else self.spec.reduce_task_id(index)
        )
        run = _TaskRun(task_id, task_type, index)
        self._runs[str(task_id)] = run
        return run

    # ------------------------------------------------------------------
    # Task configuration
    # ------------------------------------------------------------------
    def _task_config(self, task_id: TaskId) -> Configuration:
        cfg = self.provider.task_config(self.spec, task_id)
        if getattr(self.provider, "provides_feasible_configs", False):
            return cfg
        return enforce_dependencies(cfg)

    def _launch_config(self, task_id: TaskId, requested: Configuration) -> Configuration:
        """Refresh the configuration when the container actually starts.

        Providers with a launch-time view (the dynamic configurator's
        slave side) may hand the task fresher values than what sized the
        container request; others keep the requested configuration.
        """
        refresh = getattr(self.provider, "task_launch_config", None)
        if refresh is None:
            return requested
        return refresh(self.spec, task_id, requested)

    def _fallback_config(self, task_id: TaskId) -> Configuration:
        """Escalation target: the job's base configuration, clamped."""
        return enforce_dependencies(self.spec.base_config)

    def _resolve_config(self, run: _TaskRun, attempt: _Attempt) -> Configuration:
        if attempt.config is not None:
            # Speculative backups reuse the primary's exact configuration
            # (consulting the provider again would pop a fresh sample).
            return attempt.config
        if attempt.tier >= 2:
            return self._fallback_config(run.task_id)
        if run.tier1_config is None:
            run.tier1_config = self._task_config(run.task_id)
        return run.tier1_config

    # ------------------------------------------------------------------
    # Attempt execution
    # ------------------------------------------------------------------
    def _spawn_attempt(
        self,
        run: _TaskRun,
        speculative: bool = False,
        tier: int = 1,
        config: Optional[Configuration] = None,
        avoid_nodes: Tuple[int, ...] = (),
        migration: bool = False,
    ) -> _Attempt:
        run.attempt_counter += 1
        attempt = _Attempt(
            run.attempt_counter, speculative, tier,
            config=config, avoid_nodes=avoid_nodes, migration=migration,
        )
        run.running.append(attempt)
        attempt.runner = self.sim.process(
            self._attempt_runner(run, attempt),
            name=f"{run.task_id}-a{attempt.number}",
        )
        # Nothing yields on runner processes, so a bug in the rollback
        # path would otherwise vanish silently and hang the job: the
        # attempt never settles and the lifecycle waits forever.  Crash
        # the simulation loudly instead.
        attempt.runner.add_callback(_reraise_runner_failure)
        return attempt

    def _blacklist_for(self, attempt: _Attempt) -> Tuple[int, ...]:
        blocked = set(self._blacklisted_nodes) | set(attempt.avoid_nodes)
        return tuple(sorted(blocked))

    def _attempt_runner(
        self, run: _TaskRun, attempt: _Attempt
    ) -> Generator[Event, object, None]:
        ttype = run.task_type
        task_id = run.task_id
        gated = not attempt.speculative
        admit_ev: Optional[Event] = None
        admitted = False
        tok_ev: Optional[Event] = None
        token_held = False
        grant_ev: Optional[Event] = None
        request: Optional[ContainerRequest] = None
        mem_counted = 0
        launched = False
        stats: Optional[TaskStats] = None
        try:
            if gated:
                admit_ev = self.gate.admit(ttype, self.sim)
                attempt.wave = yield admit_ev
                admitted = True
                tok_ev = self._request_tokens[ttype].acquire()
                yield tok_ev
                token_held = True
            config = self._resolve_config(run, attempt)
            attempt.config = config
            if ttype is TaskType.MAP:
                resource = Resource.of_mb(
                    int(config[P.MAP_MEMORY_MB]), int(config[P.MAP_CPU_VCORES])
                )
                preferred = tuple(
                    loc.node_id for loc in self._input_file.blocks[run.index].locations
                )
                priority = Priority.MAP
            else:
                resource = Resource.of_mb(
                    int(config[P.REDUCE_MEMORY_MB]), int(config[P.REDUCE_CPU_VCORES])
                )
                preferred = ()
                priority = Priority.REDUCE
                yield from self._await_reduce_headroom(resource.memory_bytes)
                mem_counted = resource.memory_bytes
            request = ContainerRequest(
                app_id=self.spec.job_id,
                resource=resource,
                priority=priority,
                preferred_nodes=preferred,
                blacklisted_nodes=self._blacklist_for(attempt),
                # Attempt-scoped kill prefix (trailing dot so "a1" never
                # matches an "a10" label): killing this container cancels
                # only this attempt's flows, not a live sibling's.
                tag=f"{task_id}.a{attempt.number}.",
            )
            grant_ev = self.rm.allocate(request)
            container = yield grant_ev
            attempt.container = container
            if token_held:
                self._request_tokens[ttype].release()
                token_held = False
                tok_ev = None  # consumed; cleanup must not release again
            if gated:
                config = self._launch_config(task_id, config)
                attempt.config = config
            nm = self.node_managers[container.node.node_id]
            if (
                nm.decommissioned
                or nm.draining
                or self.rm.is_node_lost(container.node.node_id)
            ):
                # The node died (or started draining) while the grant
                # was in flight.
                stats = self._synthesize_failure(
                    run, attempt, "node_lost",
                    f"{container.node.hostname} lost before launch",
                )
            else:
                if ttype is TaskType.MAP:
                    task_gen = run_map_task(
                        self.ctx, run.index, self._input_file.blocks[run.index],
                        container, config, attempt.number, attempt.wave,
                    )
                else:
                    task_gen = run_reduce_task(
                        self.ctx, run.index, container, config,
                        attempt.number, attempt.wave,
                    )
                proc = nm.launch(container, task_gen)
                attempt.process = proc
                launched = True
                self.progress.start(
                    task_id, attempt.number, ttype, container.node.node_id, self.sim.now
                )
                stats = yield proc
        except Interrupt as interrupt:
            cause = interrupt.cause
            kind = getattr(cause, "kind", "") or "preempted"
            detail = getattr(cause, "detail", "") or str(cause)
            # Stage-aware rollback of everything the attempt held.
            if gated and admit_ev is not None and not admitted:
                # Granted-but-undelivered admissions occupy a wave slot;
                # queued ones are simply removed.
                if admit_ev.scheduled or admit_ev.triggered:
                    admitted = True
                else:
                    self.gate.retract(ttype, admit_ev)
            if token_held:
                self._request_tokens[ttype].release()
                token_held = False
            elif tok_ev is not None and not token_held:
                if not self._request_tokens[ttype].cancel(tok_ev):
                    if tok_ev.scheduled or tok_ev.triggered:
                        self._request_tokens[ttype].release()
            if attempt.container is None and grant_ev is not None:
                if grant_ev.scheduled or grant_ev.triggered:
                    attempt.container = grant_ev.value  # granted, undelivered
                elif request is not None:
                    self.rm.cancel(request)
            stats = self._synthesize_failure(run, attempt, kind, detail)

        assert stats is not None
        if attempt.container is not None and attempt.container.state is not (
            ContainerState.RELEASED
        ):
            self.rm.release_container(attempt.container)
        if mem_counted:
            self._reduce_mem_outstanding -= mem_counted
        if launched:
            self.progress.finish(task_id, attempt.number)
        if not stats.failed and run.winner is not None:
            # Photo-finish: another attempt committed first this instant.
            stats.failed = True
            stats.failure_kind = "speculation"
            stats.failure_reason = "superseded by a faster attempt"
        if attempt.speculative:
            stats.speculative = True
        if not stats.failed:
            run.winner = stats
            self._completed_durations[ttype].append(stats.duration)
            self._kill_losers(run, attempt)
        else:
            self._cleanup_attempt_output(run, attempt)
            self._note_attempt_failure(stats)
        tel = self._telemetry("task")
        if tel is not None:
            from repro.telemetry.events import AttemptSpan

            container_id = (
                attempt.container.container_id if attempt.container is not None else -1
            )
            tel.emit(
                AttemptSpan(
                    time=stats.end_time,
                    name=f"{ttype.value}.attempt",
                    start=stats.start_time,
                    node_id=stats.node_id,
                    track=f"container-{container_id}" if container_id >= 0 else "am",
                    job_id=self.spec.job_id,
                    task=str(task_id),
                    attempt=attempt.number,
                    failed=stats.failed,
                    speculative=stats.speculative,
                )
            )
        self._record(stats)
        if gated and admitted:
            self.gate.task_completed(ttype)
        self._poke_headroom()
        attempt.settled = True
        if attempt in run.running:
            run.running.remove(attempt)
        run.inbox.append((attempt, stats))
        if run.waiter is not None and not run.waiter.triggered:
            waiter, run.waiter = run.waiter, None
            waiter.succeed()

    def _synthesize_failure(
        self, run: _TaskRun, attempt: _Attempt, kind: str, detail: str
    ) -> TaskStats:
        """Stats for an attempt that never got to report its own."""
        node_id = attempt.container.node.node_id if attempt.container else -1
        config = attempt.config.as_dict() if attempt.config is not None else {}
        now = self.sim.now
        entry = None
        for p in self.progress.attempts_of(run.task_id):
            if p.attempt == attempt.number:
                entry = p
                break
        start = entry.start_time if entry is not None else now
        return TaskStats(
            task_id=run.task_id,
            task_type=run.task_type,
            node_id=node_id,
            attempt=attempt.number,
            config=config,
            start_time=start,
            end_time=now,
            cpu_seconds=0.0,
            allocated_cores=0.0,
            working_set_bytes=0.0,
            container_memory_bytes=(
                attempt.container.memory_bytes if attempt.container else 0.0
            ),
            failed=True,
            failure_reason=detail,
            failure_kind=kind,
            speculative=attempt.speculative,
            wave=attempt.wave,
        )

    def _kill_attempt(self, attempt: _Attempt, reason: KillReason) -> None:
        if attempt.settled:
            return
        if attempt.process is not None:
            if not attempt.process.triggered and attempt.container is not None:
                nm = self.node_managers[attempt.container.node.node_id]
                nm.kill_container(attempt.container, reason)
        elif attempt.runner is not None and not attempt.runner.triggered:
            attempt.runner.interrupt(reason)

    def _kill_losers(self, run: _TaskRun, winner: _Attempt) -> None:
        for other in list(run.running):
            if other is winner or other.settled:
                continue
            self._kill_attempt(
                other,
                KillReason(
                    "speculation",
                    f"attempt {winner.number} of {run.task_id} finished first",
                ),
            )

    def _cleanup_attempt_output(self, run: _TaskRun, attempt: _Attempt) -> None:
        """Sweep a failed/killed attempt's partial HDFS output."""
        if run.task_type is TaskType.REDUCE:
            self.hdfs.delete_prefix(
                attempt_output_dir(self.spec.output_path, run.task_id, attempt.number)
            )

    def _note_attempt_failure(self, stats: TaskStats) -> None:
        """Count environmental failures per node; blacklist repeat offenders.

        Config-induced OOMs are the configuration's fault, not the
        node's, so they never contribute (and fault-free tuning runs stay
        byte-identical to pre-blacklist behaviour).
        """
        if stats.failure_kind not in ("preempted", "node_lost", "fetch_failure"):
            return
        if stats.node_id < 0:
            return
        count = self._node_failures.get(stats.node_id, 0) + 1
        self._node_failures[stats.node_id] = count
        if count >= self.ft.blacklist_threshold:
            newly = stats.node_id not in self._blacklisted_nodes
            self._blacklisted_nodes.add(stats.node_id)
            tel = self._telemetry("yarn")
            if newly and tel is not None:
                from repro.telemetry.events import NodeBlacklisted

                tel.emit(
                    NodeBlacklisted(
                        time=self.sim.now,
                        node_id=stats.node_id,
                        job_id=self.spec.job_id,
                        failures=count,
                    )
                )

    @property
    def blacklisted_nodes(self) -> Set[int]:
        return set(self._blacklisted_nodes)

    # ------------------------------------------------------------------
    # Fetch-failure aggregation (too many fetch failures => re-run map)
    # ------------------------------------------------------------------
    def _fetch_failure_threshold(self) -> int:
        return max(1, min(self.ft.fetch_failure_threshold, self.dataflow.num_reducers))

    def _on_fetch_failure_report(
        self, map_index: int, src_node_id: int, reporter: str
    ) -> None:
        """One reducer exhausted its fetch retries against a map output.

        Reports are counted per map output (every exhausted retry cycle
        counts, so even a lone reducer eventually crosses the threshold
        and the job cannot hang on a single stuck source); past the
        threshold the output is declared lost and the map re-executes.
        """
        if not self.catalog.has_output(map_index):
            return  # already retracted; the re-run is in flight
        run = self._runs.get(str(self.spec.map_task_id(map_index)))
        if run is None or run.permanent:
            return
        count = self._fetch_report_counts.get(map_index, 0) + 1
        self._fetch_report_counts[map_index] = count
        reporters = self._fetch_reporters.setdefault(map_index, set())
        reporters.add(reporter)
        tel = self.sim.telemetry
        if tel is not None:
            tel.increment("shuffle.fetch_failure_reports")
            if tel.wants("yarn"):
                from repro.telemetry.events import FetchFailureReport

                tel.emit(
                    FetchFailureReport(
                        time=self.sim.now,
                        job_id=self.spec.job_id,
                        map_index=map_index,
                        src_node_id=src_node_id,
                        reporter=reporter,
                        distinct_reporters=len(reporters),
                    )
                )
        if count >= self._fetch_failure_threshold():
            self._declare_map_output_lost(map_index, src_node_id, count)

    def _declare_map_output_lost(
        self, map_index: int, src_node_id: int, reports: int
    ) -> None:
        """Retract a map output and re-execute the map that produced it."""
        run = self._runs.get(str(self.spec.map_task_id(map_index)))
        if run is None or run.permanent:
            return
        if not self.catalog.mark_lost(map_index):
            return
        self._fetch_report_counts.pop(map_index, None)
        self._fetch_reporters.pop(map_index, None)
        tel = self.sim.telemetry
        if tel is not None:
            tel.increment("yarn.map_outputs_lost")
            if tel.wants("yarn"):
                from repro.telemetry.events import MapOutputLost

                tel.emit(
                    MapOutputLost(
                        time=self.sim.now,
                        job_id=self.spec.job_id,
                        map_index=map_index,
                        src_node_id=src_node_id,
                        reports=reports,
                    )
                )
        self._pending_loss[str(run.task_id)] = (map_index, src_node_id, reports)
        if not run.done:
            # Attempts (e.g. a speculative copy) are still settling; the
            # lifecycle charges the loss once they have.
            run.relaunch_on_settle = True
            return
        # The lifecycle already finished: rewind its completion
        # accounting and restart it around a fresh attempt.
        run.done = False
        self._lifecycles_done -= 1
        self._map_lifecycles_done -= 1
        self._completed_maps -= 1
        self._charge_output_loss(run)
        if run.permanent:
            run.done = True
            self._finalize_run(run)
            return
        self.sim.process(
            self._task_lifecycle(run, spawn_first=False),
            name=f"{self.spec.job_id}-m{run.index}-redo",
        )

    def _charge_output_loss(self, run: _TaskRun) -> None:
        """Book a lost map output against the env-retry budget and respawn.

        The synthesized stats record carries ``fetch_failure`` (an
        environmental kind: the node, not the config, is to blame) and
        is flagged speculative so the tuner's wave accounting -- which
        already consumed the original successful attempt -- skips it.
        """
        map_index, src_node_id, reports = self._pending_loss.pop(
            str(run.task_id), (run.index, -1, 0)
        )
        winner, run.winner = run.winner, None
        run.env_failures += 1
        stats = TaskStats(
            task_id=run.task_id,
            task_type=run.task_type,
            node_id=src_node_id,
            attempt=winner.attempt if winner is not None else run.attempt_counter,
            config=dict(winner.config) if winner is not None else {},
            start_time=self.sim.now,
            end_time=self.sim.now,
            cpu_seconds=0.0,
            allocated_cores=0.0,
            working_set_bytes=0.0,
            container_memory_bytes=0.0,
            failed=True,
            failure_reason=(
                f"map output {map_index} lost after {reports} fetch-failure report(s)"
            ),
            failure_kind="fetch_failure",
            speculative=True,
            wave=winner.wave if winner is not None else -1,
        )
        run.last_failure = stats
        self._record(stats)
        self._note_attempt_failure(stats)
        if run.env_failures > self.ft.max_env_retries:
            run.permanent = True
            return
        # Repeated environmental losses escalate to the safe fallback,
        # mirroring the kill/node-loss retry path.
        tier = 1 if run.env_failures < 2 else 2
        avoid = (src_node_id,) if src_node_id >= 0 else ()
        self._spawn_attempt(run, tier=tier, avoid_nodes=avoid)

    # ------------------------------------------------------------------
    # Task lifecycles (retry arbitration)
    # ------------------------------------------------------------------
    def _task_lifecycle(
        self, run: _TaskRun, spawn_first: bool = True
    ) -> Generator[Event, object, None]:
        if spawn_first:
            self._spawn_attempt(run, speculative=False)
        while True:
            while not run.inbox:
                ev = self.sim.event()
                run.waiter = ev
                yield ev
            attempt, stats = run.inbox.pop(0)
            if stats.failed and run.winner is None and not run.permanent:
                self._handle_failure(run, attempt, stats)
            if run.relaunch_on_settle and not run.running:
                # The map output was declared lost while attempts were
                # still settling; now that they have, charge the loss
                # and re-execute instead of finishing.
                run.relaunch_on_settle = False
                if not run.permanent:
                    self._charge_output_loss(run)
                    if not run.permanent:
                        continue
            if (run.winner is not None or run.permanent) and not run.running:
                break
        run.done = True
        self._finalize_run(run)

    def _handle_failure(
        self, run: _TaskRun, attempt: _Attempt, stats: TaskStats
    ) -> None:
        run.last_failure = stats
        if attempt.speculative:
            if (
                attempt.migration
                and not run.running
                and run.winner is None
                and not run.permanent
            ):
                # The migration replacement was the task's only live
                # attempt (the doomed primary already settled when the
                # grace window closed).  Fall through and retry like a
                # primary failure so the task cannot strand.
                pass
            else:
                # A lost backup never triggers retries; the primary's
                # fate decides the task.  (If the primary is also gone,
                # its own settlement drives the policy below.)
                return
        if stats.failure_kind in ENVIRONMENTAL_KINDS:
            if any(a.migration and not a.settled for a in run.running):
                # A grace-window migration already covers this task:
                # the doomed primary's death needs no crash-style
                # re-execution (and burns no environmental budget).
                return
            run.env_failures += 1
            if run.env_failures > self.ft.max_env_retries:
                run.permanent = True
                return
            # Re-execute.  Repeated environmental losses escalate to the
            # safe fallback configuration as a precaution.
            tier = attempt.tier if run.env_failures < 2 else max(attempt.tier, 2)
            config = attempt.config if tier == attempt.tier else None
            self._emit_retry(run, attempt, stats)
            self._spawn_attempt(run, tier=tier, config=config)
        else:
            # Config-induced (OOM): climb the attempt ladder toward the
            # safe fallback; exhausting it fails the task permanently.
            run.config_failures += 1
            if run.config_failures >= self.ft.max_attempts:
                run.permanent = True
                return
            self._emit_retry(run, attempt, stats)
            self._spawn_attempt(run, tier=attempt.tier + 1)

    def _emit_retry(self, run: _TaskRun, attempt: _Attempt, stats: TaskStats) -> None:
        tel = self._telemetry("yarn")
        if tel is not None:
            from repro.telemetry.events import AttemptRetry

            tel.emit(
                AttemptRetry(
                    time=self.sim.now,
                    job_id=self.spec.job_id,
                    task=str(run.task_id),
                    attempt=attempt.number,
                    next_attempt=run.attempt_counter + 1,
                    failure_kind=stats.failure_kind,
                    reason=stats.failure_reason,
                )
            )
            tel.increment("yarn.attempt_retries")

    def _finalize_run(self, run: _TaskRun) -> None:
        failed = run.winner is None
        if run.task_type is TaskType.MAP:
            self._map_lifecycles_done += 1
            if failed:
                self._permanent_failures += 1
                # Reducers must not wait forever for this map's output.
                self.catalog.mark_all_maps_done()
            else:
                self._completed_maps += 1
            if not self._reduces_started and (
                self._completed_maps >= self._slowstart_threshold()
                # Every map lifecycle has ended (some permanently failed):
                # slowstart can never be met, so let the reducers drain
                # what exists rather than deadlocking the job.
                or self._map_lifecycles_done >= self.dataflow.num_maps
            ):
                self._start_reduces()
        else:
            if failed:
                self._permanent_failures += 1
            else:
                self._completed_reduces += 1
        self._lifecycle_finished()

    # ------------------------------------------------------------------
    # Reduce tasks
    # ------------------------------------------------------------------
    def _start_reduces(self) -> None:
        if self._reduces_started:
            return
        self._reduces_started = True
        for index in range(self.dataflow.num_reducers):
            run = self._make_run(TaskType.REDUCE, index)
            self.sim.process(
                self._task_lifecycle(run), name=f"{self.spec.job_id}-r{index}"
            )

    def _await_reduce_headroom(
        self, memory_bytes: int
    ) -> Generator[Event, object, None]:
        """Reduce ramp-up: cap reducers' memory share while maps remain."""
        limit = REDUCE_RAMPUP_LIMIT * self.cluster.total_yarn_memory
        while (
            self._maps_remaining() > 0
            and self._reduce_mem_outstanding + memory_bytes > limit
        ):
            ev = self.sim.event()
            self._headroom_waiters.append(ev)
            yield ev
        self._reduce_mem_outstanding += memory_bytes

    def _maps_remaining(self) -> int:
        return self.dataflow.num_maps - self._completed_maps

    def _poke_headroom(self) -> None:
        waiters, self._headroom_waiters = self._headroom_waiters, []
        for ev in waiters:
            ev.succeed()

    # ------------------------------------------------------------------
    # Speculative execution (LATE-style)
    # ------------------------------------------------------------------
    def _speculator_loop(
        self, settings: SpeculationSettings
    ) -> Generator[Event, object, None]:
        while not self.completion.triggered:
            yield self.sim.timeout(settings.interval)
            if self.completion.triggered:
                return
            self._speculate_once(settings)

    def _speculate_once(self, settings: SpeculationSettings) -> None:
        now = self.sim.now
        backups_running = sum(
            1
            for run in self._runs.values()
            for a in run.running
            if a.speculative and not a.settled
        )
        budget = settings.max_concurrent - backups_running
        if budget <= 0:
            return
        candidates: List[Tuple[float, str, _TaskRun, _Attempt]] = []
        for key in sorted(self._runs):
            run = self._runs[key]
            if run.done or run.winner is not None or run.permanent:
                continue
            if len(run.running) != 1:
                continue  # at most one backup, and only for lone attempts
            primary = run.running[0]
            if primary.speculative or primary.process is None or primary.settled:
                continue
            durations = self._completed_durations[run.task_type]
            if len(durations) < settings.min_completed:
                continue
            mean_duration = sum(durations) / len(durations)
            entry = None
            for p in self.progress.attempts_of(run.task_id):
                if p.attempt == primary.number:
                    entry = p
                    break
            if entry is None:
                continue
            elapsed = now - entry.start_time
            if elapsed < settings.slowness_factor * mean_duration:
                continue
            remaining = entry.estimated_remaining(now)
            # Only worth a backup if the straggler's estimated finish is
            # beyond what a fresh attempt would need.
            if remaining < 0.5 * mean_duration:
                continue
            rank = remaining if remaining != float("inf") else 1e18
            candidates.append((rank, key, run, primary))
        # LATE: back up the attempts with the longest estimated remaining
        # time first.
        candidates.sort(key=lambda entry: (-entry[0], entry[1]))
        for _rank, _key, run, primary in candidates[:budget]:
            avoid = ()
            if primary.container is not None:
                avoid = (primary.container.node.node_id,)
            self.counters.increment(Counter.SPECULATIVE_TASK_ATTEMPTS)
            tel = self._telemetry("yarn")
            if tel is not None:
                from repro.telemetry.events import SpeculativeLaunch

                tel.emit(
                    SpeculativeLaunch(
                        time=now,
                        job_id=self.spec.job_id,
                        task=str(run.task_id),
                        attempt=run.attempt_counter + 1,
                    )
                )
                tel.increment("yarn.speculative_launches")
            self._spawn_attempt(
                run, speculative=True, tier=primary.tier,
                config=primary.config, avoid_nodes=avoid,
            )

    # ------------------------------------------------------------------
    # Elastic churn: grace-window migration
    # ------------------------------------------------------------------
    def on_preempt_notice(self, node_id: int, deadline: float) -> None:
        """Proactively migrate attempts doomed by a spot preemption.

        Called by :class:`~repro.faults.elastic.ElasticCluster` when a
        preemption *notice* lands on *node_id*; the hard kill follows at
        *deadline*.  Every task whose only live attempt runs on the
        doomed node gets a replacement launched elsewhere right away --
        a checkpoint-via-speculation restart that reuses the primary's
        exact configuration, rides outside the wave gate like any
        backup, and settles through the usual first-finisher-wins
        arbitration.  This is distinct from crash re-execution: the
        replacement starts *before* the kill, so the grace window (not
        a liveness expiry) bounds the lost work.
        """
        del deadline  # the kill schedule is the ElasticCluster's business
        if self.completion.triggered:
            return
        for key in sorted(self._runs):
            run = self._runs[key]
            if run.done or run.winner is not None or run.permanent:
                continue
            doomed = [
                a for a in run.running
                if not a.settled
                and a.container is not None
                and a.container.node.node_id == node_id
            ]
            if not doomed:
                continue
            if any(
                not a.settled
                and (a.container is None or a.container.node.node_id != node_id)
                for a in run.running
            ):
                # A live copy already exists (or is pending placement)
                # off the doomed node; the scheduler no longer places on
                # draining nodes, so that copy covers the task.
                continue
            primary = doomed[0]
            self.preempt_migrations += 1
            self.counters.increment(Counter.SPECULATIVE_TASK_ATTEMPTS)
            tel = self._telemetry("yarn")
            if tel is not None:
                from repro.telemetry.events import SpeculativeLaunch

                tel.emit(
                    SpeculativeLaunch(
                        time=self.sim.now,
                        job_id=self.spec.job_id,
                        task=str(run.task_id),
                        attempt=run.attempt_counter + 1,
                    )
                )
                tel.increment("elastic.preempt_migrations")
            self._spawn_attempt(
                run, speculative=True, tier=primary.tier,
                config=primary.config, avoid_nodes=(node_id,),
                migration=True,
            )

    # ------------------------------------------------------------------
    # Completion bookkeeping
    # ------------------------------------------------------------------
    def _record(self, stats: TaskStats) -> None:
        self.task_stats.append(stats)
        # The monitor feed: the central monitor subscribes to ``stats``
        # and picks this up off the bus (SimCluster wiring); direct
        # ``stats_listeners`` remain for side-effecting consumers (the
        # tuner) and standalone use.
        tel = self._telemetry("stats")
        if tel is not None:
            from repro.telemetry.events import TaskStatsRecorded

            tel.emit(TaskStatsRecorded(time=stats.end_time, stats=stats))
        c = self.counters
        if stats.failed:
            if stats.failure_kind in ENVIRONMENTAL_KINDS:
                c.increment(Counter.KILLED_TASK_ATTEMPTS)
            else:
                c.increment(Counter.FAILED_TASK_ATTEMPTS)
        else:
            if stats.task_type is TaskType.MAP:
                c.increment(Counter.MAP_OUTPUT_RECORDS, stats.map_output_records)
                c.increment(Counter.MAP_OUTPUT_BYTES, stats.map_output_bytes)
                c.increment(Counter.COMBINE_OUTPUT_RECORDS, stats.combine_output_records)
            else:
                c.increment(Counter.SHUFFLED_BYTES, stats.shuffled_bytes)
                c.increment(Counter.REDUCE_INPUT_RECORDS, stats.reduce_input_records)
            c.increment(Counter.SPILLED_RECORDS, stats.spilled_records)
            c.increment(Counter.CPU_MILLISECONDS, stats.cpu_seconds * 1000.0)
        for listener in self.stats_listeners:
            listener(stats)

    def _lifecycle_finished(self) -> None:
        self._lifecycles_done += 1
        total = self.dataflow.num_maps + self.dataflow.num_reducers
        if self._lifecycles_done >= total:
            self.rm.unregister_app(self.spec.job_id)
            reasons: Dict[str, int] = {}
            for s in self.task_stats:
                if s.failed:
                    kind = s.failure_kind or "failed"
                    reasons[kind] = reasons.get(kind, 0) + 1
            result = JobResult(
                job_id=self.spec.job_id,
                succeeded=self._permanent_failures == 0,
                start_time=self._start_time,
                end_time=self.sim.now,
                counters=self.counters,
                task_stats=self.task_stats,
                failure_reasons=reasons,
            )
            tel = self._telemetry("job")
            if tel is not None:
                from repro.telemetry.events import JobFinished

                tel.emit(
                    JobFinished(
                        time=self.sim.now,
                        name=self.spec.name,
                        start=self._start_time,
                        track="jobs",
                        job_id=self.spec.job_id,
                        succeeded=result.succeeded,
                    )
                )
            self.completion.succeed(result)
