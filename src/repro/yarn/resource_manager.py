"""The resource manager: allocation requests in, containers out.

Applications register, submit :class:`ContainerRequest` objects, and
receive :class:`Container` grants through events.  Every enqueue and
every release triggers a dispatch pass that drains the scheduler while
assignments remain possible; grants are delivered after a small
heartbeat latency so allocation never reenters the caller.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.container import Container, ContainerState
from repro.cluster.topology import Cluster
from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Event
from repro.yarn.records import ContainerRequest
from repro.yarn.scheduler import SchedulerBase

#: Allocation heartbeat latency (NM heartbeats are 1 s in YARN; grants
#: land on the next beat on average).
ALLOCATION_LATENCY = 0.5


class ResourceManager:
    """Cluster-wide resource arbitration."""

    def __init__(self, sim: Simulator, cluster: Cluster, scheduler: SchedulerBase) -> None:
        self.sim = sim
        self.cluster = cluster
        self.scheduler = scheduler
        self._grants: Dict[int, Event] = {}  # request_id -> grant event
        self._live_containers: Dict[int, Container] = {}
        self._dispatch_scheduled = False
        #: Diagnostics: total containers ever granted.
        self.containers_granted = 0

    # ------------------------------------------------------------------
    # Application lifecycle
    # ------------------------------------------------------------------
    def register_app(self, app_id: str, weight: float = 1.0) -> None:
        self.scheduler.add_app(app_id, weight)

    def unregister_app(self, app_id: str) -> None:
        self.scheduler.remove_app(app_id)

    # ------------------------------------------------------------------
    # Allocation protocol
    # ------------------------------------------------------------------
    def allocate(self, request: ContainerRequest) -> Event:
        """Submit *request*; the returned event fires with a Container."""
        max_mem = max(n.yarn_memory_total for n in self.cluster.nodes)
        max_vc = max(n.yarn_vcores_total for n in self.cluster.nodes)
        if not request.resource.fits_in(max_mem, max_vc):
            raise SimulationError(
                f"{request!r} can never be satisfied: exceeds the largest node "
                f"({max_mem}B/{max_vc}vc)"
            )
        grant = self.sim.event()
        self._grants[request.request_id] = grant
        self.scheduler.enqueue(request)
        self._schedule_dispatch()
        return grant

    def cancel(self, request: ContainerRequest) -> bool:
        """Withdraw a request that has not been granted yet."""
        if self.scheduler.cancel(request):
            self._grants.pop(request.request_id, None)
            return True
        return False

    def release_container(self, container: Container) -> None:
        """Return a finished container's resources to the cluster."""
        if container.state is ContainerState.RELEASED:
            raise SimulationError(f"{container!r} released twice")
        container.state = ContainerState.RELEASED
        container.node.release(container.memory_bytes, container.vcores)
        container.node.containers.pop(container.container_id, None)
        self._live_containers.pop(container.container_id, None)
        self.scheduler.on_released(
            container.app_id,
            _resource_of(container),
        )
        self._schedule_dispatch()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _schedule_dispatch(self) -> None:
        if self._dispatch_scheduled:
            return
        self._dispatch_scheduled = True
        ev = self.sim.timeout(ALLOCATION_LATENCY)
        ev.add_callback(lambda _e: self._dispatch())

    def _dispatch(self) -> None:
        self._dispatch_scheduled = False
        while True:
            pick = self.scheduler.assign_once()
            if pick is None:
                return
            request, node = pick
            container = Container(
                node, request.resource.memory_bytes, request.resource.vcores, request.app_id
            )
            node.reserve(container.memory_bytes, container.vcores)
            node.containers[container.container_id] = container
            self._live_containers[container.container_id] = container
            self.scheduler.on_allocated(request.app_id, request.resource)
            self.containers_granted += 1
            grant = self._grants.pop(request.request_id, None)
            if grant is None:
                raise SimulationError(f"no grant event for {request!r}")
            grant.succeed(container)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live_container_count(self) -> int:
        return len(self._live_containers)

    def app_memory_usage(self, app_id: str) -> int:
        return self.scheduler.app_memory_usage.get(app_id, 0)

    def cluster_memory_utilization(self) -> float:
        total = self.cluster.total_yarn_memory
        used = sum(n.yarn_memory_used for n in self.cluster.nodes)
        return used / total if total else 0.0


def _resource_of(container: Container):
    from repro.yarn.records import Resource

    return Resource(container.memory_bytes, container.vcores)
