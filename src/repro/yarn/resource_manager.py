"""The resource manager: allocation requests in, containers out.

Applications register, submit :class:`ContainerRequest` objects, and
receive :class:`Container` grants through events.  Every enqueue and
every release triggers a dispatch pass that drains the scheduler while
assignments remain possible; grants are delivered after a small
heartbeat latency so allocation never reenters the caller.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Sequence

from repro.cluster.container import Container, ContainerState
from repro.cluster.topology import Cluster
from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Event
from repro.yarn.node_manager import KillReason, NodeManager
from repro.yarn.records import ContainerRequest
from repro.yarn.scheduler import SchedulerBase

#: Allocation heartbeat latency (NM heartbeats are 1 s in YARN; grants
#: land on the next beat on average).
ALLOCATION_LATENCY = 0.5

#: A node whose last heartbeat is older than this is declared lost
#: (Hadoop's ``nm.liveness-monitor.expiry-interval`` scaled down to the
#: simulator's heartbeat cadence).
LIVENESS_EXPIRY = 12.0

#: How often the RM sweeps for expired nodes.
LIVENESS_CHECK_INTERVAL = 3.0


class ResourceManager:
    """Cluster-wide resource arbitration."""

    def __init__(self, sim: Simulator, cluster: Cluster, scheduler: SchedulerBase) -> None:
        self.sim = sim
        self.cluster = cluster
        self.scheduler = scheduler
        self._grants: Dict[int, Event] = {}  # request_id -> grant event
        self._live_containers: Dict[int, Container] = {}
        self._dispatch_scheduled = False
        #: Diagnostics: total containers ever granted.
        self.containers_granted = 0
        #: Failure detection state (armed by :meth:`start_failure_detection`).
        self._node_managers: Dict[int, NodeManager] = {}
        self._last_heartbeat: Dict[int, float] = {}
        self._lost_nodes: Dict[int, float] = {}  # node_id -> time declared lost
        self._departed_nodes: Dict[int, float] = {}  # node_id -> departure time
        self._failure_detection = False

    # ------------------------------------------------------------------
    # Application lifecycle
    # ------------------------------------------------------------------
    def register_app(self, app_id: str, weight: float = 1.0) -> None:
        self.scheduler.add_app(app_id, weight)

    def unregister_app(self, app_id: str) -> None:
        self.scheduler.remove_app(app_id)

    def set_app_weight(self, app_id: str, weight: float) -> bool:
        """Re-weight a live app's fair share (service-level preemption)."""
        return self.scheduler.set_app_weight(app_id, weight)

    # ------------------------------------------------------------------
    # Node liveness
    # ------------------------------------------------------------------
    def start_failure_detection(self, node_managers: Sequence[NodeManager]) -> None:
        """Arm heartbeat tracking and the expiry sweep.

        Off by default: fault-free runs keep an empty calendar tail and
        bit-identical digests.  The fault injector arms this before any
        fault fires.
        """
        if self._failure_detection:
            return
        self._failure_detection = True
        for nm in node_managers:
            self._node_managers[nm.node.node_id] = nm
            self._last_heartbeat[nm.node.node_id] = self.sim.now
            nm.start_heartbeats(self)
        self.sim.process(self._liveness_sweep(), name="rm-liveness")

    def node_heartbeat(self, node_id: int) -> None:
        self._last_heartbeat[node_id] = self.sim.now

    def is_node_lost(self, node_id: int) -> bool:
        return node_id in self._lost_nodes or node_id in self._departed_nodes

    @property
    def lost_nodes(self) -> List[int]:
        return sorted(self._lost_nodes)

    @property
    def departed_nodes(self) -> List[int]:
        return sorted(self._departed_nodes)

    # ------------------------------------------------------------------
    # Elastic membership
    # ------------------------------------------------------------------
    def register_node_manager(self, nm: NodeManager) -> None:
        """Bring a freshly joined node into RM bookkeeping.

        With failure detection armed the newcomer starts heartbeating
        immediately; either way a dispatch pass is scheduled so pending
        requests can land on the new capacity.
        """
        node_id = nm.node.node_id
        if self._failure_detection and node_id not in self._node_managers:
            self._node_managers[node_id] = nm
            self._last_heartbeat[node_id] = self.sim.now
            nm.start_heartbeats(self)
        self._schedule_dispatch()

    def deregister_node(self, node_id: int) -> None:
        """Retire a node that left through the elastic path.

        Heartbeat tracking is dropped *before* the liveness sweep can
        misread the silence as a crash, and the scheduler excludes the
        node from every future placement.  Unlike
        :meth:`_declare_node_lost` nothing is killed here -- graceful
        departures finish (or migrate) their work first.
        """
        self._node_managers.pop(node_id, None)
        self._last_heartbeat.pop(node_id, None)
        if node_id not in self._departed_nodes:
            self._departed_nodes[node_id] = self.sim.now
        self.scheduler.mark_node_lost(node_id)
        self._schedule_dispatch()

    def _liveness_sweep(self) -> Generator[Event, object, None]:
        while True:
            yield self.sim.timeout(LIVENESS_CHECK_INTERVAL)
            deadline = self.sim.now - LIVENESS_EXPIRY
            for node_id in sorted(self._last_heartbeat):
                if node_id in self._lost_nodes:
                    continue
                if self._last_heartbeat[node_id] < deadline:
                    self._declare_node_lost(node_id)

    def _declare_node_lost(self, node_id: int) -> None:
        """Expire a silent node: no more placements, kill its containers."""
        if node_id in self._lost_nodes:
            return
        self._lost_nodes[node_id] = self.sim.now
        tel = self.sim.telemetry
        if tel is not None and tel.wants("yarn"):
            from repro.telemetry.events import NodeLost

            tel.emit(NodeLost(time=self.sim.now, node_id=node_id))
        self.scheduler.mark_node_lost(node_id)
        nm = self._node_managers.get(node_id)
        if nm is not None:
            hostname = nm.node.hostname
            nm.decommission(KillReason("node_lost", f"{hostname} heartbeat expired"))
        self._schedule_dispatch()

    # ------------------------------------------------------------------
    # Allocation protocol
    # ------------------------------------------------------------------
    def allocate(self, request: ContainerRequest) -> Event:
        """Submit *request*; the returned event fires with a Container."""
        max_mem = max(n.yarn_memory_total for n in self.cluster.nodes)
        max_vc = max(n.yarn_vcores_total for n in self.cluster.nodes)
        if not request.resource.fits_in(max_mem, max_vc):
            raise SimulationError(
                f"{request!r} can never be satisfied: exceeds the largest node "
                f"({max_mem}B/{max_vc}vc)"
            )
        grant = self.sim.event()
        self._grants[request.request_id] = grant
        self.scheduler.enqueue(request)
        self._schedule_dispatch()
        return grant

    def cancel(self, request: ContainerRequest) -> bool:
        """Withdraw a request that has not been granted yet."""
        if self.scheduler.cancel(request):
            self._grants.pop(request.request_id, None)
            return True
        return False

    def release_container(self, container: Container) -> None:
        """Return a finished container's resources to the cluster."""
        if container.state is ContainerState.RELEASED:
            raise SimulationError(f"{container!r} released twice")
        container.state = ContainerState.RELEASED
        container.node.release(container.memory_bytes, container.vcores)
        container.node.containers.pop(container.container_id, None)
        self._live_containers.pop(container.container_id, None)
        tel = self.sim.telemetry
        if tel is not None and tel.wants("yarn"):
            from repro.telemetry.events import ContainerReleased

            tel.emit(
                ContainerReleased(
                    time=self.sim.now,
                    node_id=container.node.node_id,
                    container_id=container.container_id,
                )
            )
        self.scheduler.on_released(
            container.app_id,
            _resource_of(container),
        )
        self._schedule_dispatch()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _schedule_dispatch(self) -> None:
        if self._dispatch_scheduled:
            return
        self._dispatch_scheduled = True
        ev = self.sim.timeout(ALLOCATION_LATENCY)
        ev.add_callback(lambda _e: self._dispatch())

    def _dispatch(self) -> None:
        self._dispatch_scheduled = False
        while True:
            pick = self.scheduler.assign_once()
            if pick is None:
                return
            request, node = pick
            container = Container(
                node,
                request.resource.memory_bytes,
                request.resource.vcores,
                request.app_id,
                tag=request.tag,
            )
            node.reserve(container.memory_bytes, container.vcores)
            node.containers[container.container_id] = container
            self._live_containers[container.container_id] = container
            self.scheduler.on_allocated(request.app_id, request.resource)
            self.containers_granted += 1
            tel = self.sim.telemetry
            if tel is not None and tel.wants("yarn"):
                from repro.telemetry.events import ContainerGranted

                tel.emit(
                    ContainerGranted(
                        time=self.sim.now,
                        node_id=node.node_id,
                        container_id=container.container_id,
                        memory_bytes=float(container.memory_bytes),
                        cores=float(container.vcores),
                    )
                )
                tel.increment("yarn.containers_granted")
            grant = self._grants.pop(request.request_id, None)
            if grant is None:
                raise SimulationError(f"no grant event for {request!r}")
            grant.succeed(container)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live_container_count(self) -> int:
        return len(self._live_containers)

    def app_memory_usage(self, app_id: str) -> int:
        return self.scheduler.app_memory_usage.get(app_id, 0)

    def cluster_memory_utilization(self) -> float:
        total = self.cluster.total_yarn_memory
        used = sum(n.yarn_memory_used for n in self.cluster.nodes)
        return used / total if total else 0.0


def _resource_of(container: Container):
    from repro.yarn.records import Resource

    return Resource(container.memory_bytes, container.vcores)
