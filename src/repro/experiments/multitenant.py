"""The multi-tenant experiment (Figures 14-16, Section 8.5).

Terasort (60 GB, 448 maps / 200 reduces) and BBP (0.5e6 digits of pi,
100 maps / 1 reduce) run simultaneously under the fair scheduler.
MRONLINE first tunes both applications aggressively in a shared tuning
co-run; the measured comparison then co-runs both jobs with the tuned
configurations versus both with defaults, reporting per-role execution
times and average memory/CPU utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.configuration import Configuration
from repro.core.hill_climbing import HillClimbSettings
from repro.core.tuner import OnlineTuner, TunerSettings, TuningStrategy
from repro.experiments.expedited import map_side_spills
from repro.experiments.harness import SimCluster, checked_duration
from repro.mapreduce.jobspec import TaskType
from repro.sim.rng import derive_seed
from repro.workloads.bbp import bbp_profile
from repro.workloads.datasets import DatasetSpec, bbp_dataset
from repro.workloads.suite import BenchmarkCase, JobType, make_job_spec
from repro.workloads.terasort import terasort_profile

GB = 1024**3


def terasort_60gb_case() -> BenchmarkCase:
    """Terasort sized to the paper's 448-map multi-tenant instance."""
    dataset = DatasetSpec("teragen-mt-60gb", num_blocks=448)
    return BenchmarkCase(
        "terasort-60gb-mt", dataset, terasort_profile(), 200,
        JobType.SHUFFLE, float(dataset.size_bytes), float(dataset.size_bytes),
    )


def bbp_case() -> BenchmarkCase:
    return BenchmarkCase(
        "bbp-mt", bbp_dataset(100), bbp_profile(digits=500_000), 1,
        JobType.COMPUTE, 252 * 1024, 0.0,
    )


@dataclass
class RoleUtilization:
    """Mean utilization per role, as Figures 15/16 plot them."""

    memory: Dict[str, float] = field(default_factory=dict)
    cpu: Dict[str, float] = field(default_factory=dict)


@dataclass
class MultiTenantOutcome:
    terasort_time: float
    bbp_time: float
    utilization: RoleUtilization
    terasort_map_spills: float


ROLES = ("Terasort-m", "Terasort-r", "BBP-m", "BBP-r")


def co_run(
    seed: int,
    terasort_config: Optional[Configuration] = None,
    bbp_config: Optional[Configuration] = None,
) -> MultiTenantOutcome:
    """Run both applications together under fair sharing."""
    sc = SimCluster(seed=seed, scheduler="fair")
    ts_spec = make_job_spec(terasort_60gb_case(), sc.hdfs, base_config=terasort_config)
    bbp_spec = make_job_spec(bbp_case(), sc.hdfs, base_config=bbp_config)
    ams = [sc.submit(ts_spec), sc.submit(bbp_spec)]
    ts_result, bbp_result = sc.run_jobs(ams)

    util = RoleUtilization()
    for label, result, task_type in (
        ("Terasort-m", ts_result, TaskType.MAP),
        ("Terasort-r", ts_result, TaskType.REDUCE),
        ("BBP-m", bbp_result, TaskType.MAP),
        ("BBP-r", bbp_result, TaskType.REDUCE),
    ):
        stats = [s for s in result.stats_of(task_type) if not s.failed]
        if stats:
            util.memory[label] = sum(s.memory_utilization for s in stats) / len(stats)
            util.cpu[label] = sum(s.cpu_utilization for s in stats) / len(stats)
        else:
            util.memory[label] = 0.0
            util.cpu[label] = 0.0
    return MultiTenantOutcome(
        terasort_time=checked_duration(ts_result),
        bbp_time=checked_duration(bbp_result),
        utilization=util,
        terasort_map_spills=map_side_spills(ts_result),
    )


def tune_multitenant(
    seed: int, hill_climb: Optional[HillClimbSettings] = None
) -> Tuple[Configuration, Configuration]:
    """Aggressively tune both co-running applications in one session."""
    sc = SimCluster(seed=seed, scheduler="fair")
    ts_spec = make_job_spec(terasort_60gb_case(), sc.hdfs)
    bbp_spec = make_job_spec(bbp_case(), sc.hdfs)
    tuner = OnlineTuner(
        TuningStrategy.AGGRESSIVE,
        settings=TunerSettings(hill_climb=hill_climb or HillClimbSettings()),
        rng=np.random.default_rng(derive_seed(seed, "tuner", "multitenant")),
    )
    ams = [tuner.submit(sc, ts_spec), tuner.submit(sc, bbp_spec)]
    sc.run_jobs(ams)
    return (
        tuner.recommended_config(ts_spec.job_id),
        tuner.recommended_config(bbp_spec.job_id),
    )


_experiment_cache: Dict[Tuple[int, Optional[HillClimbSettings]], Tuple] = {}


def run_multitenant_experiment(
    seed: int, hill_climb: Optional[HillClimbSettings] = None
) -> Tuple[MultiTenantOutcome, MultiTenantOutcome]:
    """(default outcome, MRONLINE outcome) for one seed.

    Memoized: Figures 14, 15, and 16 all read the same pair of co-runs,
    so the three benchmarks share one execution per seed.
    """
    key = (seed, hill_climb)
    if key not in _experiment_cache:
        default_outcome = co_run(seed)
        ts_cfg, bbp_cfg = tune_multitenant(seed, hill_climb)
        tuned_outcome = co_run(seed, ts_cfg, bbp_cfg)
        _experiment_cache[key] = (default_outcome, tuned_outcome)
    return _experiment_cache[key]


def run_multitenant_over_seeds(
    seeds: List[int],
    hill_climb: Optional[HillClimbSettings] = None,
    max_workers: Optional[int] = None,
) -> List[Tuple[MultiTenantOutcome, MultiTenantOutcome]]:
    """The multi-tenant experiment for every seed, pool-backed.

    Fresh seeds fan out over the process pool; results are written back
    into the memoization cache so Figures 14, 15, and 16 keep sharing
    one pair of co-runs per seed.
    """
    from functools import partial

    from repro.experiments.parallel import map_seeds

    missing = [s for s in seeds if (s, hill_climb) not in _experiment_cache]
    if missing:
        computed = map_seeds(
            partial(run_multitenant_experiment, hill_climb=hill_climb),
            missing,
            max_workers=max_workers,
        )
        for seed, outcome in zip(missing, computed):
            _experiment_cache[(seed, hill_climb)] = outcome
    return [_experiment_cache[(s, hill_climb)] for s in seeds]
