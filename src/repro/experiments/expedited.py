"""The expedited-test-runs experiment (Figures 4-6, plus spills 7-9).

Protocol, per benchmark case and seed (Section 8.2):

1. run the job with the default YARN configuration;
2. run it with the offline tuning-guide configuration;
3. run MRONLINE's aggressive tuning session (one test run) to obtain
   the recommended configuration, then run the job with it.

The execution-time figures report step 1 vs 2 vs 3's final run; the
spill figures report the map-side SPILLED_RECORDS of the same runs
against the combiner-output "Optimal".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.offline_guide import offline_guide_config
from repro.core.configuration import Configuration
from repro.core.hill_climbing import HillClimbSettings
from repro.core.tuner import OnlineTuner, TunerSettings, TuningStrategy
from repro.experiments.harness import SimCluster, checked_duration
from repro.mapreduce.jobspec import TaskType
from repro.sim.rng import derive_seed
from repro.workloads.suite import BenchmarkCase, make_job_spec
from repro.yarn.app_master import JobResult


@dataclass
class ExpeditedCaseResult:
    """One case x seed outcome of the expedited protocol."""

    case: str
    seed: int
    default_time: float
    offline_time: float
    mronline_time: float
    tuning_run_time: float
    recommended: Configuration
    optimal_spills: float
    default_spills: float
    offline_spills: float
    mronline_spills: float


def map_side_spills(result: JobResult) -> float:
    """SPILLED_RECORDS of map tasks only (what Figures 7-9 plot)."""
    return float(
        sum(s.spilled_records for s in result.stats_of(TaskType.MAP) if not s.failed)
    )


def optimal_spills(result: JobResult) -> float:
    """The paper's "Optimal": combiner-output records (map output when
    there is no combiner) -- i.e. every record spilled exactly once."""
    total = 0.0
    for s in result.stats_of(TaskType.MAP):
        if s.failed:
            continue
        total += s.combine_output_records or s.map_output_records
    return total


def run_default(case: BenchmarkCase, seed: int) -> JobResult:
    sc = SimCluster(seed=seed)
    return sc.run_job(make_job_spec(case, sc.hdfs))


def run_with_config(case: BenchmarkCase, seed: int, config: Configuration) -> JobResult:
    sc = SimCluster(seed=seed)
    return sc.run_job(make_job_spec(case, sc.hdfs, base_config=config))


def run_aggressive_tuning(
    case: BenchmarkCase,
    seed: int,
    hill_climb: Optional[HillClimbSettings] = None,
    optimizer: str = "hill_climb",
) -> tuple:
    """One aggressive tuning session; returns (tuning JobResult, config).

    *optimizer* selects the search backend (``hill_climb`` reproduces
    the paper's protocol; see :mod:`repro.core.optimizers`).  The
    *hill_climb* settings only apply to the hill-climber backend; other
    backends run with their own defaults.
    """
    sc = SimCluster(seed=seed)
    spec = make_job_spec(case, sc.hdfs)
    tuner = OnlineTuner(
        TuningStrategy.AGGRESSIVE,
        settings=TunerSettings(
            hill_climb=hill_climb or HillClimbSettings(), optimizer=optimizer
        ),
        rng=np.random.default_rng(derive_seed(seed, "tuner", case.name)),
    )
    am = tuner.submit(sc, spec)
    result = sc.sim.run_until_complete(am.completion)
    return result, tuner.recommended_config(spec.job_id)


_case_cache: Dict[tuple, ExpeditedCaseResult] = {}


def run_expedited_case(
    case: BenchmarkCase,
    seed: int,
    hill_climb: Optional[HillClimbSettings] = None,
    optimizer: str = "hill_climb",
) -> ExpeditedCaseResult:
    """Full expedited protocol for one case and seed.

    Memoized per (case, seed, settings, backend): the execution-time
    figures (4-6) and the spill figures (7-9) read the same runs.
    """
    key = (case.name, seed, hill_climb, optimizer)
    cached = _case_cache.get(key)
    if cached is not None:
        return cached
    default_result = run_default(case, seed)
    offline_result = run_with_config(case, seed, offline_guide_config(case))
    tuning_result, recommended = run_aggressive_tuning(case, seed, hill_climb, optimizer)
    mronline_result = run_with_config(case, seed, recommended)
    _case_cache[key] = result = ExpeditedCaseResult(
        case=case.name,
        seed=seed,
        default_time=checked_duration(default_result),
        offline_time=checked_duration(offline_result),
        mronline_time=checked_duration(mronline_result),
        tuning_run_time=checked_duration(tuning_result),
        recommended=recommended,
        optimal_spills=optimal_spills(default_result),
        default_spills=map_side_spills(default_result),
        offline_spills=map_side_spills(offline_result),
        mronline_spills=map_side_spills(mronline_result),
    )
    return result


def run_expedited_over_seeds(
    case: BenchmarkCase,
    seeds: List[int],
    hill_climb: Optional[HillClimbSettings] = None,
    max_workers: Optional[int] = None,
    optimizer: str = "hill_climb",
) -> List[ExpeditedCaseResult]:
    """The expedited protocol for every seed, pool-backed.

    Seeds already memoized in this process are served from the cache;
    the rest fan out over the process pool (``max_workers`` resolves
    through ``REPRO_WORKERS``; ``1`` = the exact legacy serial loop).
    Fresh results are written back into the cache so the spill figures
    (7-9) keep sharing runs with the execution-time figures (4-6).
    """
    from functools import partial

    from repro.experiments.parallel import map_seeds

    missing = [
        s for s in seeds if (case.name, s, hill_climb, optimizer) not in _case_cache
    ]
    if missing:
        computed = map_seeds(
            partial(run_expedited_case, case, hill_climb=hill_climb, optimizer=optimizer),
            missing,
            max_workers=max_workers,
        )
        for seed, result in zip(missing, computed):
            _case_cache[(case.name, seed, hill_climb, optimizer)] = result
    return [_case_cache[(case.name, s, hill_climb, optimizer)] for s in seeds]


def aggregate(results: List[ExpeditedCaseResult], attr: str) -> float:
    values = [getattr(r, attr) for r in results]
    return sum(values) / len(values) if values else 0.0
