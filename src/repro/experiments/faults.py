"""The resilience experiment: job performance under injected faults.

Protocol: one fault-free run with the default configuration fixes the
*baseline* and the fault plan's time horizon.  Then, for each fault
level (``none``, ``low``, ``high``), the same job runs twice under the
injected scenario -- once with the default configuration and once
co-executed with the online tuner -- and the report compares job time,
recovery outcome (did re-execution/speculation keep the job
successful?), and the tuner's gain against the fault-free baseline.

Every run is described declaratively by a :class:`RunRequest`, so the
level pairs fan out over the process pool, and the report's combined
digest is bit-identical for any worker count (the CI gate's fault
case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.parallel import (
    RunOutcome,
    RunRequest,
    combined_digest,
    execute_request,
    run_requests,
)

#: Fault-scenario knobs per level (fed to ``generate_fault_plan``; the
#: ``horizon`` knob is added at run time from the measured baseline).
FAULT_LEVELS: Dict[str, Dict[str, float]] = {
    "none": {},
    "low": {"container_kills": 2, "degraded": 1},
    "high": {"crashes": 1, "container_kills": 4, "degraded": 2},
}


@dataclass(frozen=True)
class ResilienceRow:
    """Default-vs-tuned outcomes for one fault level."""

    level: str
    default: RunOutcome
    tuned: RunOutcome

    @property
    def tuner_gain(self) -> float:
        """Fractional job-time gain of the tuned run at this fault level."""
        if self.default.job_time <= 0:
            return 0.0
        return (self.default.job_time - self.tuned.job_time) / self.default.job_time

    def slowdown_vs(self, baseline: RunOutcome) -> float:
        """Fault-induced slowdown of the default run vs the fault-free one."""
        if baseline.job_time <= 0:
            return 0.0
        return (self.default.job_time - baseline.job_time) / baseline.job_time


@dataclass(frozen=True)
class ResilienceReport:
    """Everything the ``faults`` subcommand prints."""

    case_name: str
    seed: int
    tuning: str
    baseline: RunOutcome
    rows: Tuple[ResilienceRow, ...]
    digest: str


def run_fault_experiment(
    case_name: str = "terasort",
    seed: int = 1,
    levels: Tuple[str, ...] = ("none", "low", "high"),
    tuning: str = "conservative",
    num_blocks: Optional[int] = None,
    num_reducers: Optional[int] = None,
    max_workers: Optional[int] = None,
) -> ResilienceReport:
    """Run the full resilience protocol for one case and seed."""
    unknown = [lv for lv in levels if lv not in FAULT_LEVELS]
    if unknown:
        raise ValueError(
            f"unknown fault level(s) {unknown}, want a subset of {sorted(FAULT_LEVELS)}"
        )

    def request(tuning_mode: str, level: str) -> RunRequest:
        knobs = FAULT_LEVELS[level]
        return RunRequest.build(
            case_name,
            seed,
            tuning=tuning_mode,
            num_blocks=num_blocks,
            num_reducers=num_reducers,
            faults={**knobs, "horizon": horizon} if knobs else None,
        )

    # The fault-free default run doubles as the baseline and as the
    # "none" level's default arm; its duration sets the plan horizon.
    horizon = 1.0  # placeholder so request() can close over it
    baseline = execute_request(request("none", "none"))
    horizon = max(baseline.job_time, 1.0)

    requests: List[RunRequest] = []
    for level in levels:
        if level != "none":
            requests.append(request("none", level))
        requests.append(request(tuning, level))
    outcomes = run_requests(requests, max_workers=max_workers)

    rows: List[ResilienceRow] = []
    cursor = 0
    for level in levels:
        if level == "none":
            default = baseline
        else:
            default = outcomes[cursor]
            cursor += 1
        tuned = outcomes[cursor]
        cursor += 1
        rows.append(ResilienceRow(level=level, default=default, tuned=tuned))

    return ResilienceReport(
        case_name=case_name,
        seed=seed,
        tuning=tuning,
        baseline=baseline,
        rows=tuple(rows),
        digest=combined_digest([baseline] + list(outcomes)),
    )
