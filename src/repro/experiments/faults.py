"""The resilience experiment: job performance under injected faults.

Protocol: one fault-free run with the default configuration fixes the
*baseline* and the fault plan's time horizon.  Then, for each fault
level (``none``, ``low``, ``high``), the same job runs twice under the
injected scenario -- once with the default configuration and once
co-executed with the online tuner -- and the report compares job time,
recovery outcome (did re-execution/speculation keep the job
successful?), and the tuner's gain against the fault-free baseline.

Every run is described declaratively by a :class:`RunRequest`, so the
level pairs fan out over the process pool, and the report's combined
digest is bit-identical for any worker count (the CI gate's fault
case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.parallel import (
    RunOutcome,
    RunRequest,
    combined_digest,
    execute_request,
    run_requests,
)

#: Fault-scenario knobs per level (fed to ``generate_fault_plan``; the
#: ``horizon`` knob is added at run time from the measured baseline).
FAULT_LEVELS: Dict[str, Dict[str, float]] = {
    "none": {},
    "low": {"container_kills": 2, "degraded": 1},
    "high": {"crashes": 1, "container_kills": 4, "degraded": 2},
}

#: Fault kind -> ``generate_fault_plan`` count knob (the ``--kinds``
#: filter builds per-level knob dicts from this map).
KIND_TO_KNOB: Dict[str, str] = {
    "node_crash": "crashes",
    "container_kill": "container_kills",
    "degrade": "degraded",
    "link_degrade": "link_degraded",
    "link_flaky": "link_flaky",
    "rack_partition": "rack_partitions",
    "node_decommission": "decommissions",
    "node_join": "joins",
    "spot_preempt": "spot_preempts",
    "tuner_crash": "tuner_crashes",
    "monitor_outage": "monitor_outages",
    "stats_gap": "stats_gaps",
}

#: Failure kind (``TaskStats.failure_kind``) -> the fault kind that
#: causes it, for the per-kind failure breakdown.  ``oom`` stays
#: unattributed: it is config-induced, not injected.
FAILURE_TO_FAULT_KIND: Dict[str, str] = {
    "preempted": "container_kill/spot_preempt",
    "node_lost": "node_crash",
    "speculation": "degrade",
    "fetch_failure": "link_flaky/rack_partition/node_crash",
}


def levels_for_kinds(kinds: Tuple[str, ...]) -> Dict[str, Dict[str, float]]:
    """Build ``low``/``high`` knob dicts restricted to *kinds*.

    Low injects one fault of each selected kind; high injects two.
    Node-removing kinds (crashes, decommissions, spot preemptions) are
    capped at one each -- losing more nodes on a small test cluster
    starves the job rather than stressing recovery.
    """
    unknown = [k for k in kinds if k not in KIND_TO_KNOB]
    if unknown:
        raise ValueError(
            f"unknown fault kind(s) {unknown}, want a subset of {sorted(KIND_TO_KNOB)}"
        )
    removes_node = {"node_crash", "node_decommission", "spot_preempt"}
    low = {KIND_TO_KNOB[k]: 1 for k in kinds}
    high = {
        KIND_TO_KNOB[k]: (1 if k in removes_node else 2) for k in kinds
    }
    return {"none": {}, "low": low, "high": high}


@dataclass(frozen=True)
class ResilienceRow:
    """Default-vs-tuned outcomes for one fault level."""

    level: str
    default: RunOutcome
    tuned: RunOutcome

    @property
    def tuner_gain(self) -> float:
        """Fractional job-time gain of the tuned run at this fault level."""
        if self.default.job_time <= 0:
            return 0.0
        return (self.default.job_time - self.tuned.job_time) / self.default.job_time

    def slowdown_vs(self, baseline: RunOutcome) -> float:
        """Fault-induced slowdown of the default run vs the fault-free one."""
        if baseline.job_time <= 0:
            return 0.0
        return (self.default.job_time - baseline.job_time) / baseline.job_time

    @property
    def failures_by_fault_kind(self) -> Tuple[Tuple[str, int], ...]:
        """The default run's failures attributed to injected fault kinds.

        Keys are ``"<failure_kind> (<fault kind>)"``; failure kinds
        without an injected cause (``oom``, bare ``failed``) pass
        through unattributed.
        """
        out: Dict[str, int] = {}
        for reason, count in self.default.failure_reasons:
            fault = FAILURE_TO_FAULT_KIND.get(reason)
            key = f"{reason} ({fault})" if fault else reason
            out[key] = out.get(key, 0) + int(count)
        return tuple(sorted(out.items()))


@dataclass(frozen=True)
class ResilienceReport:
    """Everything the ``faults`` subcommand prints."""

    case_name: str
    seed: int
    tuning: str
    baseline: RunOutcome
    rows: Tuple[ResilienceRow, ...]
    digest: str
    #: Serialized fault plan per non-``none`` level (``plan_to_json``
    #: form) -- written out by ``repro faults --plan-json`` and fed back
    #: through a ``("plan", json)`` request for an exact replay.
    plans_json: Tuple[Tuple[str, str], ...] = ()


def run_fault_experiment(
    case_name: str = "terasort",
    seed: int = 1,
    levels: Tuple[str, ...] = ("none", "low", "high"),
    tuning: str = "conservative",
    num_blocks: Optional[int] = None,
    num_reducers: Optional[int] = None,
    max_workers: Optional[int] = None,
    kinds: Optional[Tuple[str, ...]] = None,
    plan_json: Optional[str] = None,
) -> ResilienceReport:
    """Run the full resilience protocol for one case and seed.

    *kinds* restricts the generated scenarios to the named fault kinds
    (see :data:`KIND_TO_KNOB`); without it the legacy node/container
    levels in :data:`FAULT_LEVELS` apply.  *plan_json* bypasses
    generation entirely: the serialized plan replays verbatim at every
    non-``none`` level (the ``--plan-json`` round-trip).
    """
    fault_levels = FAULT_LEVELS if kinds is None else levels_for_kinds(kinds)
    unknown = [lv for lv in levels if lv not in fault_levels]
    if unknown:
        raise ValueError(
            f"unknown fault level(s) {unknown}, want a subset of {sorted(fault_levels)}"
        )

    def request(tuning_mode: str, level: str) -> RunRequest:
        knobs = fault_levels[level]
        if not knobs:
            return RunRequest.build(
                case_name,
                seed,
                tuning=tuning_mode,
                num_blocks=num_blocks,
                num_reducers=num_reducers,
            )
        if plan_json is not None:
            faults: Dict[str, object] = {"plan": plan_json}
        else:
            faults = {**knobs, "horizon": horizon}
        return RunRequest.build(
            case_name,
            seed,
            tuning=tuning_mode,
            num_blocks=num_blocks,
            num_reducers=num_reducers,
            faults=faults,
        )

    # The fault-free default run doubles as the baseline and as the
    # "none" level's default arm; its duration sets the plan horizon.
    horizon = 1.0  # placeholder so request() can close over it
    baseline = execute_request(request("none", "none"))
    horizon = max(baseline.job_time, 1.0)

    requests: List[RunRequest] = []
    for level in levels:
        if level != "none":
            requests.append(request("none", level))
        requests.append(request(tuning, level))
    outcomes = run_requests(requests, max_workers=max_workers)

    rows: List[ResilienceRow] = []
    cursor = 0
    for level in levels:
        if level == "none":
            default = baseline
        else:
            default = outcomes[cursor]
            cursor += 1
        tuned = outcomes[cursor]
        cursor += 1
        rows.append(ResilienceRow(level=level, default=default, tuned=tuned))

    return ResilienceReport(
        case_name=case_name,
        seed=seed,
        tuning=tuning,
        baseline=baseline,
        rows=tuple(rows),
        digest=combined_digest([baseline] + list(outcomes)),
        plans_json=_level_plans(fault_levels, levels, seed, horizon, plan_json),
    )


def _level_plans(
    fault_levels: Dict[str, Dict[str, float]],
    levels: Tuple[str, ...],
    seed: int,
    horizon: float,
    plan_json: Optional[str],
) -> Tuple[Tuple[str, str], ...]:
    """Serialized plan per faulted level (what each worker replayed).

    Workers draw their plan from a fresh ``RngRegistry(seed)``'s
    ``("faults", "plan")`` stream against the default 18-slave cluster,
    so regenerating with the same inputs here reproduces the exact plan
    without another simulation run.
    """
    from repro.cluster.topology import ClusterSpec
    from repro.faults import generate_fault_plan, plan_to_json
    from repro.sim.rng import RngRegistry

    out: List[Tuple[str, str]] = []
    num_nodes = ClusterSpec().num_slaves
    for level in levels:
        knobs = fault_levels[level]
        if not knobs:
            continue
        if plan_json is not None:
            out.append((level, plan_json))
            continue
        plan = generate_fault_plan(
            RngRegistry(seed).stream("faults", "plan"),
            num_nodes=num_nodes,
            horizon=horizon,
            crashes=int(knobs.get("crashes", 0)),
            container_kills=int(knobs.get("container_kills", 0)),
            degraded=int(knobs.get("degraded", 0)),
            link_degraded=int(knobs.get("link_degraded", 0)),
            link_flaky=int(knobs.get("link_flaky", 0)),
            rack_partitions=int(knobs.get("rack_partitions", 0)),
            decommissions=int(knobs.get("decommissions", 0)),
            joins=int(knobs.get("joins", 0)),
            spot_preempts=int(knobs.get("spot_preempts", 0)),
            tuner_crashes=int(knobs.get("tuner_crashes", 0)),
            monitor_outages=int(knobs.get("monitor_outages", 0)),
            stats_gaps=int(knobs.get("stats_gaps", 0)),
        )
        out.append((level, plan_to_json(plan)))
    return tuple(out)
