"""Task-timeline export: turn a job run into a Gantt-style trace.

Useful for eyeballing why a configuration wins: wave structure, the
map/shuffle overlap, stragglers, and retry gaps all become visible.
Exports CSV (one row per task attempt) and a terminal swimlane sketch.
"""

from __future__ import annotations

import csv
import io
from typing import List, Optional

from repro.mapreduce.jobspec import TaskType
from repro.yarn.app_master import JobResult

CSV_FIELDS = [
    "task_id",
    "type",
    "node",
    "attempt",
    "wave",
    "start",
    "end",
    "duration",
    "cpu_seconds",
    "mem_utilization",
    "cpu_utilization",
    "spilled_records",
    "failed",
]


def to_csv(result: JobResult) -> str:
    """One CSV row per task attempt, ordered by start time."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=CSV_FIELDS)
    writer.writeheader()
    for s in sorted(result.task_stats, key=lambda s: (s.start_time, str(s.task_id))):
        writer.writerow(
            {
                "task_id": str(s.task_id),
                "type": s.task_type.value,
                "node": s.node_id,
                "attempt": s.attempt,
                "wave": s.wave,
                "start": f"{s.start_time:.3f}",
                "end": f"{s.end_time:.3f}",
                "duration": f"{s.duration:.3f}",
                "cpu_seconds": f"{s.cpu_seconds:.3f}",
                "mem_utilization": f"{s.memory_utilization:.4f}",
                "cpu_utilization": f"{s.cpu_utilization:.4f}",
                "spilled_records": s.spilled_records,
                "failed": int(s.failed),
            }
        )
    return buf.getvalue()


def save_csv(result: JobResult, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(to_csv(result))


def swimlanes(
    result: JobResult,
    width: int = 100,
    max_lanes: Optional[int] = 24,
) -> str:
    """A terminal Gantt sketch: one lane per node, ``m``/``r`` glyphs.

    Each character cell covers ``duration/width`` seconds; a cell shows
    ``m`` (map), ``r`` (reduce), ``B`` (both ran in that cell on that
    node), or ``x`` (a failed attempt touched it).
    """
    if not result.task_stats:
        return "(no tasks)"
    t0 = min(s.start_time for s in result.task_stats)
    t1 = max(s.end_time for s in result.task_stats)
    span = max(1e-9, t1 - t0)
    nodes = sorted({s.node_id for s in result.task_stats})
    if max_lanes is not None:
        nodes = nodes[:max_lanes]
    lanes = {n: [" "] * width for n in nodes}
    for s in result.task_stats:
        if s.node_id not in lanes:
            continue
        lane = lanes[s.node_id]
        a = int((s.start_time - t0) / span * (width - 1))
        b = max(a, int((s.end_time - t0) / span * (width - 1)))
        glyph = "x" if s.failed else ("m" if s.task_type is TaskType.MAP else "r")
        for i in range(a, b + 1):
            if lane[i] == " " or lane[i] == glyph:
                lane[i] = glyph
            else:
                lane[i] = "x" if glyph == "x" else "B"
    lines: List[str] = [
        f"t = {t0:.0f}s {'-' * (width - 20)} {t1:.0f}s",
    ]
    for n in nodes:
        lines.append(f"node{n:02d} |{''.join(lanes[n])}|")
    return "\n".join(lines)
