"""Task-timeline export: turn a job run into a Gantt-style trace.

Useful for eyeballing why a configuration wins: wave structure, the
map/shuffle overlap, stragglers, and retry gaps all become visible.
Exports CSV (one row per task attempt) and a terminal swimlane sketch.

:func:`run_traced_case` is the ``repro trace`` driver: one simulated
run with the telemetry exporters attached, yielding a JSONL event log,
a Chrome trace (load in Perfetto / chrome://tracing), and an aggregated
metrics summary -- all keyed to simulated time, byte-identical across
same-seed runs.
"""

from __future__ import annotations

import csv
import io
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.mapreduce.jobspec import TaskType
from repro.yarn.app_master import JobResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import ChromeTraceExporter, JsonlExporter, MetricsSummary

CSV_FIELDS = [
    "task_id",
    "type",
    "node",
    "attempt",
    "wave",
    "start",
    "end",
    "duration",
    "cpu_seconds",
    "mem_utilization",
    "cpu_utilization",
    "spilled_records",
    "failed",
]


def to_csv(result: JobResult) -> str:
    """One CSV row per task attempt, ordered by start time."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=CSV_FIELDS)
    writer.writeheader()
    for s in sorted(result.task_stats, key=lambda s: (s.start_time, str(s.task_id))):
        writer.writerow(
            {
                "task_id": str(s.task_id),
                "type": s.task_type.value,
                "node": s.node_id,
                "attempt": s.attempt,
                "wave": s.wave,
                "start": f"{s.start_time:.3f}",
                "end": f"{s.end_time:.3f}",
                "duration": f"{s.duration:.3f}",
                "cpu_seconds": f"{s.cpu_seconds:.3f}",
                "mem_utilization": f"{s.memory_utilization:.4f}",
                "cpu_utilization": f"{s.cpu_utilization:.4f}",
                "spilled_records": s.spilled_records,
                "failed": int(s.failed),
            }
        )
    return buf.getvalue()


def save_csv(result: JobResult, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(to_csv(result))


def swimlanes(
    result: JobResult,
    width: int = 100,
    max_lanes: Optional[int] = 24,
) -> str:
    """A terminal Gantt sketch: one lane per node, ``m``/``r`` glyphs.

    Each character cell covers ``duration/width`` seconds; a cell shows
    ``m`` (map), ``r`` (reduce), ``B`` (both ran in that cell on that
    node), or ``x`` (a failed attempt touched it).
    """
    if not result.task_stats:
        return "(no tasks)"
    t0 = min(s.start_time for s in result.task_stats)
    t1 = max(s.end_time for s in result.task_stats)
    span = max(1e-9, t1 - t0)
    nodes = sorted({s.node_id for s in result.task_stats})
    if max_lanes is not None:
        nodes = nodes[:max_lanes]
    lanes = {n: [" "] * width for n in nodes}
    for s in result.task_stats:
        if s.node_id not in lanes:
            continue
        lane = lanes[s.node_id]
        a = int((s.start_time - t0) / span * (width - 1))
        b = max(a, int((s.end_time - t0) / span * (width - 1)))
        glyph = "x" if s.failed else ("m" if s.task_type is TaskType.MAP else "r")
        for i in range(a, b + 1):
            if lane[i] == " " or lane[i] == glyph:
                lane[i] = glyph
            else:
                lane[i] = "x" if glyph == "x" else "B"
    lines: List[str] = [
        f"t = {t0:.0f}s {'-' * (width - 20)} {t1:.0f}s",
    ]
    for n in nodes:
        lines.append(f"node{n:02d} |{''.join(lanes[n])}|")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The ``repro trace`` driver: one run, all telemetry exporters attached.
# ----------------------------------------------------------------------
#: Stable artifact filenames inside the output directory -- the CI
#: trace-digest gate compares two same-seed ``trace.jsonl`` byte by byte.
TRACE_JSONL = "trace.jsonl"
TRACE_CHROME = "trace.chrome.json"
TRACE_SUMMARY = "trace.summary.txt"


@dataclass
class TracedRun:
    """One traced simulation run plus its attached exporters."""

    case_name: str
    seed: int
    tuning: str
    job_time: float
    succeeded: bool
    events: "JsonlExporter"
    chrome: "ChromeTraceExporter"
    summary: "MetricsSummary"

    def digest(self) -> str:
        """sha256 of the JSONL log (the determinism gate's unit)."""
        return self.events.digest()

    def save(self, out_dir: str) -> Dict[str, str]:
        """Write all artifacts under *out_dir*; returns name -> path."""
        os.makedirs(out_dir, exist_ok=True)
        paths = {
            TRACE_JSONL: os.path.join(out_dir, TRACE_JSONL),
            TRACE_CHROME: os.path.join(out_dir, TRACE_CHROME),
            TRACE_SUMMARY: os.path.join(out_dir, TRACE_SUMMARY),
        }
        self.events.save(paths[TRACE_JSONL])
        self.chrome.save(paths[TRACE_CHROME])
        with open(paths[TRACE_SUMMARY], "w") as fh:
            fh.write(self.summary.render() + "\n")
        return paths


def run_traced_case(
    case_name: str = "wordcount-wikipedia",
    seed: int = 1,
    tuning: str = "none",
    num_blocks: Optional[int] = None,
    num_reducers: Optional[int] = None,
    categories: Optional[Sequence[str]] = None,
    include_sim: bool = False,
) -> TracedRun:
    """Run one benchmark case with every telemetry exporter attached.

    Builds a fresh :class:`~repro.experiments.harness.SimCluster`,
    subscribes the JSONL, Chrome-trace, and metrics-summary exporters
    to its bus, then runs the (optionally tuned) job exactly as
    :func:`repro.experiments.parallel.execute_request` would.  The
    subscriptions only add passive observers, so the simulated outcome
    is bit-identical to an untraced run of the same request.

    ``categories`` defaults to every category except the per-calendar-
    event ``sim`` firehose; pass ``include_sim=True`` to add it.  The
    summary subscribes to the same explicit categories (never the
    wildcard, which would implicitly turn the firehose on).
    """
    import numpy as np

    from repro.experiments.harness import SimCluster
    from repro.experiments.parallel import RunRequest, parse_tuning, resolve_case
    from repro.telemetry import (
        DEFAULT_EXPORT_CATEGORIES,
        ChromeTraceExporter,
        JsonlExporter,
        MetricsSummary,
    )
    from repro.workloads.suite import make_job_spec

    request = RunRequest(
        case_name=case_name,
        seed=seed,
        tuning=tuning,
        num_blocks=num_blocks,
        num_reducers=num_reducers,
    )
    case = resolve_case(request)
    cats = tuple(categories) if categories is not None else DEFAULT_EXPORT_CATEGORIES
    if include_sim and "sim" not in cats:
        cats = cats + ("sim",)

    sc = SimCluster(seed=seed)
    events = JsonlExporter().attach(sc.telemetry, categories=cats)
    chrome = ChromeTraceExporter().attach(sc.telemetry, categories=cats)
    summary = MetricsSummary().attach(sc.telemetry, categories=cats)

    spec = make_job_spec(case, sc.hdfs)
    mode, optimizer = parse_tuning(request.tuning)
    if mode == "none":
        result = sc.run_job(spec)
    else:
        from repro.core.tuner import OnlineTuner, TunerSettings, TuningStrategy
        from repro.sim.rng import derive_seed

        strategy = (
            TuningStrategy.CONSERVATIVE
            if mode == "conservative"
            else TuningStrategy.AGGRESSIVE
        )
        tuner = OnlineTuner(
            strategy,
            settings=TunerSettings(optimizer=optimizer),
            rng=np.random.default_rng(derive_seed(seed, "tuner", case.name)),
        )
        am = tuner.submit(sc, spec)
        result = sc.sim.run_until_complete(am.completion)

    return TracedRun(
        case_name=case.name,
        seed=seed,
        tuning=request.tuning,
        job_time=result.duration,
        succeeded=result.succeeded,
        events=events,
        chrome=chrome,
        summary=summary,
    )
