"""The ``real`` experiment: tune actual worker processes end to end.

This is the paper's loop with the simulator swapped out: the
:class:`~repro.backends.local.LocalProcessBackend` runs real mapper and
reducer processes over a local corpus, the central monitor aggregates
real wall-clock :class:`TaskStats`, and the gray-box tuner steers waves
of real task launches.  The A/B mirrors ``single-run``: one pass on the
stock configuration, one pass co-executed with the tuner, same corpus.

Timings here are real and therefore noisy -- this driver reports the
tuner's *cost trajectory* (Eq. 1 over measured utilization and spills)
alongside wall-clock, because cost is the quantity the climber
optimizes and the one that moves reliably at toy scale.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backends.local import (
    LOCAL_WORKLOADS,
    LocalProcessBackend,
    generate_corpus,
    local_job_spec,
)
from repro.core.hill_climbing import HillClimbSettings
from repro.core.tuner import OnlineTuner, TunerSettings, TuningStrategy
from repro.mapreduce.counters import Counter
from repro.sim.rng import derive_seed
from repro.yarn.app_master import JobResult

#: Search budget sized for real execution: small enough that a toy
#: corpus still yields several complete waves per task type.
REAL_SEARCH = HillClimbSettings(m=6, n=4, global_search_limit=1)


@dataclass
class RealRunResult:
    """One default-vs-tuned A/B on the local-process backend."""

    workload: str
    seed: int
    tuning: str
    num_splits: int
    num_reducers: int
    default_time: float
    tuned_time: float
    default_spills: float
    tuned_spills: float
    #: Completed tuning waves per task type ("map"/"reduce").
    waves: Dict[str, int] = field(default_factory=dict)
    #: (wave, cost) points of the map-side search, in wave order.
    cost_trajectory: List[Tuple[int, float]] = field(default_factory=list)
    #: Eq-1 cost of the first and best evaluated map-side samples.
    first_cost: Optional[float] = None
    best_cost: Optional[float] = None
    #: A few headline knobs from the tuner's final recommendation.
    recommended: Dict[str, float] = field(default_factory=dict)
    succeeded: bool = True

    @property
    def cost_improvement(self) -> float:
        """Relative Eq-1 cost drop from the first sampled wave to the best."""
        if not self.first_cost or self.best_cost is None:
            return 0.0
        return (self.first_cost - self.best_cost) / self.first_cost


def _strategy(tuning: str) -> TuningStrategy:
    if tuning == "aggressive":
        return TuningStrategy.AGGRESSIVE
    if tuning == "conservative":
        return TuningStrategy.CONSERVATIVE
    raise ValueError(f"unknown tuning mode {tuning!r}")


def run_real_case(
    workload: str = "wordcount",
    seed: int = 1,
    tuning: str = "aggressive",
    num_splits: int = 24,
    split_kb: int = 32,
    num_reducers: int = 4,
    slots: Optional[int] = None,
    workspace: Optional[str] = None,
) -> RealRunResult:
    """Run the default-vs-tuned A/B for one workload on real processes."""
    if workload not in LOCAL_WORKLOADS:
        raise ValueError(
            f"unknown workload {workload!r}, want one of {sorted(LOCAL_WORKLOADS)}"
        )
    own_workspace = workspace is None
    if own_workspace:
        workspace = tempfile.mkdtemp(prefix="repro-real-")
    corpus_dir = os.path.join(workspace, "corpus")
    generate_corpus(corpus_dir, num_splits=num_splits, split_kb=split_kb, seed=seed)

    default_result = _run_default(
        workload, corpus_dir, num_reducers, workspace, slots, seed
    )
    tuned_result, tuner, job_id = _run_tuned(
        workload, corpus_dir, num_reducers, workspace, slots, seed, tuning
    )

    summary = tuner.session_summary(job_id)
    searches = summary.get("searches", {})
    waves = {ttype: s.get("waves", 0) for ttype, s in searches.items()}
    map_search = searches.get("map", {})
    trajectory = [tuple(p) for p in map_search.get("cost_trajectory", [])]
    recommended: Dict[str, float] = {}
    try:
        rec = tuner.recommended_config(job_id)
    except Exception:
        rec = None
    if rec is not None:
        for name in (
            "mapreduce.task.io.sort.mb",
            "mapreduce.map.sort.spill.percent",
            "mapreduce.task.io.sort.factor",
            "mapreduce.reduce.shuffle.parallelcopies",
        ):
            try:
                recommended[name] = rec[name]
            except KeyError:
                pass

    result = RealRunResult(
        workload=workload,
        seed=seed,
        tuning=tuning,
        num_splits=num_splits,
        num_reducers=num_reducers,
        default_time=default_result.duration,
        tuned_time=tuned_result.duration,
        default_spills=default_result.counters.get(Counter.SPILLED_RECORDS),
        tuned_spills=tuned_result.counters.get(Counter.SPILLED_RECORDS),
        waves=waves,
        cost_trajectory=trajectory,
        first_cost=trajectory[0][1] if trajectory else None,
        best_cost=map_search.get("best_cost"),
        recommended=recommended,
        succeeded=default_result.succeeded and tuned_result.succeeded,
    )
    if own_workspace:
        import shutil

        shutil.rmtree(workspace, ignore_errors=True)
    return result


def _run_default(
    workload: str,
    corpus_dir: str,
    num_reducers: int,
    workspace: str,
    slots: Optional[int],
    seed: int,
) -> JobResult:
    spec = local_job_spec(
        workload, corpus_dir, num_reducers, name=f"{workload}-default"
    )
    with LocalProcessBackend(
        workspace=os.path.join(workspace, "default"), slots=slots, seed=seed
    ) as backend:
        return backend.run_job(spec)


def _run_tuned(
    workload: str,
    corpus_dir: str,
    num_reducers: int,
    workspace: str,
    slots: Optional[int],
    seed: int,
    tuning: str,
) -> Tuple[JobResult, OnlineTuner, str]:
    spec = local_job_spec(
        workload, corpus_dir, num_reducers, name=f"{workload}-{tuning}"
    )
    tuner = OnlineTuner(
        _strategy(tuning),
        settings=TunerSettings(hill_climb=REAL_SEARCH),
        rng=np.random.default_rng(derive_seed(seed, "real-tuner", workload)),
    )
    with LocalProcessBackend(
        workspace=os.path.join(workspace, "tuned"), slots=slots, seed=seed
    ) as backend:
        handle = tuner.submit_to(backend, spec)
        result = backend.wait(handle)
    return result, tuner, spec.job_id


def render_real_report(result: RealRunResult) -> str:
    """Human-readable report for the CLI."""
    lines = [
        f"workload: {result.workload}  seed={result.seed}  tuning={result.tuning}"
        f"  splits={result.num_splits}  reducers={result.num_reducers}",
        f"  default : {result.default_time:7.2f} s"
        f"  ({result.default_spills:,.0f} spilled records)",
        f"  tuned   : {result.tuned_time:7.2f} s"
        f"  ({result.tuned_spills:,.0f} spilled records)",
        "  waves   : "
        + ", ".join(f"{t}={n}" for t, n in sorted(result.waves.items())),
    ]
    if result.cost_trajectory:
        path = " -> ".join(f"{c:.3f}" for _w, c in result.cost_trajectory)
        lines.append(f"  map cost: {path}  ({100 * result.cost_improvement:+.1f}%)")
    if result.recommended:
        lines.append("  recommended map-side config:")
        for name, value in sorted(result.recommended.items()):
            lines.append(f"    {name} = {value:g}")
    if not result.succeeded:
        lines.append("  STATUS  : FAILED")
    return "\n".join(lines)
