"""The elasticity experiment: job performance under cluster churn.

Protocol: for each workload profile, one fault-free run with the
default configuration fixes the *baseline* and the churn scenario's
time horizon.  Then, per churn level (``low``, ``high``), the same job
runs under a generated elastic scenario -- nodes decommission, join,
and get spot-preempted mid-run -- co-executed with the online tuner,
and the report compares job time, recovery outcome, and the
environmental toll (killed/migrated attempts) against the baseline.

Every run is a declarative :class:`RunRequest`, so the sweep fans out
over the process pool and the report's combined digest is
bit-identical for any worker count (the CI gate's elastic case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.parallel import (
    RunOutcome,
    RunRequest,
    combined_digest,
    run_requests,
)

#: Churn-scenario knobs per level (fed to ``generate_fault_plan``; the
#: ``horizon`` knob is added at run time from the measured baseline).
ELASTIC_LEVELS: Dict[str, Dict[str, float]] = {
    "none": {},
    "low": {"decommissions": 1, "joins": 1},
    "high": {"decommissions": 2, "joins": 2, "spot_preempts": 2},
}

#: One shrunk instance per distinct workload profile of Table 3 (the
#: "six profiles"): shuffle-heavy (terasort, bigram), map-heavy
#: (wordcount, inverted-index), compute-heavy (text-search, bbp).
#: Sized so the waves cover a real fraction of the 18-slave cluster --
#: sparser instances leave so many nodes idle that churn routinely
#: lands on machines hosting no work and the comparison degenerates.
ELASTIC_CASES: Tuple[Tuple[str, int, int], ...] = (
    ("terasort", 24, 8),
    ("bigram-freebase", 12, 6),
    ("wordcount-wikipedia", 12, 6),
    ("inverted-index-wikipedia", 12, 6),
    ("text-search-freebase", 12, 6),
    ("bbp", 8, 2),
)


@dataclass(frozen=True)
class ElasticRow:
    """Baseline-vs-churned outcomes for one case at one churn level."""

    case_name: str
    level: str
    baseline: RunOutcome
    churned: RunOutcome

    @property
    def slowdown(self) -> float:
        """Churn-induced slowdown vs the fault-free baseline."""
        if self.baseline.job_time <= 0:
            return 0.0
        return (
            self.churned.job_time - self.baseline.job_time
        ) / self.baseline.job_time


@dataclass(frozen=True)
class ElasticReport:
    """Everything the ``elastic`` subcommand prints."""

    seed: int
    tuning: str
    #: Per-case fault-free outcomes, in :data:`ELASTIC_CASES` order.
    baselines: Tuple[Tuple[str, RunOutcome], ...]
    rows: Tuple[ElasticRow, ...]
    digest: str


def run_elastic_experiment(
    seed: int = 1,
    levels: Tuple[str, ...] = ("none", "low", "high"),
    tuning: str = "conservative",
    cases: Optional[Tuple[Tuple[str, int, int], ...]] = None,
    max_workers: Optional[int] = None,
) -> ElasticReport:
    """Sweep churn levels across the workload profiles.

    Each case's fault-free baseline both anchors the comparison and
    fixes the churn plan's horizon, so decommissions/joins/preemptions
    land while the job is actually running.
    """
    cases = cases if cases is not None else ELASTIC_CASES
    unknown = [lv for lv in levels if lv not in ELASTIC_LEVELS]
    if unknown:
        raise ValueError(
            f"unknown churn level(s) {unknown}, "
            f"want a subset of {sorted(ELASTIC_LEVELS)}"
        )

    base_requests = [
        RunRequest(
            case_name=name, seed=seed, num_blocks=blocks, num_reducers=reducers
        )
        for name, blocks, reducers in cases
    ]
    base_outcomes = run_requests(base_requests, max_workers=max_workers)
    baselines = tuple(
        (case[0], outcome) for case, outcome in zip(cases, base_outcomes)
    )

    churn_requests: List[RunRequest] = []
    keyed: List[Tuple[str, str, RunOutcome]] = []
    for (name, blocks, reducers), baseline in zip(cases, base_outcomes):
        horizon = max(baseline.job_time, 1.0)
        for level in levels:
            knobs = ELASTIC_LEVELS[level]
            if not knobs:
                continue
            churn_requests.append(
                RunRequest.build(
                    name,
                    seed,
                    tuning=tuning,
                    num_blocks=blocks,
                    num_reducers=reducers,
                    faults={**knobs, "horizon": horizon},
                )
            )
            keyed.append((name, level, baseline))
    churn_outcomes = run_requests(churn_requests, max_workers=max_workers)

    rows = tuple(
        ElasticRow(case_name=name, level=level, baseline=baseline, churned=outcome)
        for (name, level, baseline), outcome in zip(keyed, churn_outcomes)
    )
    return ElasticReport(
        seed=seed,
        tuning=tuning,
        baselines=baselines,
        rows=rows,
        digest=combined_digest(list(base_outcomes) + list(churn_outcomes)),
    )
