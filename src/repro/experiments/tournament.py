"""The optimizer tournament: race search backends on identical seeds.

MRONLINE commits to one search strategy -- gray-box smart hill
climbing -- and argues for it qualitatively (Section 5's three
properties).  The tournament quantifies that choice: every registered
backend (:data:`repro.core.optimizers.OPTIMIZER_BACKENDS`) runs the
same aggressive online-tuning session on the same workloads and seeds,
and is scored on

* **best cost** -- the Equation-1 cost of the best validated
  configuration each search ends with (per task-type search, summed);
* **tuned job time** -- a fresh run of the same job under each
  backend's recommended configuration;
* **samples to target** -- cost evaluations spent before the running
  best first enters the target band (within
  :data:`TARGET_TOLERANCE` of the best final cost any backend reached
  on that case x seed), the convergence-speed metric.

Entries are independent simulations, so they fan out over the process
pool like any other experiment; every entry derives its RNG streams
from its own seed, making the whole tournament bit-identical across
worker counts.  ``benchmarks/test_ablation_optimizer_tournament.py``
renders the full report; the CI ``tuner-tournament`` job runs a
small-budget variant and gates the hill climber's pinned best cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.optimizers import OPTIMIZER_BACKENDS

#: A backend "reached the target" once its running best cost is within
#: this factor of the best final cost any backend achieved on the same
#: (case, seed, task type).
TARGET_TOLERANCE = 1.05

#: Tournament budgets: ``small`` keeps a full backend x workload grid
#: under a couple of minutes (the CI gate's variant); ``paper`` runs
#: every backend with its default settings.
BUDGETS = ("small", "paper")


def budget_settings(backend: str, budget: str):
    """The settings object for *backend* under *budget*.

    ``None`` means the backend's own defaults (the ``paper`` budget).
    Small budgets are scaled so every backend gets waves of comparable
    size and a comparable total-evaluation ceiling, keeping the race
    about search strategy rather than sample count.
    """
    if budget not in BUDGETS:
        raise ValueError(f"unknown budget {budget!r}, want one of {BUDGETS}")
    if budget == "paper":
        return None
    if backend == "hill_climb":
        from repro.core.hill_climbing import HillClimbSettings

        return HillClimbSettings(m=8, n=6, global_search_limit=2)
    if backend == "spsa":
        from repro.core.optimizers.spsa import SpsaSettings

        return SpsaSettings(pairs=2, iterations=8, patience=4)
    if backend in ("random", "lhs"):
        from repro.core.optimizers.random_search import RandomSearchSettings

        return RandomSearchSettings(wave_size=8, patience=2, max_waves=6)
    raise ValueError(
        f"unknown optimizer backend {backend!r}, want one of {OPTIMIZER_BACKENDS}"
    )


@dataclass(frozen=True)
class TournamentEntry:
    """One backend x case x seed race lane (picklable work item)."""

    backend: str
    case_name: str
    seed: int
    num_blocks: Optional[int] = None
    num_reducers: Optional[int] = None
    budget: str = "small"

    def __post_init__(self) -> None:
        if self.backend not in OPTIMIZER_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}, want one of {OPTIMIZER_BACKENDS}"
            )
        budget_settings(self.backend, self.budget)  # validates the budget


@dataclass(frozen=True)
class SearchTrace:
    """One task-type search's scoring inputs, as plain data."""

    task_type: str
    best_cost: Optional[float]
    samples_proposed: int
    tasks_evaluated: int
    #: ``(observation index, running best cost)`` checkpoints.
    trajectory: Tuple[Tuple[int, float], ...]


@dataclass(frozen=True)
class TournamentResult:
    """What one race lane reports back across the process boundary."""

    entry: TournamentEntry
    succeeded: bool
    #: Duration of the tuning session's job (the expedited test run).
    tuning_job_time: float
    #: Duration of a fresh run under the recommended configuration.
    tuned_job_time: float
    traces: Tuple[SearchTrace, ...]

    @property
    def total_best_cost(self) -> Optional[float]:
        costs = [t.best_cost for t in self.traces if t.best_cost is not None]
        return sum(costs) if costs else None

    @property
    def samples_proposed(self) -> int:
        return sum(t.samples_proposed for t in self.traces)


def run_tournament_entry(entry: TournamentEntry) -> TournamentResult:
    """Top-level worker: one backend's full tuning session + tuned run."""
    import numpy as np

    from repro.core.tuner import OnlineTuner, TunerSettings, TuningStrategy
    from repro.experiments.harness import SimCluster
    from repro.experiments.parallel import RunRequest, resolve_case
    from repro.sim.rng import derive_seed
    from repro.workloads.suite import make_job_spec

    request = RunRequest(
        case_name=entry.case_name,
        seed=entry.seed,
        num_blocks=entry.num_blocks,
        num_reducers=entry.num_reducers,
    )
    case = resolve_case(request)
    sc = SimCluster(seed=entry.seed)
    spec = make_job_spec(case, sc.hdfs)
    tuner = OnlineTuner(
        TuningStrategy.AGGRESSIVE,
        settings=TunerSettings(
            optimizer=entry.backend,
            optimizer_settings=budget_settings(entry.backend, entry.budget),
        ),
        rng=np.random.default_rng(derive_seed(entry.seed, "tuner", case.name)),
    )
    am = tuner.submit(sc, spec)
    result = sc.sim.run_until_complete(am.completion)
    summary = tuner.session_summary(spec.job_id)
    recommended = tuner.recommended_config(spec.job_id)

    sc2 = SimCluster(seed=entry.seed)
    tuned = sc2.run_job(make_job_spec(case, sc2.hdfs, base_config=recommended))

    traces = tuple(
        SearchTrace(
            task_type=task_type,
            best_cost=search["best_cost"],
            samples_proposed=search["samples_proposed"],
            tasks_evaluated=search["tasks_evaluated"],
            trajectory=tuple(
                (int(n), float(c)) for n, c in search["cost_trajectory"]
            ),
        )
        for task_type, search in sorted(summary["searches"].items())
    )
    return TournamentResult(
        entry=entry,
        succeeded=bool(result.succeeded and tuned.succeeded),
        tuning_job_time=float(result.duration),
        tuned_job_time=float(tuned.duration),
        traces=traces,
    )


@dataclass(frozen=True)
class TournamentRow:
    """One backend's scored line for one (case, seed)."""

    backend: str
    case_name: str
    seed: int
    succeeded: bool
    best_cost: Optional[float]
    tuning_job_time: float
    tuned_job_time: float
    samples_proposed: int
    #: Observations spent until every task-type search was inside the
    #: target band; ``None`` when some search never got there.
    samples_to_target: Optional[int]


@dataclass
class TournamentReport:
    """All race lanes, scored against the per-(case, seed) targets."""

    budget: str
    results: List[TournamentResult]
    rows: List[TournamentRow]

    def rows_for(self, case_name: str) -> List[TournamentRow]:
        return [r for r in self.rows if r.case_name == case_name]

    def backend_rows(self, backend: str) -> List[TournamentRow]:
        return [r for r in self.rows if r.backend == backend]


def _samples_to_target(
    result: TournamentResult,
    targets: Dict[Tuple[str, int, str], float],
) -> Optional[int]:
    """Observations until every task-type search entered its band."""
    total = 0
    for trace in result.traces:
        key = (result.entry.case_name, result.entry.seed, trace.task_type)
        target = targets.get(key)
        if target is None:
            continue
        reached = [n for n, cost in trace.trajectory if cost <= target]
        if not reached:
            return None
        total += reached[0]
    return total


def run_tournament(
    cases: Sequence[Tuple[str, Optional[int], Optional[int]]],
    seeds: Sequence[int],
    backends: Sequence[str] = OPTIMIZER_BACKENDS,
    budget: str = "small",
    max_workers: Optional[int] = None,
) -> TournamentReport:
    """Race *backends* over ``(case_name, num_blocks, num_reducers)``
    workloads x *seeds*, all lanes fanned out over the process pool.

    Every backend sees identical seeds (and therefore identical
    clusters, datasets, and fault-free conditions); only the search
    strategy differs.  Scoring happens after the barrier because the
    samples-to-target band is relative to the best final cost *any*
    backend reached on that (case, seed, task type).
    """
    from repro.experiments.parallel import ParallelExperimentRunner

    entries = [
        TournamentEntry(
            backend=backend,
            case_name=name,
            seed=seed,
            num_blocks=blocks,
            num_reducers=reducers,
            budget=budget,
        )
        for name, blocks, reducers in cases
        for seed in seeds
        for backend in backends
    ]
    runner = ParallelExperimentRunner(
        max_workers=max_workers, worker=run_tournament_entry
    )
    results: List[TournamentResult] = runner.run(entries)

    targets: Dict[Tuple[str, int, str], float] = {}
    for result in results:
        for trace in result.traces:
            if trace.best_cost is None:
                continue
            key = (result.entry.case_name, result.entry.seed, trace.task_type)
            best = targets.get(key)
            if best is None or trace.best_cost < best:
                targets[key] = trace.best_cost
    targets = {key: best * TARGET_TOLERANCE for key, best in targets.items()}

    rows = [
        TournamentRow(
            backend=result.entry.backend,
            case_name=result.entry.case_name,
            seed=result.entry.seed,
            succeeded=result.succeeded,
            best_cost=result.total_best_cost,
            tuning_job_time=result.tuning_job_time,
            tuned_job_time=result.tuned_job_time,
            samples_proposed=result.samples_proposed,
            samples_to_target=_samples_to_target(result, targets),
        )
        for result in results
    ]
    return TournamentReport(budget=budget, results=results, rows=rows)
