"""Plain-text reporting: the tables/series the benchmarks print.

Every bench prints a :class:`FigureReport` whose rows mirror the bars
or points of the corresponding paper figure, so paper-vs-measured
comparison is a side-by-side read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class FigureReport:
    """One reproduced figure/table: labelled series over categories."""

    figure: str
    title: str
    categories: List[str]
    #: series label -> one value per category
    series: Dict[str, List[float]] = field(default_factory=dict)
    unit: str = "s"
    notes: List[str] = field(default_factory=list)

    def add_series(self, label: str, values: Sequence[float]) -> None:
        values = list(values)
        if len(values) != len(self.categories):
            raise ValueError(
                f"{label}: {len(values)} values for {len(self.categories)} categories"
            )
        self.series[label] = values

    def improvement_over(self, baseline: str, candidate: str) -> List[float]:
        """Per-category fractional improvement of candidate vs baseline."""
        base = self.series[baseline]
        cand = self.series[candidate]
        return [
            (b - c) / b if b else 0.0
            for b, c in zip(base, cand)
        ]

    def render(self) -> str:
        headers = [self.figure] + [f"{c} ({self.unit})" for c in self.categories]
        rows = [[label] + values for label, values in self.series.items()]
        out = [f"== {self.figure}: {self.title} ==", format_table(headers, rows)]
        # "x% better" only makes sense for lower-is-better time series.
        if self.unit == "s" and "Default" in self.series and "MRONLINE" in self.series:
            imp = self.improvement_over("Default", "MRONLINE")
            out.append(
                "MRONLINE vs Default: "
                + ", ".join(
                    f"{c}: {100 * i:+.1f}%" for c, i in zip(self.categories, imp)
                )
            )
        out.extend(f"note: {n}" for n in self.notes)
        return "\n".join(out)
