"""Integration harness: build a cluster, submit jobs, repeat with seeds.

:class:`SimCluster` assembles one simulated deployment (engine, nodes,
network, HDFS, resource manager, node managers, central monitor) and
offers a JobClient-like interface.  :class:`ExperimentRunner` runs the
paper's protocol: every measurement is repeated over several seeds
("we repeat each experiment four times ... and report the average").
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.topology import Cluster, ClusterSpec, build_cluster
from repro.core.configuration import Configuration
from repro.hdfs.filesystem import HdfsFileSystem
from repro.mapreduce.jobspec import JobSpec
from repro.monitor.central_monitor import CentralMonitor
from repro.monitor.slave_monitor import SlaveMonitor
from repro.sim.engine import Simulator
from repro.sim.events import AllOf
from repro.sim.rng import RngRegistry
from repro.workloads.suite import BenchmarkCase, make_job_spec
from repro.yarn.app_master import ConfigProvider, JobResult, LaunchGate, MRAppMaster
from repro.yarn.fair_scheduler import FairScheduler
from repro.yarn.node_manager import NodeManager
from repro.yarn.resource_manager import ResourceManager
from repro.yarn.scheduler import FifoScheduler, SchedulerBase


class SimCluster:
    """One simulated YARN deployment."""

    def __init__(
        self,
        seed: int = 0,
        cluster_spec: Optional[ClusterSpec] = None,
        scheduler: str = "fifo",
        monitor_interval: float = 5.0,
        start_monitors: bool = True,
    ) -> None:
        self.seed = seed
        self.rngs = RngRegistry(seed)
        self.sim = Simulator()
        self.cluster: Cluster = build_cluster(self.sim, cluster_spec)
        self.hdfs = HdfsFileSystem(
            self.cluster, rng=self.rngs.stream("hdfs", "placement")
        )
        self.scheduler: SchedulerBase = self._make_scheduler(scheduler)
        self.rm = ResourceManager(self.sim, self.cluster, self.scheduler)
        self.node_managers: Dict[int, NodeManager] = {
            node.node_id: NodeManager(self.sim, node) for node in self.cluster.nodes
        }
        self.monitor = CentralMonitor(self.sim)
        self.slave_monitors: List[SlaveMonitor] = [
            SlaveMonitor(
                self.sim,
                nm,
                self.monitor.on_node_stats,
                monitor_interval,
                network=self.cluster.network,
            )
            for nm in self.node_managers.values()
        ]
        if start_monitors:
            for sm in self.slave_monitors:
                sm.start()
        self._submissions = 0

    def _make_scheduler(self, kind: str) -> SchedulerBase:
        if kind == "fifo":
            return FifoScheduler(self.cluster)
        if kind == "fair":
            return FairScheduler(self.cluster)
        raise ValueError(f"unknown scheduler {kind!r} (want 'fifo' or 'fair')")

    # ------------------------------------------------------------------
    # JobClient-style interface
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        config_provider: Optional[ConfigProvider] = None,
        gate: Optional[LaunchGate] = None,
        weight: float = 1.0,
    ) -> MRAppMaster:
        """Submit one job; returns its app master (already started)."""
        # Dataflow noise is keyed by (name, submission order), NOT the
        # process-global job id, so identically built clusters replay
        # identically regardless of how many jobs ran before them.
        self._submissions += 1
        am = MRAppMaster(
            self.sim,
            self.cluster,
            self.hdfs,
            self.rm,
            self.node_managers,
            spec,
            config_provider=config_provider,
            gate=gate,
            rng=self.rngs.stream("dataflow", spec.name, self._submissions),
            app_weight=weight,
        )
        am.stats_listeners.append(self.monitor.on_task_stats)
        am.start()
        return am

    def run_job(
        self,
        spec: JobSpec,
        config_provider: Optional[ConfigProvider] = None,
        gate: Optional[LaunchGate] = None,
    ) -> JobResult:
        """Submit one job and run the simulation until it completes."""
        am = self.submit(spec, config_provider=config_provider, gate=gate)
        return self.sim.run_until_complete(am.completion)

    def run_jobs(self, ams: Sequence[MRAppMaster]) -> List[JobResult]:
        """Run until every submitted job completes."""
        done = AllOf(self.sim, [am.completion for am in ams])
        return list(self.sim.run_until_complete(done))


@dataclass
class RepeatedMeasurement:
    """Aggregate of one metric over seed replicas."""

    values: List[float]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.values)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.values) if len(self.values) > 1 else 0.0


class ExperimentRunner:
    """Repeats a measurement over seeds, paper-style (4 runs, mean)."""

    def __init__(self, replicas: int = 4, base_seed: int = 1) -> None:
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.replicas = replicas
        self.base_seed = base_seed

    def seeds(self) -> List[int]:
        return [self.base_seed + i for i in range(self.replicas)]

    def measure(self, fn: Callable[[int], float]) -> RepeatedMeasurement:
        """Run ``fn(seed)`` for each replica seed and aggregate."""
        return RepeatedMeasurement([float(fn(seed)) for seed in self.seeds()])

    def run_case(
        self,
        case: BenchmarkCase,
        base_config: Optional[Configuration] = None,
        scheduler: str = "fifo",
        config_provider_factory: Optional[
            Callable[[SimCluster, JobSpec], ConfigProvider]
        ] = None,
        gate_factory: Optional[Callable[[SimCluster, JobSpec], LaunchGate]] = None,
    ) -> List[JobResult]:
        """Run one benchmark case once per seed; returns all results."""
        results = []
        for seed in self.seeds():
            sc = SimCluster(seed=seed, scheduler=scheduler)
            spec = make_job_spec(case, sc.hdfs, base_config=base_config)
            provider = (
                config_provider_factory(sc, spec) if config_provider_factory else None
            )
            gate = gate_factory(sc, spec) if gate_factory else None
            results.append(sc.run_job(spec, config_provider=provider, gate=gate))
        return results
