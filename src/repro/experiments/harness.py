"""Integration harness: build a cluster, submit jobs, repeat with seeds.

:class:`SimCluster` assembles one simulated deployment (engine, nodes,
network, HDFS, resource manager, node managers, central monitor) and
offers a JobClient-like interface.  :class:`ExperimentRunner` runs the
paper's protocol: every measurement is repeated over several seeds
("we repeat each experiment four times ... and report the average").
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.cluster.topology import Cluster, ClusterSpec, build_cluster
from repro.core.configuration import Configuration
from repro.faults import FaultInjector, FaultPlan, generate_fault_plan
from repro.hdfs.filesystem import HdfsFileSystem
from repro.mapreduce.jobspec import JobSpec
from repro.monitor.central_monitor import CentralMonitor
from repro.monitor.slave_monitor import SlaveMonitor
from repro.sim.engine import Simulator
from repro.sim.events import AllOf
from repro.sim.rng import RngRegistry
from repro.telemetry import TelemetryBus
from repro.workloads.suite import BenchmarkCase, make_job_spec
from repro.yarn.app_master import (
    ConfigProvider,
    FaultToleranceSettings,
    JobResult,
    LaunchGate,
    MRAppMaster,
)
from repro.yarn.fair_scheduler import FairScheduler
from repro.yarn.node_manager import NodeManager
from repro.yarn.resource_manager import ResourceManager
from repro.yarn.scheduler import FifoScheduler, SchedulerBase


class SimCluster:
    """One simulated YARN deployment."""

    def __init__(
        self,
        seed: int = 0,
        cluster_spec: Optional[ClusterSpec] = None,
        scheduler: str = "fifo",
        monitor_interval: float = 5.0,
        start_monitors: bool = True,
        fault_tolerance: Optional["FaultToleranceSettings"] = None,
    ) -> None:
        self.seed = seed
        self.rngs = RngRegistry(seed)
        self.sim = Simulator()
        #: The cluster-wide telemetry bus.  Always attached; with no
        #: exporter subscribed, every emission site outside the monitor
        #: feeds reduces to a cheap category check, so run digests stay
        #: bit-identical whether or not anyone is tracing.
        self.telemetry = TelemetryBus(clock=lambda: self.sim.now)
        self.sim.attach_telemetry(self.telemetry)
        self.cluster: Cluster = build_cluster(self.sim, cluster_spec)
        self.hdfs = HdfsFileSystem(
            self.cluster, rng=self.rngs.stream("hdfs", "placement")
        )
        self.scheduler: SchedulerBase = self._make_scheduler(scheduler)
        self.rm = ResourceManager(self.sim, self.cluster, self.scheduler)
        self.node_managers: Dict[int, NodeManager] = {
            node.node_id: NodeManager(self.sim, node, network=self.cluster.network)
            for node in self.cluster.nodes
        }
        # The central monitor consumes the ``stats``/``node`` feeds off
        # the bus; slave monitors publish there (sink=None) rather than
        # calling the central monitor directly.
        self.monitor = CentralMonitor(self.sim, bus=self.telemetry)
        self._monitor_interval = monitor_interval
        self._monitors_started = start_monitors
        self.slave_monitors: List[SlaveMonitor] = [
            SlaveMonitor(
                self.sim,
                nm,
                sink=None,
                interval=monitor_interval,
                network=self.cluster.network,
            )
            for nm in self.node_managers.values()
        ]
        if start_monitors:
            for sm in self.slave_monitors:
                sm.start()
        #: Retry/blacklist/speculation policy handed to every app master
        #: (``None`` = defaults: retries on, speculation off).
        self.fault_tolerance = fault_tolerance
        #: Armed by :meth:`inject_faults`; ``None`` in fault-free runs.
        self.fault_injector: Optional[FaultInjector] = None
        self._submissions = 0

    def inject_faults(
        self,
        plan: Optional[FaultPlan] = None,
        crashes: int = 0,
        container_kills: int = 0,
        degraded: int = 0,
        horizon: float = 0.0,
        link_degraded: int = 0,
        link_flaky: int = 0,
        rack_partitions: int = 0,
        decommissions: int = 0,
        joins: int = 0,
        spot_preempts: int = 0,
        tuner_crashes: int = 0,
        monitor_outages: int = 0,
        stats_gaps: int = 0,
    ) -> FaultPlan:
        """Arm fault injection, from an explicit *plan* or generated knobs.

        Without *plan*, a scenario is drawn from the dedicated
        ``("faults", "plan")`` RNG stream -- fault-free runs never touch
        that stream, so arming faults cannot perturb any other random
        draw, and the same seed always produces the same scenario.
        Per-fetch failure draws (``link_flaky``) come from the separate
        ``("faults", "fetch")`` stream so the scenario itself stays
        identical across plans that differ only in flaky windows.
        Must be called before the simulation is driven.
        """
        if self.fault_injector is not None:
            raise RuntimeError("faults already injected for this cluster")
        if plan is None:
            plan = generate_fault_plan(
                self.rngs.stream("faults", "plan"),
                num_nodes=len(self.cluster.nodes),
                horizon=horizon,
                crashes=crashes,
                container_kills=container_kills,
                degraded=degraded,
                link_degraded=link_degraded,
                link_flaky=link_flaky,
                rack_partitions=rack_partitions,
                decommissions=decommissions,
                joins=joins,
                spot_preempts=spot_preempts,
                tuner_crashes=tuner_crashes,
                monitor_outages=monitor_outages,
                stats_gaps=stats_gaps,
            )
        elastic = None
        if plan.has_elastic_faults:
            # A fully wired membership manager: joined nodes get a slave
            # monitor (when this harness runs them) and departed nodes'
            # monitors stop, so the central monitor tracks the live set.
            from repro.faults.elastic import ElasticCluster

            elastic = ElasticCluster(
                self.sim,
                self.cluster,
                self.node_managers,
                self.rm,
                start_node_monitor=self._start_slave_monitor,
                stop_node_monitor=self._stop_slave_monitor,
            )
        control = None
        if plan.has_control_faults:
            # A control-plane manager wired to this harness's central
            # monitor; tuners register themselves on submit().
            from repro.faults.control import ControlPlaneState

            control = ControlPlaneState(self.sim, monitor=self.monitor)
        self.fault_injector = FaultInjector(
            self.sim,
            self.cluster,
            self.node_managers,
            self.rm,
            plan,
            fetch_rng=self.rngs.stream("faults", "fetch"),
            elastic=elastic,
            control=control,
        )
        self.fault_injector.start()
        return plan

    def _start_slave_monitor(self, nm: NodeManager) -> None:
        """Give a freshly joined node the same monitoring as seed nodes."""
        sm = SlaveMonitor(
            self.sim,
            nm,
            sink=None,
            interval=self._monitor_interval,
            network=self.cluster.network,
        )
        self.slave_monitors.append(sm)
        if self._monitors_started:
            sm.start()

    def _stop_slave_monitor(self, node_id: int) -> None:
        for sm in self.slave_monitors:
            if sm.nm.node.node_id == node_id:
                sm.stop()

    def _make_scheduler(self, kind: str) -> SchedulerBase:
        if kind == "fifo":
            return FifoScheduler(self.cluster)
        if kind == "fair":
            return FairScheduler(self.cluster)
        raise ValueError(f"unknown scheduler {kind!r} (want 'fifo' or 'fair')")

    # ------------------------------------------------------------------
    # JobClient-style interface
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        config_provider: Optional[ConfigProvider] = None,
        gate: Optional[LaunchGate] = None,
        weight: float = 1.0,
    ) -> MRAppMaster:
        """Submit one job; returns its app master (already started)."""
        # Dataflow noise is keyed by (name, submission order), NOT the
        # process-global job id, so identically built clusters replay
        # identically regardless of how many jobs ran before them.
        self._submissions += 1
        am = MRAppMaster(
            self.sim,
            self.cluster,
            self.hdfs,
            self.rm,
            self.node_managers,
            spec,
            config_provider=config_provider,
            gate=gate,
            rng=self.rngs.stream("dataflow", spec.name, self._submissions),
            app_weight=weight,
            fault_tolerance=self.fault_tolerance,
        )
        # Task stats reach the central monitor through the telemetry bus
        # (the AM emits a ``stats`` event per completed attempt), not a
        # hand-wired listener; see CentralMonitor.subscribe_to.
        if self.fault_injector is not None and self.fault_injector.elastic is not None:
            # Under elastic churn the AM receives preemption notices so
            # it can migrate doomed attempts within the grace window.
            self.fault_injector.elastic.register_app(am)
        am.start()
        return am

    def run_job(
        self,
        spec: JobSpec,
        config_provider: Optional[ConfigProvider] = None,
        gate: Optional[LaunchGate] = None,
    ) -> JobResult:
        """Submit one job and run the simulation until it completes."""
        am = self.submit(spec, config_provider=config_provider, gate=gate)
        return self.sim.run_until_complete(am.completion)

    def run_jobs(self, ams: Sequence[MRAppMaster]) -> List[JobResult]:
        """Run until every submitted job completes."""
        done = AllOf(self.sim, [am.completion for am in ams])
        return list(self.sim.run_until_complete(done))


class JobFailedError(RuntimeError):
    """A measured job did not complete successfully."""


def checked_duration(result: JobResult) -> float:
    """Duration of a *successful* job.

    Every figure protocol extracts durations through here: a job that
    exhausted its retries raises -- naming the failed tasks' reasons --
    instead of leaking a partial-run duration into an average.
    """
    if not result.succeeded:
        raise JobFailedError(f"job did not succeed: {result.failure_summary()}")
    return result.duration


@dataclass
class RepeatedMeasurement:
    """Aggregate of one metric over seed replicas."""

    values: List[float]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.values)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.values) if len(self.values) > 1 else 0.0


def _validate_case(case: Union[BenchmarkCase, str]) -> BenchmarkCase:
    """Resolve and sanity-check a case *before* any simulation starts.

    Accepts the case object or its Table-3 name.  An unknown name, an
    empty dataset, or a non-positive reducer count raises here, in the
    submitting process, instead of surfacing as a crash deep inside the
    first (possibly pooled) replica run.
    """
    if isinstance(case, str):
        from repro.workloads.suite import case_by_name

        case = case_by_name(case)  # raises KeyError on unknown names
    if case.num_reducers < 1:
        raise ValueError(f"case {case.name!r}: num_reducers must be >= 1")
    if case.dataset.num_blocks < 1:
        raise ValueError(f"case {case.name!r}: dataset has no blocks")
    return case


def _run_case_replica(
    case: BenchmarkCase,
    seed: int,
    base_config: Optional[Configuration],
    scheduler: str,
) -> JobResult:
    """Top-level (hence picklable) worker for one run_case replica."""
    from repro.backends.sim import SimBackend

    backend = SimBackend(seed=seed, scheduler=scheduler)
    spec = make_job_spec(case, backend.hdfs, base_config=base_config)
    return backend.run_job(spec)


class ExperimentRunner:
    """Repeats a measurement over seeds, paper-style (4 runs, mean).

    ``parallel=True`` fans the replica runs out over a process pool
    (``max_workers`` defaults to the ``REPRO_WORKERS`` environment knob
    and then to the CPU count); replicas are independently seeded, so
    results are bit-identical to the serial path.
    """

    def __init__(self, replicas: int = 4, base_seed: int = 1) -> None:
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.replicas = replicas
        self.base_seed = base_seed

    def seeds(self) -> List[int]:
        return [self.base_seed + i for i in range(self.replicas)]

    def measure(
        self,
        fn: Callable[[int], float],
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> RepeatedMeasurement:
        """Run ``fn(seed)`` for each replica seed and aggregate.

        The parallel path requires *fn* to be picklable (a top-level
        function or a :func:`functools.partial` over one).
        """
        if parallel:
            from repro.experiments.parallel import map_seeds

            values = map_seeds(fn, self.seeds(), max_workers=max_workers)
            return RepeatedMeasurement([float(v) for v in values])
        return RepeatedMeasurement([float(fn(seed)) for seed in self.seeds()])

    def run_case(
        self,
        case: Union[BenchmarkCase, str],
        base_config: Optional[Configuration] = None,
        scheduler: str = "fifo",
        config_provider_factory: Optional[
            Callable[[SimCluster, JobSpec], ConfigProvider]
        ] = None,
        gate_factory: Optional[Callable[[SimCluster, JobSpec], LaunchGate]] = None,
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> List[JobResult]:
        """Run one benchmark case once per seed; returns all results.

        *case* may be a :class:`BenchmarkCase` or a Table-3 case name;
        either way it is validated up front, before the first cluster is
        built.  Provider/gate factories close over live cluster state,
        so they are incompatible with the process-pool path.
        """
        case = _validate_case(case)
        if parallel:
            if config_provider_factory or gate_factory:
                raise ValueError(
                    "provider/gate factories bind to live cluster state and "
                    "cannot cross the process boundary; use parallel=False"
                )
            from functools import partial

            from repro.experiments.parallel import map_seeds

            return map_seeds(
                partial(
                    _run_case_replica,
                    case,
                    base_config=base_config,
                    scheduler=scheduler,
                ),
                self.seeds(),
                max_workers=max_workers,
            )
        from repro.backends.sim import SimBackend

        results = []
        for seed in self.seeds():
            # The serial path runs behind the Backend protocol too; the
            # factories keep receiving the live SimCluster they close over.
            backend = SimBackend(seed=seed, scheduler=scheduler)
            sc = backend.cluster
            spec = make_job_spec(case, sc.hdfs, base_config=base_config)
            provider = (
                config_provider_factory(sc, spec) if config_provider_factory else None
            )
            gate = gate_factory(sc, spec) if gate_factory else None
            results.append(
                backend.run_job(spec, config_provider=provider, gate=gate)
            )
        return results
