"""Process-pool fan-out for independent simulation runs.

Every measurement in the reproduction repeats a deterministic
simulation over seed replicas ("we repeat each experiment four times
... and report the average"), and the replicas are fully independent:
each one builds its own :class:`~repro.experiments.harness.SimCluster`
seeded by its own :class:`~repro.sim.rng.RngRegistry`.  The serial
loops in the harness and the figure benchmarks therefore leave every
core but one idle.  This module fans those loops out across a
:class:`concurrent.futures.ProcessPoolExecutor` without changing a
single simulated outcome.

Live simulator state (``SimCluster``, ``MRAppMaster``) is not
picklable, so work crosses the process boundary *declaratively*:

* :class:`RunRequest` names a run -- benchmark case, seed, serialized
  configuration overrides, scheduler kind, optional tuning mode --
  using only plain picklable values;
* :func:`execute_request` is a pure top-level worker that rebuilds the
  cluster from the request, runs the job, and returns a slim
  :class:`RunOutcome` (job time, phase times, spill/shuffle counters,
  per-node utilization summary);
* :func:`run_digest` reduces an outcome to a stable hash, so tests and
  the CI determinism gate can assert that parallel execution is
  bit-identical to the serial path.

:class:`ParallelExperimentRunner` drives any picklable worker over a
list of items with per-run timeout, one retry on worker crash, and
result collection ordered by request.  ``max_workers=1`` (or the
``REPRO_WORKERS=1`` environment knob) bypasses the pool entirely and
reproduces the exact legacy in-process path.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import os
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.core.configuration import Configuration

#: Environment knob: worker processes for seed/candidate fan-out.
#: Unset or ``0`` means ``os.cpu_count()``; ``1`` forces the exact
#: legacy serial path (no pool, no subprocesses).
WORKERS_ENV = "REPRO_WORKERS"

#: Wall-clock budget per simulation run (generous: the slowest figure
#: run is well under two minutes on commodity hardware).
DEFAULT_RUN_TIMEOUT = 1800.0

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(explicit: Optional[int] = None) -> int:
    """Resolve the worker count: explicit arg > ``REPRO_WORKERS`` > CPUs."""
    if explicit is not None:
        workers = int(explicit)
    else:
        workers = int(os.environ.get(WORKERS_ENV, "0") or "0")
        if workers == 0:
            workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


class WorkerCrashError(RuntimeError):
    """A worker died (or kept raising) beyond the retry budget."""


class RunTimeoutError(TimeoutError):
    """One run exceeded its wall-clock budget."""


# ----------------------------------------------------------------------
# Declarative run descriptions
# ----------------------------------------------------------------------
_TERASORT_SIZED = re.compile(r"^terasort-(\d+(?:\.\d+)?)gb$")

#: Base tuning modes a request may ask for.  Aggressive mode further
#: accepts an optimizer-backend suffix, ``"aggressive:<backend>"``
#: (e.g. ``"aggressive:spsa"``); bare ``"aggressive"`` means the
#: default hill climber.  The backend rides inside the existing tuning
#: string -- not a new ``RunRequest`` field -- so default requests
#: hash exactly as they always did and the pinned CI digests stand.
TUNING_MODES = ("none", "conservative", "aggressive")


def parse_tuning(tuning: str) -> Tuple[str, str]:
    """Split a tuning string into ``(mode, optimizer backend)``.

    Raises ``ValueError`` for unknown modes, unknown backends, and
    backend suffixes on non-aggressive modes (only the aggressive
    strategy runs a search).
    """
    mode, sep, backend = tuning.partition(":")
    if mode not in TUNING_MODES:
        raise ValueError(f"unknown tuning mode {mode!r}, want one of {TUNING_MODES}")
    if not sep:
        from repro.core.optimizers import DEFAULT_OPTIMIZER

        return mode, DEFAULT_OPTIMIZER
    if mode != "aggressive":
        raise ValueError(
            f"tuning mode {mode!r} does not take an optimizer suffix ({tuning!r})"
        )
    from repro.core.optimizers import OPTIMIZER_BACKENDS

    if backend not in OPTIMIZER_BACKENDS:
        raise ValueError(
            f"unknown optimizer backend {backend!r}, want one of {OPTIMIZER_BACKENDS}"
        )
    return mode, backend


@dataclass(frozen=True)
class RunRequest:
    """A picklable description of one independent simulation run.

    ``config_overrides`` is the serialized form of a
    :class:`Configuration`: a sorted tuple of ``(name, value)`` pairs
    that differ from the Table-2 defaults (``None`` = pure defaults).
    ``num_blocks``/``num_reducers`` optionally shrink the named case's
    dataset -- tests and the CI determinism gate use this to keep fixed
    experiments cheap while exercising every workload profile.
    """

    case_name: str
    seed: int
    config_overrides: Optional[Tuple[Tuple[str, float], ...]] = None
    scheduler: str = "fifo"
    tuning: str = "none"
    num_blocks: Optional[int] = None
    num_reducers: Optional[int] = None
    #: Fault-scenario knobs as sorted ``(name, value)`` pairs -- the
    #: declarative input to :func:`repro.faults.generate_fault_plan`
    #: (``crashes``, ``container_kills``, ``degraded``, ``horizon``,
    #: ``link_degraded``, ``link_flaky``, ``rack_partitions``,
    #: ``decommissions``, ``joins``, ``spot_preempts``,
    #: ``tuner_crashes``, ``monitor_outages``, ``stats_gaps``).
    #: The plan itself is drawn worker-side from the run's own seeded
    #: ``("faults", "plan")`` stream, so the same request always yields
    #: the same scenario.  Alternatively a single ``("plan", json)``
    #: entry replays an explicit serialized plan (see
    #: :func:`repro.faults.plan_to_json`).  ``None`` = fault-free.
    faults: Optional[Tuple[Tuple[str, object], ...]] = None

    def __post_init__(self) -> None:
        parse_tuning(self.tuning)  # raises on unknown mode/backend
        if self.num_blocks is not None and self.num_blocks < 1:
            raise ValueError("num_blocks override must be >= 1")
        if self.num_reducers is not None and self.num_reducers < 1:
            raise ValueError("num_reducers override must be >= 1")
        if self.faults is not None:
            names = [name for name, _v in self.faults]
            if "plan" in names:
                if len(self.faults) != 1:
                    raise ValueError("a 'plan' fault entry must be the only knob")
                from repro.faults import plan_from_json

                plan_from_json(str(dict(self.faults)["plan"]))  # validate early
                return
            known = {
                "crashes", "container_kills", "degraded", "horizon",
                "link_degraded", "link_flaky", "rack_partitions",
                "decommissions", "joins", "spot_preempts",
                "tuner_crashes", "monitor_outages", "stats_gaps",
            }
            bad = [name for name, _v in self.faults if name not in known]
            if bad:
                raise ValueError(f"unknown fault knob(s) {bad}, want a subset of {sorted(known)}")
            if float(dict(self.faults).get("horizon", 0.0)) <= 0.0:
                raise ValueError("fault scenarios need a positive 'horizon' knob")

    @classmethod
    def build(
        cls,
        case_name: str,
        seed: int,
        config: Optional[Configuration] = None,
        scheduler: str = "fifo",
        tuning: str = "none",
        num_blocks: Optional[int] = None,
        num_reducers: Optional[int] = None,
        faults: Optional[Dict[str, object]] = None,
    ) -> "RunRequest":
        """Build a request, serializing *config* into override pairs."""
        return cls(
            case_name=case_name,
            seed=seed,
            config_overrides=serialize_config(config),
            scheduler=scheduler,
            tuning=tuning,
            num_blocks=num_blocks,
            num_reducers=num_reducers,
            faults=tuple(sorted(faults.items())) if faults else None,
        )

    def config(self) -> Optional[Configuration]:
        """Rebuild the base configuration (``None`` = defaults)."""
        if self.config_overrides is None:
            return None
        return Configuration(dict(self.config_overrides))


def serialize_config(
    config: Optional[Configuration],
) -> Optional[Tuple[Tuple[str, float], ...]]:
    """Reduce a configuration to its sorted non-default entries."""
    if config is None:
        return None
    defaults = config.space.defaults()
    return tuple(
        (name, value)
        for name, value in sorted(config.as_dict().items())
        if defaults.get(name) != value
    )


def resolve_case(request: RunRequest):
    """Rebuild the benchmark case a request names (worker side).

    Table-3 names resolve directly; ``terasort-<size>gb`` resolves to
    the Figure-13 sized instance.  Block/reducer overrides shrink the
    case afterwards (the dataset is renamed so a shrunk file can never
    alias its full-size sibling inside one cluster).
    """
    from repro.workloads.suite import case_by_name, shrink_case, terasort_case

    match = _TERASORT_SIZED.match(request.case_name)
    if match:
        case = terasort_case(float(match.group(1)))
    else:
        case = case_by_name(request.case_name)
    return shrink_case(case, request.num_blocks, request.num_reducers)


# ----------------------------------------------------------------------
# Slim outcomes and the determinism digest
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunOutcome:
    """What one run reports back across the process boundary."""

    request: RunRequest
    job_time: float
    succeeded: bool
    map_phase_time: float
    reduce_phase_time: float
    spilled_records: float
    shuffled_bytes: float
    failed_attempts: float
    counters: Tuple[Tuple[str, float], ...]
    node_cpu_utilization: float
    node_memory_utilization: float
    #: Aggressive tuning only: the recommended configuration overrides.
    recommended: Optional[Tuple[Tuple[str, float], ...]] = None
    #: Attempts killed for environmental reasons (faults, speculation).
    killed_attempts: float = 0.0
    #: Aggregated failed/killed attempt counts by failure kind, e.g.
    #: ``(("node_lost", 3), ("oom", 1))`` -- empty for a clean run.
    failure_reasons: Tuple[Tuple[str, int], ...] = ()
    #: The injected fault scenario, one description line per fault.
    injected_faults: Tuple[str, ...] = ()

    def digest(self) -> str:
        return run_digest(self)

    def recommended_config(self) -> Optional[Configuration]:
        if self.recommended is None:
            return None
        return Configuration(dict(self.recommended))


def run_digest(outcome: RunOutcome) -> str:
    """A stable hash of the outcome tuple.

    Floats are hashed at full precision via ``repr``: the simulator is
    bit-identical across replays, so the digest is too -- any drift
    between serial and parallel execution (or across refactors that
    claim to preserve behaviour) changes the hash.
    """
    payload = repr(dataclasses.astuple(outcome)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def combined_digest(outcomes: Sequence[RunOutcome]) -> str:
    """One hash over an ordered batch of outcomes (the CI gate's unit)."""
    payload = "\n".join(run_digest(o) for o in outcomes).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def _phase_time(result, task_type) -> float:
    stats = [s for s in result.stats_of(task_type) if not s.failed]
    if not stats:
        return 0.0
    return max(s.end_time for s in stats) - min(s.start_time for s in stats)


def execute_request(request: RunRequest) -> RunOutcome:
    """Pure top-level worker: rebuild the cluster, run, summarize.

    Runs entirely from the request's declarative fields, so it executes
    identically in the parent process (serial path) and in a pool
    worker -- determinism is preserved because each replica owns its
    own ``RngRegistry(seed)`` and no state crosses runs.
    """
    import numpy as np

    from repro.backends.sim import SimBackend
    from repro.mapreduce.counters import Counter
    from repro.mapreduce.jobspec import TaskType
    from repro.sim.rng import derive_seed
    from repro.workloads.suite import make_job_spec

    case = resolve_case(request)
    fault_tolerance = None
    if request.faults is not None:
        from repro.yarn.app_master import FaultToleranceSettings, SpeculationSettings

        # Faulted runs fight stragglers with LATE speculation; fault-free
        # runs keep it off so their digests stay bit-identical.
        fault_tolerance = FaultToleranceSettings(speculation=SpeculationSettings())
    # Every digest-gated run flows through the Backend protocol: the
    # adapter builds the SimCluster with identical arguments and drives
    # it identically, so the pinned digests double as proof that the
    # protocol seam is behavior-preserving.
    backend = SimBackend(
        seed=request.seed,
        scheduler=request.scheduler,
        fault_tolerance=fault_tolerance,
    )
    sc = backend.cluster
    plan = None
    if request.faults is not None:
        knobs = dict(request.faults)
        if "plan" in knobs:
            from repro.faults import plan_from_json

            plan = sc.inject_faults(plan=plan_from_json(str(knobs["plan"])))
        else:
            plan = sc.inject_faults(
                crashes=int(knobs.get("crashes", 0)),
                container_kills=int(knobs.get("container_kills", 0)),
                degraded=int(knobs.get("degraded", 0)),
                horizon=float(knobs["horizon"]),
                link_degraded=int(knobs.get("link_degraded", 0)),
                link_flaky=int(knobs.get("link_flaky", 0)),
                rack_partitions=int(knobs.get("rack_partitions", 0)),
                decommissions=int(knobs.get("decommissions", 0)),
                joins=int(knobs.get("joins", 0)),
                spot_preempts=int(knobs.get("spot_preempts", 0)),
                tuner_crashes=int(knobs.get("tuner_crashes", 0)),
                monitor_outages=int(knobs.get("monitor_outages", 0)),
                stats_gaps=int(knobs.get("stats_gaps", 0)),
            )
    spec = make_job_spec(case, sc.hdfs, base_config=request.config())
    recommended = None
    mode, optimizer = parse_tuning(request.tuning)
    if mode == "none":
        result = backend.run_job(spec)
    else:
        from repro.core.tuner import OnlineTuner, TunerSettings, TuningStrategy

        strategy = (
            TuningStrategy.CONSERVATIVE
            if mode == "conservative"
            else TuningStrategy.AGGRESSIVE
        )
        tuner = OnlineTuner(
            strategy,
            settings=TunerSettings(optimizer=optimizer),
            rng=np.random.default_rng(derive_seed(request.seed, "tuner", case.name)),
        )
        handle = backend.attach_tuner(tuner, spec)
        result = backend.wait(handle)
        if mode == "aggressive":
            recommended = serialize_config(tuner.recommended_config(spec.job_id))
    return RunOutcome(
        request=request,
        job_time=result.duration,
        succeeded=result.succeeded,
        map_phase_time=_phase_time(result, TaskType.MAP),
        reduce_phase_time=_phase_time(result, TaskType.REDUCE),
        spilled_records=result.counters.get(Counter.SPILLED_RECORDS),
        shuffled_bytes=result.counters.get(Counter.SHUFFLED_BYTES),
        failed_attempts=result.counters.get(Counter.FAILED_TASK_ATTEMPTS),
        counters=tuple(sorted(result.counters.snapshot().items())),
        node_cpu_utilization=sc.monitor.mean_cpu_utilization(),
        node_memory_utilization=sc.monitor.mean_memory_utilization(),
        recommended=recommended,
        killed_attempts=result.counters.get(Counter.KILLED_TASK_ATTEMPTS),
        failure_reasons=tuple(sorted(result.failure_reasons.items())),
        injected_faults=tuple(plan.describe()) if plan is not None else (),
    )


# ----------------------------------------------------------------------
# The pool driver
# ----------------------------------------------------------------------
class ParallelExperimentRunner:
    """Fan a picklable worker out over independent items.

    * results come back ordered by item, regardless of completion order
      (so any state machine fed from them advances deterministically);
    * each item gets ``timeout`` seconds of wall clock, surfaced as
      :class:`RunTimeoutError`;
    * a crashed worker process (or a raising worker) is retried once in
      a fresh pool before :class:`WorkerCrashError` propagates;
    * ``max_workers=1`` runs every item in-process -- the exact legacy
      serial path, with no executor constructed at all.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        timeout: float = DEFAULT_RUN_TIMEOUT,
        retries: int = 1,
        worker: Callable[[_T], _R] = execute_request,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.max_workers = resolve_workers(max_workers)
        self.timeout = timeout
        self.retries = retries
        self.worker = worker

    def run(self, items: Sequence[_T]) -> List[_R]:
        items = list(items)
        if not items:
            return []
        if self.max_workers == 1:
            return [self.worker(item) for item in items]
        results: Dict[int, _R] = {}
        victims = self._batch_round(items, results)
        for i, prior_attempts, exc in victims:
            if prior_attempts > self.retries:
                raise WorkerCrashError(
                    f"run {i} ({items[i]!r}) failed after "
                    f"{prior_attempts} attempt(s): {exc!r}"
                ) from exc
            results[i] = self._run_isolated(items[i], i, prior_attempts)
        return [results[i] for i in range(len(items))]

    def _batch_round(
        self, items: Sequence[_T], results: Dict[int, _R]
    ) -> List[Tuple[int, int, BaseException]]:
        """One shared-pool round over every item.

        Returns ``(index, prior_attempts, exception)`` for items that
        must be re-run in isolation.  A worker that *raises* is
        attributable (the pool stays healthy), so its failure counts as
        one attempt; a *killed* worker process poisons the whole
        executor and every still-pending future fails with
        ``BrokenProcessPool`` -- the victims cannot be told apart from
        the culprit, so none is charged an attempt unless exactly one
        future broke (then it must be the culprit).
        """
        raised: List[Tuple[int, int, BaseException]] = []
        broken: List[Tuple[int, BaseException]] = []
        workers = min(self.max_workers, len(items))
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
        try:
            futures = {i: pool.submit(self.worker, items[i]) for i in range(len(items))}
            for i, future in futures.items():
                try:
                    results[i] = future.result(timeout=self.timeout)
                except concurrent.futures.TimeoutError:
                    raise RunTimeoutError(
                        f"run {i} ({items[i]!r}) exceeded {self.timeout:g}s"
                    ) from None
                except concurrent.futures.BrokenExecutor as exc:
                    broken.append((i, exc))
                except Exception as exc:
                    raised.append((i, 1, exc))
        finally:
            # wait=False: a hung or crashed pool must not block the
            # parent; finished pools tear down promptly anyway.
            pool.shutdown(wait=False, cancel_futures=True)
        charge = 1 if len(broken) == 1 else 0
        return raised + [(i, charge, exc) for i, exc in broken]

    def _run_isolated(self, item: _T, index: int, attempts: int) -> _R:
        """Re-run one item in its own single-worker pool.

        With exactly one in-flight item, a broken pool has exactly one
        possible culprit, so the retry budget is charged precisely.
        """
        while True:
            pool = concurrent.futures.ProcessPoolExecutor(max_workers=1)
            try:
                future = pool.submit(self.worker, item)
                try:
                    return future.result(timeout=self.timeout)
                except concurrent.futures.TimeoutError:
                    raise RunTimeoutError(
                        f"run {index} ({item!r}) exceeded {self.timeout:g}s"
                    ) from None
                except Exception as exc:
                    attempts += 1
                    if attempts > self.retries:
                        raise WorkerCrashError(
                            f"run {index} ({item!r}) failed after "
                            f"{attempts} attempt(s): {exc!r}"
                        ) from exc
            finally:
                pool.shutdown(wait=False, cancel_futures=True)


def run_requests(
    requests: Sequence[RunRequest],
    max_workers: Optional[int] = None,
    timeout: float = DEFAULT_RUN_TIMEOUT,
) -> List[RunOutcome]:
    """Execute a batch of :class:`RunRequest`, ordered by request."""
    runner = ParallelExperimentRunner(max_workers=max_workers, timeout=timeout)
    return runner.run(list(requests))


def map_seeds(
    fn: Callable[[int], _R],
    seeds: Sequence[int],
    max_workers: Optional[int] = None,
    timeout: float = DEFAULT_RUN_TIMEOUT,
) -> List[_R]:
    """Map a picklable ``fn(seed)`` over seeds, pool-backed.

    This is the drop-in replacement for the ``[fn(seed) for seed in
    seeds]`` loops in the experiment drivers and figure benchmarks.
    With one worker it *is* that loop.
    """
    runner = ParallelExperimentRunner(
        max_workers=max_workers, timeout=timeout, worker=fn
    )
    return runner.run(list(seeds))


# ----------------------------------------------------------------------
# Parallel offline candidate search (hill-climber fan-out)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CandidateEval:
    """One hill-climber sample to evaluate as a full simulated run."""

    case_name: str
    seed: int
    point: Tuple[float, ...]
    scheduler: str = "fifo"
    num_blocks: Optional[int] = None
    num_reducers: Optional[int] = None


def evaluate_candidate(item: CandidateEval) -> float:
    """Top-level worker: one candidate configuration, one full run."""
    import numpy as np

    from repro.core.configuration import enforce_dependencies
    from repro.core.parameters import PARAMETER_SPACE

    point = np.asarray(item.point)
    config = enforce_dependencies(Configuration(PARAMETER_SPACE.decode(point)))
    request = RunRequest.build(
        item.case_name,
        item.seed,
        config=config,
        scheduler=item.scheduler,
        num_blocks=item.num_blocks,
        num_reducers=item.num_reducers,
    )
    return execute_request(request).job_time


def offline_candidate_search(
    case_name: str,
    seed: int,
    settings=None,
    max_workers: Optional[int] = None,
    timeout: float = DEFAULT_RUN_TIMEOUT,
    num_blocks: Optional[int] = None,
    num_reducers: Optional[int] = None,
    optimizer: str = "hill_climb",
):
    """Drive a search backend with whole-job evaluations fanned out per wave.

    The online tuner evaluates candidates on live task waves inside one
    simulation; this offline variant instead prices every candidate
    with its own full simulated run -- the MRPerf-style search the
    paper defers to simulation tools.  Each wave's candidates are
    independent, so they fan out across the pool; costs are fed back in
    proposal order, keeping the search trajectory identical for any
    worker count.  *optimizer* selects the backend (default: the
    paper's hill climber); *settings* is that backend's settings
    object.

    Returns ``(best Configuration, best cost, samples evaluated)``.
    """
    import numpy as np

    from repro.core.hill_climbing import drive_search
    from repro.core.optimizers import make_optimizer
    from repro.core.parameters import PARAMETER_SPACE
    from repro.sim.rng import derive_seed

    climber = make_optimizer(
        optimizer,
        PARAMETER_SPACE,
        rng=np.random.default_rng(derive_seed(seed, "offline-search", case_name)),
        settings=settings,
    )
    runner = ParallelExperimentRunner(
        max_workers=max_workers, timeout=timeout, worker=evaluate_candidate
    )

    def evaluate_batch(points: Sequence) -> List[float]:
        items = [
            CandidateEval(
                case_name=case_name,
                seed=seed,
                point=tuple(float(x) for x in p),
                num_blocks=num_blocks,
                num_reducers=num_reducers,
            )
            for p in points
        ]
        return runner.run(items)

    drive_search(climber, evaluate_batch)
    return climber.best_config(), climber.best_cost(), climber.samples_proposed
