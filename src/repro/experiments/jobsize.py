"""The job-size sweep (Figure 13, Section 8.4).

Terasort with inputs from 2 GB to 100 GB, reducers at ~1/4 of the map
count.  For each size: one aggressive tuning run produces a
configuration, which is then used for a measured run compared against
the default.  The paper's finding to reproduce: tuning is marginal
below ~10 GB (too few tasks to search with) and settles around 20%+
for 20 GB and above, with no further gains past the point where the
search already had enough tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.hill_climbing import HillClimbSettings
from repro.experiments.expedited import (
    run_aggressive_tuning,
    run_default,
    run_with_config,
)
from repro.experiments.harness import checked_duration
from repro.workloads.suite import terasort_case

#: The x-axis of Figure 13.
PAPER_SIZES_GB: Sequence[float] = (2.0, 6.0, 10.0, 20.0, 60.0, 100.0)


@dataclass
class JobSizePoint:
    size_gb: float
    num_maps: int
    num_reducers: int
    default_time: float
    mronline_time: float

    @property
    def improvement(self) -> float:
        if self.default_time <= 0:
            return 0.0
        return (self.default_time - self.mronline_time) / self.default_time


def run_job_size_point(
    size_gb: float,
    seed: int,
    hill_climb: Optional[HillClimbSettings] = None,
) -> JobSizePoint:
    case = terasort_case(size_gb)
    default_result = run_default(case, seed)
    _tuning_result, recommended = run_aggressive_tuning(case, seed, hill_climb)
    mronline_result = run_with_config(case, seed, recommended)
    return JobSizePoint(
        size_gb=size_gb,
        num_maps=case.num_maps,
        num_reducers=case.num_reducers,
        default_time=checked_duration(default_result),
        mronline_time=checked_duration(mronline_result),
    )


def run_sweep(
    seed: int,
    sizes: Sequence[float] = PAPER_SIZES_GB,
    hill_climb: Optional[HillClimbSettings] = None,
) -> List[JobSizePoint]:
    return [run_job_size_point(size, seed, hill_climb) for size in sizes]


def run_sweep_over_seeds(
    seeds: Sequence[int],
    sizes: Sequence[float] = PAPER_SIZES_GB,
    hill_climb: Optional[HillClimbSettings] = None,
    max_workers: Optional[int] = None,
) -> List[List[JobSizePoint]]:
    """One full sweep per seed, seeds fanned over the process pool."""
    from functools import partial

    from repro.experiments.parallel import map_seeds

    return map_seeds(
        partial(run_sweep, sizes=tuple(sizes), hill_climb=hill_climb),
        list(seeds),
        max_workers=max_workers,
    )
