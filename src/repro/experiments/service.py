"""The service experiment: warm vs cold vs default, one trace.

Three arms over the *same* seeded arrival trace:

* **warm** -- tuned, searches seeded from each tenant's knowledge base;
* **cold** -- tuned, every search starts from scratch
  (``warm_start=False``);
* **default** -- untuned, every job runs its stock configuration.

Warm vs cold isolates the value of cross-job knowledge (fewer waves to
the best cost); tuned vs default isolates the value of tuning at all
(per-profile execution-time deltas under identical contention).  Arms
are independent seeded simulations, so they fan out over the process
pool with bit-identical results -- :attr:`combined_digest` is the
serial-vs-pool CI gate for the subsystem.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.service.report import ServiceReport
from repro.service.service import ServiceConfig, default_tenants, run_service

#: Arm indices for the pool fan-out (stable, digest-visible order).
ARMS: Tuple[str, ...] = ("warm", "cold", "default")


def _arm_config(
    arm: str,
    seed: int,
    num_tenants: int,
    jobs_per_tenant: int,
    capacity: int,
    rate: float,
) -> ServiceConfig:
    return ServiceConfig(
        tenants=default_tenants(num_tenants, rate=rate),
        jobs_per_tenant=jobs_per_tenant,
        seed=seed,
        capacity=capacity,
        tuned=(arm != "default"),
        warm_start=(arm == "warm"),
    )


def _run_arm(
    arm_index: int,
    seed: int = 1,
    num_tenants: int = 3,
    jobs_per_tenant: int = 10,
    capacity: int = 3,
    rate: float = 1.0 / 400.0,
) -> ServiceReport:
    """Top-level (hence picklable) worker for one experiment arm."""
    config = _arm_config(
        ARMS[arm_index], seed, num_tenants, jobs_per_tenant, capacity, rate
    )
    return run_service(config)


@dataclass(frozen=True)
class ServiceExperimentResult:
    """All three arms plus the headline comparisons."""

    seed: int
    warm: ServiceReport
    cold: ServiceReport
    default: ServiceReport
    #: profile -> (default mean execution - warm mean execution) /
    #: default mean execution; positive = tuning helped.
    tuned_vs_default: Tuple[Tuple[str, float], ...]

    @property
    def combined_digest(self) -> str:
        h = hashlib.sha256()
        for report in (self.warm, self.cold, self.default):
            h.update(report.digest().encode())
        return h.hexdigest()

    def render(self) -> str:
        lines = [
            f"service experiment (seed={self.seed})",
            f"  warm arm: {self.warm.warm_sessions} warm / "
            f"{self.warm.cold_sessions} cold sessions, "
            f"mean wave_of_best={self.warm.warm_mean_wave_of_best:.3f} (warm)",
            f"  cold arm: mean wave_of_best={self.cold.cold_mean_wave_of_best:.3f}",
            f"  p95 latency: warm={self.warm.p95_latency:.1f} "
            f"cold={self.cold.p95_latency:.1f} default={self.default.p95_latency:.1f}",
        ]
        for profile, delta in self.tuned_vs_default:
            lines.append(f"  tuned-vs-default {profile}: {delta:+.2%}")
        lines.append(f"  combined digest: {self.combined_digest}")
        return "\n".join(lines) + "\n"


def run_service_experiment(
    seed: int = 1,
    num_tenants: int = 3,
    jobs_per_tenant: int = 10,
    capacity: int = 3,
    rate: float = 1.0 / 400.0,
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> ServiceExperimentResult:
    """Run all three arms; optionally fanned out over the process pool."""
    worker = partial(
        _run_arm,
        seed=seed,
        num_tenants=num_tenants,
        jobs_per_tenant=jobs_per_tenant,
        capacity=capacity,
        rate=rate,
    )
    arm_indices = list(range(len(ARMS)))
    if parallel:
        from repro.experiments.parallel import map_seeds

        reports: List[ServiceReport] = map_seeds(
            worker, arm_indices, max_workers=max_workers
        )
    else:
        reports = [worker(i) for i in arm_indices]
    warm, cold, default = reports
    default_exec: Dict[str, float] = dict(default.profile_mean_execution)
    deltas = []
    for profile, tuned_mean in warm.profile_mean_execution:
        base = default_exec.get(profile)
        if base and base > 0:
            deltas.append((profile, (base - tuned_mean) / base))
    return ServiceExperimentResult(
        seed=seed,
        warm=warm,
        cold=cold,
        default=default,
        tuned_vs_default=tuple(deltas),
    )
