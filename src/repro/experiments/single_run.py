"""The fast-single-run experiment (Figures 10-12).

Per case and seed: one run with the default configuration versus one
run co-executed with MRONLINE's conservative tuner.  The conservative
strategy never delays scheduling, so the comparison is a straight
execution-time A/B (Section 8.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.tuner import OnlineTuner, TunerSettings, TuningStrategy
from repro.experiments.harness import SimCluster, checked_duration
from repro.sim.rng import derive_seed
from repro.workloads.suite import BenchmarkCase, make_job_spec
from repro.yarn.app_master import JobResult


@dataclass
class SingleRunResult:
    case: str
    seed: int
    default_time: float
    mronline_time: float
    failed_attempts: float

    @property
    def improvement(self) -> float:
        if self.default_time <= 0:
            return 0.0
        return (self.default_time - self.mronline_time) / self.default_time


def run_conservative(
    case: BenchmarkCase,
    seed: int,
    settings: Optional[TunerSettings] = None,
) -> tuple:
    """One job co-executed with the conservative tuner."""
    sc = SimCluster(seed=seed)
    spec = make_job_spec(case, sc.hdfs)
    tuner = OnlineTuner(
        TuningStrategy.CONSERVATIVE,
        settings=settings or TunerSettings(),
        rng=np.random.default_rng(derive_seed(seed, "tuner", case.name)),
    )
    am = tuner.submit(sc, spec)
    result = sc.sim.run_until_complete(am.completion)
    return result, tuner


def run_single_run_case(
    case: BenchmarkCase, seed: int, settings: Optional[TunerSettings] = None
) -> SingleRunResult:
    from repro.experiments.expedited import run_default

    default_result: JobResult = run_default(case, seed)
    mronline_result, _tuner = run_conservative(case, seed, settings)
    from repro.mapreduce.counters import Counter

    return SingleRunResult(
        case=case.name,
        seed=seed,
        default_time=checked_duration(default_result),
        mronline_time=checked_duration(mronline_result),
        failed_attempts=mronline_result.counters.get(Counter.FAILED_TASK_ATTEMPTS),
    )


def run_single_run_over_seeds(
    case: BenchmarkCase,
    seeds: List[int],
    settings: Optional[TunerSettings] = None,
    max_workers: Optional[int] = None,
) -> List[SingleRunResult]:
    """The single-run A/B for every seed, fanned over the process pool."""
    from functools import partial

    from repro.experiments.parallel import map_seeds

    return map_seeds(
        partial(run_single_run_case, case, settings=settings),
        seeds,
        max_workers=max_workers,
    )
