"""Experiment drivers reproducing the paper's evaluation (Section 8).

:mod:`repro.experiments.harness` provides :class:`SimCluster`, the
one-stop integration of simulator + cluster + HDFS + YARN + monitor;
the sibling modules implement the per-figure experiment protocols.
"""

from repro.experiments.harness import ExperimentRunner, SimCluster

__all__ = ["ExperimentRunner", "SimCluster"]
