"""Command-line interface: reproduce the paper's experiments directly.

Examples::

    python -m repro table3
    python -m repro expedited --case terasort --replicas 2
    python -m repro single-run --case wordcount-wikipedia
    python -m repro jobsize --sizes 2,20,60
    python -m repro multitenant
    python -m repro whatif --size-gb 20
    python -m repro digest --workers 4
    python -m repro faults --case terasort
    python -m repro elastic --levels none,low
    python -m repro trace --case wordcount-wikipedia --out trace-out
    python -m repro serve --tenants 3 --jobs 70
    python -m repro real --workload wordcount --tuning aggressive

Each subcommand prints the same rows/series the corresponding paper
figure plots.  ``--replicas`` controls seed averaging (the paper uses
4 runs).  ``--workers`` fans replica runs out over a process pool
(default: the ``REPRO_WORKERS`` environment knob, then the CPU count;
``1`` = the exact serial path) -- replicas are independently seeded,
so results are bit-identical either way.  ``digest`` prints a stable
hash over a small fixed experiment; the CI determinism gate runs it
serial and parallel and fails on any mismatch.  ``faults`` runs the
resilience report: job time and tuner gain at fault levels none/low/
high (node crashes, container kills, degraded nodes) against the
fault-free baseline, ending in its own determinism-gated digest.

Simulated subcommands run on the ``sim`` execution backend; ``real``
runs actual mapper/reducer worker processes over a local corpus on the
``local`` backend (``--backend`` selects explicitly; see
``docs/backends.md``).
"""

from __future__ import annotations

import argparse
import statistics
import sys
from typing import List, Optional, Sequence

import numpy as np


def _mean(values: Sequence[float]) -> float:
    return statistics.fmean(values)


def _seeds(args) -> List[int]:
    return [args.seed + i for i in range(args.replicas)]


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_table3(args) -> int:
    from repro.experiments.harness import SimCluster
    from repro.experiments.reporting import format_table
    from repro.mapreduce.dataflow import JobDataflow
    from repro.workloads.suite import make_job_spec, table3_cases

    GB = 10**9
    sc = SimCluster(seed=args.seed, start_monitors=False)
    rows = []
    for case in table3_cases():
        spec = make_job_spec(case, sc.hdfs)
        df = JobDataflow(spec, sc.hdfs.get(spec.input_path), rng=np.random.default_rng(0))
        rows.append(
            [
                case.name,
                f"{df.total_input_bytes / GB:.1f}",
                f"{df.expected_shuffle_bytes / GB:.2f}",
                f"{df.expected_output_bytes / GB:.2f}",
                df.num_maps,
                df.num_reducers,
                case.job_type.value,
            ]
        )
    print(
        format_table(
            ["Benchmark", "Input GB", "Shuffle GB", "Output GB", "#Map", "#Reduce", "Type"],
            rows,
        )
    )
    return 0


def cmd_expedited(args) -> int:
    from repro.experiments.expedited import run_expedited_over_seeds
    from repro.workloads.suite import case_by_name

    case = case_by_name(args.case)
    results = run_expedited_over_seeds(
        case, _seeds(args), max_workers=args.workers, optimizer=args.optimizer
    )
    default = _mean([r.default_time for r in results])
    offline = _mean([r.offline_time for r in results])
    mronline = _mean([r.mronline_time for r in results])
    print(f"case: {case.name}  ({len(results)} replicas)")
    print(f"  default        : {default:8.1f} s")
    print(f"  offline guide  : {offline:8.1f} s")
    print(f"  MRONLINE       : {mronline:8.1f} s  ({100 * (default - mronline) / default:+.1f}%)")
    print(f"  tuning run     : {_mean([r.tuning_run_time for r in results]):8.1f} s (one run)")
    print(
        f"  map spills     : optimal {_mean([r.optimal_spills for r in results]):,.0f}"
        f" | default {_mean([r.default_spills for r in results]):,.0f}"
        f" | MRONLINE {_mean([r.mronline_spills for r in results]):,.0f}"
    )
    return 0


def cmd_single_run(args) -> int:
    from repro.experiments.single_run import run_single_run_over_seeds
    from repro.workloads.suite import case_by_name

    case = case_by_name(args.case)
    results = run_single_run_over_seeds(case, _seeds(args), max_workers=args.workers)
    default = _mean([r.default_time for r in results])
    mronline = _mean([r.mronline_time for r in results])
    print(f"case: {case.name}  ({len(results)} replicas)")
    print(f"  default  : {default:8.1f} s")
    print(f"  MRONLINE : {mronline:8.1f} s  ({100 * (default - mronline) / default:+.1f}%)")
    return 0


def cmd_jobsize(args) -> int:
    from repro.experiments.jobsize import run_sweep_over_seeds

    sizes = [float(s) for s in args.sizes.split(",")]
    per_seed = run_sweep_over_seeds(_seeds(args), sizes, max_workers=args.workers)
    print(f"{'size':>7s} {'default':>9s} {'MRONLINE':>9s} {'gain':>7s}")
    for i, size in enumerate(sizes):
        d = _mean([run[i].default_time for run in per_seed])
        t = _mean([run[i].mronline_time for run in per_seed])
        print(f"{size:5.0f}GB {d:8.1f}s {t:8.1f}s {100 * (d - t) / d:+6.1f}%")
    return 0


def cmd_multitenant(args) -> int:
    from repro.experiments.multitenant import ROLES, run_multitenant_over_seeds

    outcomes = run_multitenant_over_seeds(_seeds(args), max_workers=args.workers)
    ts_d = _mean([d.terasort_time for d, _t in outcomes])
    ts_t = _mean([t.terasort_time for _d, t in outcomes])
    bbp_d = _mean([d.bbp_time for d, _t in outcomes])
    bbp_t = _mean([t.bbp_time for _d, t in outcomes])
    print(f"Terasort: {ts_d:7.1f} -> {ts_t:7.1f} s  ({100 * (ts_d - ts_t) / ts_d:+.1f}%)")
    print(f"BBP     : {bbp_d:7.1f} -> {bbp_t:7.1f} s  ({100 * (bbp_d - bbp_t) / bbp_d:+.1f}%)")
    print("\nmemory utilization (default -> MRONLINE):")
    for role in ROLES:
        d = _mean([o.utilization.memory[role] for o, _t in outcomes])
        t = _mean([o.utilization.memory[role] for _d, o in outcomes])
        print(f"  {role:11s} {100 * d:5.1f}% -> {100 * t:5.1f}%")
    return 0


def cmd_whatif(args) -> int:
    from repro.core.whatif import CategoryOneAdvisor
    from repro.workloads.datasets import teragen_dataset
    from repro.workloads.terasort import terasort_profile

    dataset = teragen_dataset(args.size_gb)
    advisor = CategoryOneAdvisor(seed=args.seed)
    advice = advisor.advise(terasort_profile(), dataset)
    for outcome in advice.evaluations:
        marker = "  <== best" if outcome.candidate == advice.best else ""
        print(
            f"  reducers={outcome.candidate.num_reducers:4d} "
            f"slowstart={outcome.candidate.slowstart:4.2f} "
            f"-> {outcome.predicted_duration:8.1f} s{marker}"
        )
    return 0


#: The digest subcommand's fixed experiment: one shrunk instance of
#: every workload profile family, so the determinism gate exercises the
#: map-heavy, shuffle-heavy, and compute-heavy paths alike while
#: staying cheap enough to run twice in CI.
DIGEST_CASES = (
    ("terasort", 8, 4),
    ("wordcount-wikipedia", 6, 3),
    ("bigram-freebase", 6, 3),
    ("bbp", 4, 1),
)


def cmd_digest(args) -> int:
    from repro.experiments.parallel import RunRequest, combined_digest, run_requests

    requests = [
        RunRequest(
            case_name=name,
            seed=seed,
            tuning=_tuning_mode(args),
            num_blocks=blocks,
            num_reducers=reducers,
        )
        for name, blocks, reducers in DIGEST_CASES
        for seed in _seeds(args)
    ]
    outcomes = run_requests(requests, max_workers=args.workers)
    for outcome in outcomes:
        req = outcome.request
        print(
            f"  {req.case_name:24s} seed={req.seed}  "
            f"t={outcome.job_time:9.2f}s  {outcome.digest()[:16]}"
            f"{_failure_marker(outcome)}"
        )
    print(f"digest: {combined_digest(outcomes)}")
    return 0


def _failure_marker(outcome) -> str:
    """A loud suffix for unsuccessful runs (never average these away)."""
    if outcome.succeeded:
        return ""
    reasons = ", ".join(f"{kind} x{n}" for kind, n in outcome.failure_reasons)
    return f"  FAILED ({reasons or 'unknown'})"


def _load_plan_json(path: str, levels: Sequence[str]) -> str:
    """Read a ``--plan-json`` file into the single plan to replay.

    Accepts either a bare serialized plan or the level-keyed dump this
    command writes; for the latter, exactly one requested level must
    match.
    """
    import json
    from pathlib import Path

    text = Path(path).read_text()
    obj = json.loads(text)
    if isinstance(obj, dict) and "faults" in obj:
        return text
    matching = [lv for lv in levels if lv != "none" and lv in obj]
    if len(matching) != 1:
        raise SystemExit(
            f"--plan-json {path}: level-keyed dump needs exactly one requested"
            f" faulted level among {sorted(obj)}, got {matching or 'none'}"
        )
    return json.dumps(obj[matching[0]])


def cmd_faults(args) -> int:
    import json
    import os

    from repro.experiments.faults import run_fault_experiment

    levels = tuple(args.levels.split(","))
    plan_json = None
    replayed = False
    if args.plan_json and os.path.exists(args.plan_json):
        plan_json = _load_plan_json(args.plan_json, levels)
        replayed = True
    report = run_fault_experiment(
        case_name=args.case,
        seed=args.seed,
        levels=levels,
        tuning=_tuning_mode(args),
        num_blocks=args.blocks,
        num_reducers=args.reducers,
        max_workers=args.workers,
        kinds=tuple(args.kinds.split(",")) if args.kinds else None,
        plan_json=plan_json,
    )
    print(f"case: {report.case_name}  seed={report.seed}  tuning={report.tuning}")
    print(f"fault-free baseline: {report.baseline.job_time:.1f} s")
    for row in report.rows:
        print(f"\nfault level '{row.level}':")
        for line in row.tuned.injected_faults:
            print(f"    {line}")
        for label, outcome in (("default", row.default), (report.tuning, row.tuned)):
            status = "ok" if outcome.succeeded else "FAILED"
            reasons = ", ".join(f"{k} x{n:.0f}" for k, n in outcome.failure_reasons)
            print(
                f"  {label:12s}: {outcome.job_time:8.1f} s  [{status}]"
                f"  killed={outcome.killed_attempts:.0f}"
                + (f"  ({reasons})" if reasons else "")
            )
        breakdown = ", ".join(f"{k} x{n}" for k, n in row.failures_by_fault_kind)
        if breakdown:
            print(f"  failures by fault kind: {breakdown}")
        print(
            f"  slowdown vs fault-free: {100 * row.slowdown_vs(report.baseline):+.1f}%"
            f"   tuner gain: {100 * row.tuner_gain:+.1f}%"
        )
    if args.plan_json and not replayed and report.plans_json:
        dump = {level: json.loads(js) for level, js in report.plans_json}
        with open(args.plan_json, "w") as fh:
            json.dump(dump, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nfault plan(s) written to {args.plan_json}")
    elif replayed:
        print(f"\nreplayed fault plan from {args.plan_json}")
    print(f"\nfault digest: {report.digest}")
    return 0


def cmd_elastic(args) -> int:
    from repro.experiments.elastic import run_elastic_experiment

    report = run_elastic_experiment(
        seed=args.seed,
        levels=tuple(args.levels.split(",")),
        tuning=args.tuning,
        max_workers=args.workers,
    )
    print(f"seed={report.seed}  tuning={report.tuning}")
    current = None
    for row in report.rows:
        if row.case_name != current:
            current = row.case_name
            print(
                f"\ncase: {row.case_name}"
                f"  (fault-free baseline {row.baseline.job_time:.1f} s)"
            )
        status = "ok" if row.churned.succeeded else "FAILED"
        reasons = ", ".join(
            f"{k} x{n:.0f}" for k, n in row.churned.failure_reasons
        )
        print(
            f"  churn '{row.level}': {row.churned.job_time:8.1f} s  [{status}]"
            f"  slowdown {100 * row.slowdown:+.1f}%"
            f"  killed={row.churned.killed_attempts:.0f}"
            + (f"  ({reasons})" if reasons else "")
        )
        for line in row.churned.injected_faults:
            print(f"      {line}")
    print(f"\nelastic digest: {report.digest}")
    return 0


def cmd_trace(args) -> int:
    from repro.experiments.trace import run_traced_case

    traced = run_traced_case(
        case_name=args.case,
        seed=args.seed,
        tuning=_tuning_mode(args),
        num_blocks=args.blocks,
        num_reducers=args.reducers,
        include_sim=args.include_sim,
    )
    paths = traced.save(args.out)
    status = "ok" if traced.succeeded else "FAILED"
    print(
        f"case: {traced.case_name}  seed={traced.seed}  tuning={traced.tuning}"
        f"  t={traced.job_time:.1f}s  [{status}]"
    )
    print(f"events: {len(traced.events.records)}  digest: {traced.digest()}")
    for name in sorted(paths):
        print(f"  wrote {paths[name]}")
    print()
    print(traced.summary.render())
    return 0


def cmd_real(args) -> int:
    from repro.experiments.real import render_real_report, run_real_case

    result = run_real_case(
        workload=args.workload,
        seed=args.seed,
        tuning=args.tuning,
        num_splits=args.splits,
        split_kb=args.split_kb,
        num_reducers=args.reducers,
        slots=args.slots,
    )
    print(render_real_report(result))
    return 0 if result.succeeded else 1


def cmd_serve(args) -> int:
    from repro.service import (
        ServiceConfig,
        TenantSpec,
        default_tenants,
        run_service,
        run_service_local,
    )

    from repro.recovery import ServiceKilled

    fault_plan = None
    if args.fault_plan:
        with open(args.fault_plan) as fh:
            fault_plan = fh.read()
    backend = args.backend or "sim"
    if backend == "sim":
        try:
            config = ServiceConfig(
                tenants=default_tenants(
                    args.tenants, rate=1.0 / args.interarrival
                ),
                jobs_per_tenant=args.jobs,
                seed=args.seed,
                capacity=args.capacity,
                warm_start=not args.cold,
                journal_path=args.journal,
                kill_after_jobs=args.kill_after_jobs,
                fault_plan=fault_plan,
            )
        except ValueError as err:
            print(str(err), file=sys.stderr)
            return 2
        try:
            report = run_service(config)
        except ServiceKilled as killed:
            print(f"service killed: {killed}", file=sys.stderr)
            return 3
    else:
        # Smoke scale on real worker processes: two tenants mixing the
        # local workloads, sequential dispatch, wall-clock latencies.
        mixes = (("wordcount",), ("grep", "inverted-index"))
        tenants = tuple(
            TenantSpec(
                name=f"tenant-{chr(ord('a') + i)}",
                weight=float(len(mixes) - i),
                rate=1.0 / 5.0,
                profiles=mixes[i % len(mixes)],
                slo_seconds=300.0,
            )
            for i in range(min(args.tenants, 2))
        )
        try:
            config = ServiceConfig(
                tenants=tenants,
                jobs_per_tenant=min(args.jobs, 2),
                seed=args.seed,
                capacity=1,
                warm_start=not args.cold,
                journal_path=args.journal,
                kill_after_jobs=args.kill_after_jobs,
            )
        except ValueError as err:
            print(str(err), file=sys.stderr)
            return 2
        try:
            report = run_service_local(config)
        except ServiceKilled as killed:
            print(f"service killed: {killed}", file=sys.stderr)
            return 3
    print(report.render())
    print(f"service digest: {report.digest()}")
    return 0


def cmd_list(args) -> int:
    from repro.backends.local import LOCAL_WORKLOADS
    from repro.workloads.suite import table3_cases

    print("benchmark cases (Table 3):")
    for case in table3_cases():
        print(f"  {case.name}")
    print("\nlocal-backend workloads (real subcommand):")
    for name in sorted(LOCAL_WORKLOADS):
        print(f"  {name}")
    print(
        "\nsubcommands: table3, expedited, single-run, jobsize, "
        "multitenant, whatif, digest, faults, elastic, trace, serve, real"
    )
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _add_shared_options(parser: argparse.ArgumentParser, suppress: bool) -> None:
    """Define the flags every subcommand understands.

    They are declared twice -- on the root parser with real defaults,
    and on each subparser with ``SUPPRESS`` defaults -- so both
    ``repro --workers 4 faults`` and ``repro faults --workers 4`` work
    (the subparser only overrides when the flag is actually given).
    """
    from repro.backends import BACKEND_NAMES
    from repro.core.optimizers import DEFAULT_OPTIMIZER, OPTIMIZER_BACKENDS

    d = argparse.SUPPRESS
    parser.add_argument(
        "--seed", type=int, default=d if suppress else 1, help="base replica seed"
    )
    parser.add_argument(
        "--backend",
        default=d if suppress else None,
        choices=BACKEND_NAMES,
        help="execution backend (default: sim for simulated experiments, "
        "local for the 'real' subcommand)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=d if suppress else 1,
        help="seed replicas to average (paper: 4)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=d if suppress else None,
        help="worker processes for replica fan-out (default: REPRO_WORKERS, "
        "then CPU count; 1 = exact serial path)",
    )
    parser.add_argument(
        "--optimizer",
        default=d if suppress else DEFAULT_OPTIMIZER,
        choices=OPTIMIZER_BACKENDS,
        help="search backend for aggressive tuning sessions "
        "(default: the paper's gray-box hill climber)",
    )


def _add_faults_options(parser: argparse.ArgumentParser, suppress: bool) -> None:
    """The ``faults`` flags, declared root-and-subparser like the shared
    set so ``repro --kinds ... faults`` and ``repro faults --kinds ...``
    both parse."""
    d = argparse.SUPPRESS
    parser.add_argument(
        "--kinds",
        default=d if suppress else None,
        help="comma-separated fault kinds to inject (e.g. link_flaky,rack_partition);"
        " default: the legacy node/container levels",
    )
    parser.add_argument(
        "--plan-json",
        default=d if suppress else None,
        metavar="PATH",
        help="fault-plan JSON file: if it exists, replay it verbatim;"
        " otherwise run normally and write the generated plan(s) there",
    )


def _tuning_mode(args) -> str:
    """Compose the request tuning string from ``--tuning``/``--optimizer``.

    A non-default backend rides as an ``aggressive:<backend>`` suffix;
    conservative/none tuning ignores the backend (nothing searches).
    """
    tuning = args.tuning
    if tuning == "aggressive" and args.optimizer != "hill_climb":
        return f"aggressive:{args.optimizer}"
    return tuning


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce MRONLINE (HPDC'14) experiments on the simulated cluster.",
    )
    _add_shared_options(parser, suppress=False)
    _add_faults_options(parser, suppress=False)
    shared = argparse.ArgumentParser(add_help=False)
    _add_shared_options(shared, suppress=True)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark cases and subcommands", parents=[shared])
    sub.add_parser(
        "table3", help="print Table 3 (benchmark characteristics)", parents=[shared]
    )

    p = sub.add_parser(
        "expedited", help="Figures 4-9 protocol for one case", parents=[shared]
    )
    p.add_argument("--case", default="terasort")

    p = sub.add_parser(
        "single-run", help="Figures 10-12 protocol for one case", parents=[shared]
    )
    p.add_argument("--case", default="terasort")

    p = sub.add_parser("jobsize", help="Figure 13 sweep", parents=[shared])
    p.add_argument("--sizes", default="2,6,10,20,60,100", help="comma-separated GB")

    sub.add_parser("multitenant", help="Figures 14-16 protocol", parents=[shared])

    p = sub.add_parser(
        "whatif", help="category-1 what-if advisor (Terasort)", parents=[shared]
    )
    p.add_argument("--size-gb", type=float, default=20.0)

    p = sub.add_parser(
        "digest",
        help="stable hash of a small fixed experiment (CI determinism gate)",
        parents=[shared],
    )
    p.add_argument(
        "--tuning",
        default="none",
        choices=("none", "conservative", "aggressive"),
        help="tuning mode for the digested runs; with --optimizer this is "
        "the per-backend determinism gate (default: untuned)",
    )

    p = sub.add_parser(
        "faults",
        help="resilience report: job time and tuner gain under injected faults",
        parents=[shared],
    )
    p.add_argument("--case", default="terasort")
    p.add_argument(
        "--levels",
        default="none,low,high",
        help="comma-separated fault levels (subset of none,low,high)",
    )
    p.add_argument(
        "--tuning",
        default="conservative",
        choices=("conservative", "aggressive"),
        help="tuning strategy for the tuned arm of each level",
    )
    p.add_argument("--blocks", type=int, default=None, help="shrink the dataset (blocks)")
    p.add_argument("--reducers", type=int, default=None, help="override reducer count")
    _add_faults_options(p, suppress=True)

    p = sub.add_parser(
        "elastic",
        help="elastic-churn report: decommission/join/spot-preempt sweep "
        "across the workload profiles",
        parents=[shared],
    )
    p.add_argument(
        "--levels",
        default="none,low,high",
        help="comma-separated churn levels (subset of none,low,high)",
    )
    p.add_argument(
        "--tuning",
        default="conservative",
        choices=("conservative", "aggressive"),
        help="tuning strategy co-executed with the churned runs",
    )

    p = sub.add_parser(
        "trace",
        help="run one case with telemetry exporters: JSONL + Chrome trace + summary",
        parents=[shared],
    )
    p.add_argument("--case", default="wordcount-wikipedia")
    p.add_argument(
        "--tuning",
        default="none",
        choices=("none", "conservative", "aggressive"),
        help="tuning strategy for the traced run (default: untuned)",
    )
    p.add_argument(
        "--blocks",
        type=int,
        default=6,
        help="shrink the dataset (blocks); default matches the digest shrink",
    )
    p.add_argument(
        "--reducers", type=int, default=3, help="override reducer count"
    )
    p.add_argument(
        "--out",
        default="trace-out",
        help="output directory for trace.jsonl / trace.chrome.json / summary",
    )
    p.add_argument(
        "--include-sim",
        action="store_true",
        help="also record the per-calendar-event 'sim' firehose (large)",
    )

    p = sub.add_parser(
        "serve",
        help="continuous multi-tenant tuning service: seeded arrival stream, "
        "fair-share dispatch, warm-started searches, steady-state report",
        parents=[shared],
    )
    p.add_argument(
        "--tenants", type=int, default=3, help="number of tenants in the stream"
    )
    p.add_argument(
        "--jobs", type=int, default=70, help="jobs per tenant (sim default: 70, "
        "a 210-job stream; local smoke caps at 2)"
    )
    p.add_argument(
        "--capacity", type=int, default=3, help="concurrent job slots"
    )
    p.add_argument(
        "--interarrival",
        type=float,
        default=400.0,
        help="mean inter-arrival time per tenant (simulated seconds)",
    )
    p.add_argument(
        "--cold",
        action="store_true",
        help="disable knowledge-base warm starts (the cold-start arm)",
    )
    p.add_argument(
        "--journal",
        default=None,
        help="write-ahead journal path; rerunning against an existing "
        "journal resumes a killed run (sim: validated replay, local: "
        "genuine skip-ahead)",
    )
    p.add_argument(
        "--kill-after-jobs",
        type=int,
        default=0,
        help="simulate a hard crash: exit (code 3) after N newly "
        "journaled completions (requires --journal)",
    )
    p.add_argument(
        "--fault-plan",
        default=None,
        help="JSON fault-plan file (repro.faults.plan_to_json) injected "
        "into the simulated cluster before the stream starts",
    )

    p = sub.add_parser(
        "real",
        help="run real mapper/reducer worker processes on the local backend "
        "and tune them (default vs tuned A/B)",
        parents=[shared],
    )
    p.add_argument(
        "--workload",
        default="wordcount",
        choices=("wordcount", "grep", "inverted-index"),
        help="local workload to execute",
    )
    p.add_argument(
        "--tuning",
        default="aggressive",
        choices=("conservative", "aggressive"),
        help="tuning strategy co-executed with the real run",
    )
    p.add_argument(
        "--splits", type=int, default=24, help="input splits (= map tasks)"
    )
    p.add_argument(
        "--split-kb", type=int, default=32, help="approximate split size in KB"
    )
    p.add_argument("--reducers", type=int, default=4, help="reduce task count")
    p.add_argument(
        "--slots",
        type=int,
        default=None,
        help="concurrent worker processes (default: small multiple of CPUs)",
    )
    return parser


_COMMANDS = {
    "list": cmd_list,
    "table3": cmd_table3,
    "expedited": cmd_expedited,
    "single-run": cmd_single_run,
    "jobsize": cmd_jobsize,
    "multitenant": cmd_multitenant,
    "whatif": cmd_whatif,
    "digest": cmd_digest,
    "faults": cmd_faults,
    "elastic": cmd_elastic,
    "trace": cmd_trace,
    "serve": cmd_serve,
    "real": cmd_real,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.replicas < 1:
        print("--replicas must be >= 1", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    # Backend routing: the simulated experiments only run on `sim`, the
    # real-execution A/B only on `local`; `--backend` makes the choice
    # explicit and rejects impossible pairings instead of ignoring them.
    if args.command == "real":
        if args.backend == "sim":
            print(
                "the 'real' subcommand runs actual worker processes; "
                "it requires --backend local",
                file=sys.stderr,
            )
            return 2
    elif args.command == "serve":
        pass  # the service loop runs on either backend
    elif args.backend == "local":
        print(
            f"subcommand {args.command!r} is simulator-only; "
            "only 'real' runs on --backend local",
            file=sys.stderr,
        )
        return 2
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
