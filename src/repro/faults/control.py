"""Control-plane fault choreography: tuner crashes and monitor outages.

MRONLINE's monitor/tuner pair is an advisory *sidecar* service -- jobs
must survive it dying.  This module owns the lifecycle of that service
under injected faults:

``tuner_crash``
    The tuner process dies and restarts ``duration`` seconds later.
    Every registered :class:`~repro.core.tuner.OnlineTuner` flips into
    degraded mode: wave gates release tasks immediately on the
    last-known-good configuration, open waves with an incumbent are
    voided (their queued trial configurations dropped), and the search
    reopens from the incumbent at restart.

``monitor_outage``
    The central monitor goes dark cluster-wide for ``duration``
    seconds.  Node-utilization samples inside the window are lost, and
    tuner waves whose measurements span the window are quarantined --
    Eq-1 inputs from a blind monitor prove nothing.

``stats_gap``
    One slave monitor stops reporting: the same blackout, scoped to a
    single node.  The tuner keeps running; only that node's samples
    vanish from the utilization timelines.

The state is armed lazily by :class:`~repro.faults.injector.FaultInjector`
only when a plan contains a control kind, so every control-free digest
is byte-identical to before this module existed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.faults.plan import CONTROL_FAULT_KINDS, Fault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.central_monitor import CentralMonitor
    from repro.sim.engine import Simulator


class ControlPlaneState:
    """Tracks which pieces of the control plane are down, and until when.

    One instance per simulation, shared by the fault injector (which
    feeds it faults), the tuner(s) (which register to receive
    crash/recover callbacks) and the central monitor (which it blacks
    out during outages).  All three hooks are optional: a simulation
    with no tuner still applies the faults and records the windows.
    """

    def __init__(
        self,
        sim: "Simulator",
        monitor: Optional["CentralMonitor"] = None,
    ) -> None:
        self.sim = sim
        self.monitor = monitor
        #: Registered tuners (normally one; the service shares it).
        self.tuners: List[object] = []
        #: Simulated time the tuner process restarts; overlapping
        #: crashes extend it.
        self.down_until = 0.0
        #: Applied (start, end) windows per kind, for tests/reports.
        self.crashes: List[Tuple[float, float]] = []
        self.outages: List[Tuple[float, float]] = []
        self.gaps: List[Tuple[int, float, float]] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_tuner(self, tuner: object) -> None:
        """Subscribe *tuner* to crash/recover callbacks.

        A tuner registered mid-outage (a job submitted while the tuner
        process is down) is crashed in place so its gates degrade too.
        """
        if tuner in self.tuners:
            return
        self.tuners.append(tuner)
        if self.sim.now < self.down_until:
            tuner.on_tuner_crash(self.sim.now, self.down_until)

    # ------------------------------------------------------------------
    # Fault application (called by the injector at fault.time)
    # ------------------------------------------------------------------
    def apply(self, fault: Fault) -> str:
        """Apply a control-plane *fault*; returns the log detail line."""
        if fault.kind not in CONTROL_FAULT_KINDS:  # pragma: no cover
            raise ValueError(f"not a control fault: {fault.kind}")
        now = self.sim.now
        end = now + fault.duration
        if fault.kind == "tuner_crash":
            return self._apply_tuner_crash(fault, now, end)
        if fault.kind == "monitor_outage":
            self.outages.append((now, end))
            if self.monitor is not None:
                self.monitor.begin_gap(now, end)
            for tuner in self.tuners:
                tuner.note_control_outage(now, end)
            self._emit_outage(fault, end)
            return fault.describe()
        self.gaps.append((fault.node_id, now, end))
        if self.monitor is not None:
            self.monitor.begin_gap(now, end, node_id=fault.node_id)
        self._emit_outage(fault, end)
        return fault.describe()

    def _apply_tuner_crash(self, fault: Fault, now: float, end: float) -> str:
        self.down_until = max(self.down_until, end)
        self.crashes.append((now, end))
        open_searches = sum(t.open_search_count() for t in self.tuners)
        voided = 0
        for tuner in self.tuners:
            voided += tuner.on_tuner_crash(now, end)
        self.sim.call_at(end, lambda start=now: self._recover(start))
        tel = getattr(self.sim, "telemetry", None)
        if tel is not None and tel.wants("tuner"):
            from repro.telemetry.events import TunerCrash

            tel.emit(
                TunerCrash(
                    time=now,
                    down_until=self.down_until,
                    open_searches=open_searches,
                    voided_waves=voided,
                )
            )
        return f"{fault.describe()} -> {voided} wave(s) voided"

    def _recover(self, start: float) -> None:
        """Restart callback; a later crash may have extended the outage."""
        now = self.sim.now
        if now < self.down_until:
            return
        reopened = 0
        for tuner in self.tuners:
            reopened += tuner.on_tuner_recover(now)
        tel = getattr(self.sim, "telemetry", None)
        if tel is not None and tel.wants("tuner"):
            from repro.telemetry.events import TunerRecovered

            tel.emit(
                TunerRecovered(
                    time=now,
                    downtime=now - start,
                    reopened_waves=reopened,
                )
            )

    def _emit_outage(self, fault: Fault, end: float) -> None:
        tel = getattr(self.sim, "telemetry", None)
        if tel is None or not tel.wants("fault"):
            return
        from repro.telemetry.events import MonitorOutage, StatsGap

        if fault.kind == "monitor_outage":
            tel.emit(MonitorOutage(time=self.sim.now, until=end))
        else:
            tel.emit(StatsGap(time=self.sim.now, node_id=fault.node_id, until=end))


__all__ = ["ControlPlaneState"]
