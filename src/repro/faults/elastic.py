"""Elastic cluster membership: decommission, join, and spot preemption.

The :class:`ElasticCluster` manager is the orchestration layer behind
the three churn fault kinds.  It owns the lifecycle choreography the
individual components only expose surfaces for:

* ``node_decommission`` -- graceful drain.  The NodeManager stops
  accepting containers and the scheduler stops placing on the node;
  running tasks finish undisturbed, and when the last one settles the
  node deregisters from the RM, its monitor stops, and its links
  freeze.  Nothing is ever killed.
* ``node_join`` -- a new node is built with the next sequential id,
  attached to an existing rack's fabric, given a NodeManager (heart-
  beating immediately when failure detection is armed), an optional
  slave monitor, and entered into scheduling; pending requests can
  land on it one dispatch beat later.
* ``spot_preempt`` -- a preemption *notice* drains the node like a
  decommission, but a hard kill lands after the grace window.  Every
  registered application master is notified at notice time so it can
  proactively migrate the doomed attempts (see
  :meth:`~repro.yarn.app_master.MRAppMaster.on_preempt_notice`); what
  is still running at the deadline dies with a ``preempted`` kill and
  the node is reclaimed.

Every membership change fires the ``capacity_listeners`` (the online
tuner registers here to flag capacity-shifted waves) and emits typed
telemetry (``node_decommission`` / ``node_join`` / ``preempt_notice``
/ ``preempt_kill`` on the ``yarn`` category, ``capacity_change`` on
``node``).  None of this machinery exists unless a plan contains an
elastic kind, so fault-free and legacy-fault digests are untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.yarn.node_manager import KillReason, NodeManager

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.cluster.topology import Cluster
    from repro.sim.engine import Simulator
    from repro.yarn.resource_manager import ResourceManager


class ElasticCluster:
    """Choreographs membership changes on a live cluster."""

    def __init__(
        self,
        sim: "Simulator",
        cluster: "Cluster",
        node_managers: Dict[int, NodeManager],
        rm: "ResourceManager",
        start_node_monitor: Optional[Callable[[NodeManager], None]] = None,
        stop_node_monitor: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.node_managers = node_managers
        self.rm = rm
        self._start_node_monitor = start_node_monitor
        self._stop_node_monitor = stop_node_monitor
        #: Application masters to notify of preemption notices.
        self.apps: List[object] = []
        #: Called with the sim time on every capacity change (join or
        #: departure); the tuner hooks in here.
        self.capacity_listeners: List[Callable[[float], None]] = []
        #: Node ids that joined mid-run, in join order.
        self.joined: List[int] = []
        #: ``(node_id, why)`` for nodes that left, in departure order.
        self.departed: List[Tuple[int, str]] = []
        #: Nodes with a preemption notice whose kill has not landed yet.
        self._preempt_pending: Set[int] = set()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register_app(self, app: object) -> None:
        """Subscribe an application master to preemption notices."""
        if app not in self.apps:
            self.apps.append(app)

    @property
    def migrations(self) -> int:
        """Attempts proactively migrated off preemption-noticed nodes."""
        return sum(int(getattr(app, "preempt_migrations", 0)) for app in self.apps)

    # ------------------------------------------------------------------
    # Decommission (graceful drain)
    # ------------------------------------------------------------------
    def decommission(self, node_id: int) -> bool:
        """Start a graceful drain of *node_id*; False if it is moot."""
        node = self.cluster.node(node_id)
        nm = self.node_managers[node_id]
        if not node.alive or nm.decommissioned or nm.draining:
            return False
        nm.drain()
        self.rm.scheduler.mark_node_draining(node_id)
        tel = self.sim.telemetry
        if tel is not None and tel.wants("yarn"):
            from repro.telemetry.events import NodeDecommission

            tel.emit(
                NodeDecommission(
                    time=self.sim.now,
                    node_id=node_id,
                    running_containers=nm.running_containers,
                )
            )
            tel.increment("elastic.decommissions")
        if nm.running_containers == 0:
            self._complete_departure(node_id, "decommission")
        else:
            # Depart as soon as the last running container settles.  The
            # observer stays registered after departure; it can never
            # fire again because launches are refused from here on.
            def _on_finish(_container: object) -> None:
                if not nm.node.departed and nm.running_containers == 0:
                    self._complete_departure(node_id, "decommission")

            nm.on_container_finished.append(_on_finish)
        return True

    # ------------------------------------------------------------------
    # Join
    # ------------------------------------------------------------------
    def join(self, anchor_node_id: int) -> "Node":
        """Register a brand-new node into the anchor node's rack."""
        rack = self.cluster.node(anchor_node_id).rack
        node = self.cluster.add_node(rack)
        nm = NodeManager(self.sim, node, network=self.cluster.network)
        self.node_managers[node.node_id] = nm
        self.rm.register_node_manager(nm)
        if self._start_node_monitor is not None:
            self._start_node_monitor(nm)
        self.joined.append(node.node_id)
        tel = self.sim.telemetry
        if tel is not None and tel.wants("yarn"):
            from repro.telemetry.events import NodeJoin

            tel.emit(NodeJoin(time=self.sim.now, node_id=node.node_id, rack=rack))
            tel.increment("elastic.joins")
        self._emit_capacity_change(node.node_id, "join")
        return node

    # ------------------------------------------------------------------
    # Spot preemption (notice, grace window, hard kill)
    # ------------------------------------------------------------------
    def preempt_notice(self, node_id: int, grace: float) -> bool:
        """Deliver a preemption notice; the kill lands *grace* s later.

        A node that is dead, already draining, or already under notice
        ignores the (back-to-back) notice entirely.
        """
        node = self.cluster.node(node_id)
        nm = self.node_managers[node_id]
        if not node.alive or nm.decommissioned or nm.draining:
            return False
        if node_id in self._preempt_pending:
            return False
        self._preempt_pending.add(node_id)
        nm.drain()
        self.rm.scheduler.mark_node_draining(node_id)
        deadline = self.sim.now + grace
        tel = self.sim.telemetry
        if tel is not None and tel.wants("yarn"):
            from repro.telemetry.events import PreemptNotice

            tel.emit(
                PreemptNotice(
                    time=self.sim.now,
                    node_id=node_id,
                    deadline=deadline,
                    running_containers=nm.running_containers,
                )
            )
            tel.increment("elastic.preempt_notices")
        # The AMs get the whole grace window to migrate doomed attempts.
        for app in list(self.apps):
            notify = getattr(app, "on_preempt_notice", None)
            if notify is not None:
                notify(node_id, deadline)
        self.sim.call_at(deadline, lambda: self._preempt_kill(node_id))
        return True

    def _preempt_kill(self, node_id: int) -> None:
        self._preempt_pending.discard(node_id)
        node = self.cluster.node(node_id)
        nm = self.node_managers[node_id]
        if not node.alive or nm.decommissioned:
            # Crashed (or otherwise gone) during the grace window; the
            # reclaim is moot.
            return
        killed = nm.decommission(
            KillReason("preempted", f"spot preemption reclaimed {node.hostname}")
        )
        tel = self.sim.telemetry
        if tel is not None and tel.wants("yarn"):
            from repro.telemetry.events import PreemptKill

            tel.emit(
                PreemptKill(time=self.sim.now, node_id=node_id, killed_containers=killed)
            )
            tel.increment("elastic.preempt_kills")
        self._complete_departure(node_id, "spot_preempt")

    # ------------------------------------------------------------------
    # Departure plumbing
    # ------------------------------------------------------------------
    def _complete_departure(self, node_id: int, why: str) -> None:
        """Take a drained (or reclaimed) node out of the cluster."""
        node = self.cluster.node(node_id)
        nm = self.node_managers[node_id]
        nm.decommissioned = True  # stops the heartbeat loop, refuses launches
        self.rm.deregister_node(node_id)
        node.depart()
        if self.cluster.network.faults is not None:
            # In network mode a departed node's NIC stalls like a
            # crashed one's, so in-flight fetches from it time out and
            # the recovery path takes over.
            self.cluster.network.freeze_node_nic(node_id)
        if self._stop_node_monitor is not None:
            self._stop_node_monitor(node_id)
        self.departed.append((node_id, why))
        self._emit_capacity_change(node_id, "depart")

    def _emit_capacity_change(self, node_id: int, action: str) -> None:
        tel = self.sim.telemetry
        if tel is not None and tel.wants("node"):
            from repro.telemetry.events import CapacityChange

            tel.emit(
                CapacityChange(
                    time=self.sim.now,
                    node_id=node_id,
                    action=action,
                    live_nodes=len(self.cluster.live_nodes),
                    live_yarn_memory_bytes=float(self.cluster.live_yarn_memory),
                )
            )
            tel.increment("elastic.capacity_changes")
        for listener in list(self.capacity_listeners):
            listener(self.sim.now)


__all__ = ["ElasticCluster"]
