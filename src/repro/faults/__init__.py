"""Fault injection: declarative plans applied to the live simulation."""

from repro.faults.control import ControlPlaneState
from repro.faults.elastic import ElasticCluster
from repro.faults.injector import FaultInjector
from repro.faults.network_state import NetworkFaultState
from repro.faults.plan import (
    CONTROL_FAULT_KINDS,
    ELASTIC_FAULT_KINDS,
    FAULT_KINDS,
    NETWORK_FAULT_KINDS,
    Fault,
    FaultPlan,
    generate_fault_plan,
    plan_from_json,
    plan_to_json,
)

__all__ = [
    "CONTROL_FAULT_KINDS",
    "ELASTIC_FAULT_KINDS",
    "FAULT_KINDS",
    "NETWORK_FAULT_KINDS",
    "ControlPlaneState",
    "ElasticCluster",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "NetworkFaultState",
    "generate_fault_plan",
    "plan_from_json",
    "plan_to_json",
]
