"""Fault injection: declarative plans applied to the live simulation."""

from repro.faults.elastic import ElasticCluster
from repro.faults.injector import FaultInjector
from repro.faults.network_state import NetworkFaultState
from repro.faults.plan import (
    ELASTIC_FAULT_KINDS,
    FAULT_KINDS,
    NETWORK_FAULT_KINDS,
    Fault,
    FaultPlan,
    generate_fault_plan,
    plan_from_json,
    plan_to_json,
)

__all__ = [
    "ELASTIC_FAULT_KINDS",
    "FAULT_KINDS",
    "NETWORK_FAULT_KINDS",
    "ElasticCluster",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "NetworkFaultState",
    "generate_fault_plan",
    "plan_from_json",
    "plan_to_json",
]
