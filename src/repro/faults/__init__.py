"""Fault injection: declarative plans applied to the live simulation."""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_KINDS, Fault, FaultPlan, generate_fault_plan

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "generate_fault_plan",
]
