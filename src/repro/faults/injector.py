"""The fault injector: applies a :class:`FaultPlan` to a live cluster.

Arming the injector is the single switch that turns on the whole
failure-handling machinery: it starts the RM's heartbeat tracking and
liveness sweep (off by default, so fault-free runs keep a finite
calendar and bit-identical digests) and schedules one callback per
planned fault.

Faults act through the same surfaces real hardware does:

* a crash freezes the node's CPU/disk links and silences its
  heartbeats -- detection happens at the RM after the liveness expiry,
  not instantaneously;
* a container kill preempts through the node manager, exactly like a
  scheduler preemption would;
* a degradation rescales link capacities mid-flight, so running tasks
  slow down rather than restart.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.faults.plan import Fault, FaultPlan
from repro.yarn.node_manager import KillReason, NodeManager

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import Cluster
    from repro.sim.engine import Simulator
    from repro.yarn.resource_manager import ResourceManager


class FaultInjector:
    """Schedules and applies the faults of one plan."""

    def __init__(
        self,
        sim: "Simulator",
        cluster: "Cluster",
        node_managers: Dict[int, NodeManager],
        rm: "ResourceManager",
        plan: FaultPlan,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.node_managers = node_managers
        self.rm = rm
        self.plan = plan
        #: ``(time, description)`` log of faults actually applied.
        self.applied: List[Tuple[float, str]] = []
        #: Planned faults skipped because their target was already dead.
        self.skipped: List[Tuple[float, str]] = []
        self._started = False

    def start(self) -> None:
        """Arm failure detection and schedule every planned fault."""
        if self._started:
            raise RuntimeError("fault injector already started")
        self._started = True
        if not self.plan.faults:
            return
        ordered = [self.node_managers[nid] for nid in sorted(self.node_managers)]
        self.rm.start_failure_detection(ordered)
        for fault in self.plan.faults:
            self.sim.call_at(fault.time, lambda f=fault: self._apply(f))

    def _emit(self, fault: Fault, applied: bool, detail: str) -> None:
        tel = self.sim.telemetry
        if tel is not None and tel.wants("fault"):
            from repro.telemetry.events import FaultInjected

            tel.emit(
                FaultInjected(
                    time=self.sim.now,
                    fault_kind=fault.kind,
                    node_id=fault.node_id,
                    applied=applied,
                    detail=detail,
                )
            )
            if applied:
                tel.increment("faults.applied")

    def _apply(self, fault: Fault) -> None:
        node = self.cluster.node(fault.node_id)
        nm = self.node_managers[fault.node_id]
        if fault.kind == "node_crash":
            if not node.alive:
                self.skipped.append((self.sim.now, fault.describe()))
                self._emit(fault, False, fault.describe())
                return
            node.fail()
            self.applied.append((self.sim.now, fault.describe()))
            self._emit(fault, True, fault.describe())
            return
        if not node.alive or nm.decommissioned:
            # The target died before this fault's time arrived.
            self.skipped.append((self.sim.now, fault.describe()))
            self._emit(fault, False, fault.describe())
            return
        if fault.kind == "degrade":
            node.degrade(cpu_factor=fault.cpu_factor, disk_factor=fault.disk_factor)
            self.applied.append((self.sim.now, fault.describe()))
            self._emit(fault, True, fault.describe())
        else:  # container_kill
            killed = nm.kill_some(
                fault.count,
                KillReason("preempted", f"injected container kill on {node.hostname}"),
            )
            self.applied.append(
                (self.sim.now, f"{fault.describe()} -> {killed} killed")
            )
            self._emit(fault, True, f"{fault.describe()} -> {killed} killed")
