"""The fault injector: applies a :class:`FaultPlan` to a live cluster.

Arming the injector is the single switch that turns on the whole
failure-handling machinery: it starts the RM's heartbeat tracking and
liveness sweep (off by default, so fault-free runs keep a finite
calendar and bit-identical digests) and schedules one callback per
planned fault.

Faults act through the same surfaces real hardware does:

* a crash freezes the node's CPU/disk links and silences its
  heartbeats -- detection happens at the RM after the liveness expiry,
  not instantaneously;
* a container kill preempts through the node manager, exactly like a
  scheduler preemption would;
* a degradation rescales link capacities mid-flight, so running tasks
  slow down rather than restart (and heal at ``recover_time`` when the
  plan says so);
* network faults act on ``cluster.network``: ``link_degrade`` rescales
  a NIC, ``rack_partition`` stalls an uplink for a window, and
  ``link_flaky`` opens a per-fetch failure window drawn from the
  dedicated fetch RNG stream.  Any network kind in the plan arms
  :class:`~repro.faults.network_state.NetworkFaultState` on the
  network, which switches reducers onto the per-fetch recovery path;
* elastic churn (``node_decommission`` / ``node_join`` /
  ``spot_preempt``) goes through an
  :class:`~repro.faults.elastic.ElasticCluster` manager, likewise armed
  only when the plan contains an elastic kind.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.faults.plan import CONTROL_FAULT_KINDS, Fault, FaultPlan
from repro.yarn.node_manager import KillReason, NodeManager

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import Cluster
    from repro.faults.control import ControlPlaneState
    from repro.faults.elastic import ElasticCluster
    from repro.sim.engine import Simulator
    from repro.yarn.resource_manager import ResourceManager


class FaultInjector:
    """Schedules and applies the faults of one plan."""

    def __init__(
        self,
        sim: "Simulator",
        cluster: "Cluster",
        node_managers: Dict[int, NodeManager],
        rm: "ResourceManager",
        plan: FaultPlan,
        fetch_rng: Optional[np.random.Generator] = None,
        elastic: Optional["ElasticCluster"] = None,
        control: Optional["ControlPlaneState"] = None,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.node_managers = node_managers
        self.rm = rm
        self.plan = plan
        self.fetch_rng = fetch_rng
        #: Elastic membership manager; a caller with monitor wiring (the
        #: harness) passes a fully hooked-up one, otherwise a bare
        #: manager is built on demand in :meth:`start` when the plan
        #: actually contains elastic kinds.
        self.elastic = elastic
        #: Control-plane fault manager; same deal as ``elastic`` -- the
        #: harness passes one wired to its monitor/tuner, and a bare one
        #: is built on demand when the plan contains a control kind.
        self.control = control
        #: ``(time, description)`` log of faults actually applied.
        self.applied: List[Tuple[float, str]] = []
        #: Planned faults skipped because their target was already dead.
        self.skipped: List[Tuple[float, str]] = []
        self._started = False
        self._network_mode = False

    def start(self) -> None:
        """Arm failure detection and schedule every planned fault."""
        if self._started:
            raise RuntimeError("fault injector already started")
        self._started = True
        if not self.plan.faults:
            return
        if self.plan.has_network_faults:
            # Arming the gray-failure state flips reducers onto the
            # per-fetch recovery path; legacy plans never reach here,
            # so their digests are untouched.
            from repro.faults.network_state import NetworkFaultState

            rng = self.fetch_rng if self.fetch_rng is not None else np.random.default_rng(0)
            self.cluster.network.faults = NetworkFaultState(rng)
            self._network_mode = True
        if self.plan.has_elastic_faults and self.elastic is None:
            from repro.faults.elastic import ElasticCluster

            self.elastic = ElasticCluster(
                self.sim, self.cluster, self.node_managers, self.rm
            )
        if self.plan.has_control_faults and self.control is None:
            from repro.faults.control import ControlPlaneState

            self.control = ControlPlaneState(self.sim)
        ordered = [self.node_managers[nid] for nid in sorted(self.node_managers)]
        self.rm.start_failure_detection(ordered)
        for fault in self.plan.faults:
            self.sim.call_at(fault.time, lambda f=fault: self._apply(f))

    def _emit(self, fault: Fault, applied: bool, detail: str) -> None:
        tel = self.sim.telemetry
        if tel is not None and tel.wants("fault"):
            from repro.telemetry.events import FaultInjected

            tel.emit(
                FaultInjected(
                    time=self.sim.now,
                    fault_kind=fault.kind,
                    node_id=fault.node_id,
                    applied=applied,
                    detail=detail,
                )
            )
            if applied:
                tel.increment("faults.applied")

    def _applied(self, fault: Fault, detail: str) -> None:
        self.applied.append((self.sim.now, detail))
        self._emit(fault, True, detail)

    def _apply(self, fault: Fault) -> None:
        if fault.kind == "node_join":
            # The joining node does not exist yet, so this branch must
            # run before any node/NM lookup; node_id names the anchor
            # whose rack the newcomer enters.
            node = self.elastic.join(fault.node_id)
            self._applied(fault, f"{fault.describe()} -> node {node.node_id}")
            return
        if fault.kind in CONTROL_FAULT_KINDS:
            # Control-plane faults hit the tuner/monitor sidecar, not a
            # cluster node, so they too dispatch before the node lookup
            # (stats_gap carries a node_id but only as a label).
            self._applied(fault, self.control.apply(fault))
            return
        node = self.cluster.node(fault.node_id)
        nm = self.node_managers[fault.node_id]
        network = self.cluster.network
        if fault.kind == "node_crash":
            if not node.alive:
                self.skipped.append((self.sim.now, fault.describe()))
                self._emit(fault, False, fault.describe())
                return
            node.fail()
            if self._network_mode:
                # In network mode a dead node's NIC stalls too, so
                # in-flight fetches from it time out instead of
                # completing against a corpse.
                network.freeze_node_nic(fault.node_id)
            self._applied(fault, fault.describe())
            return
        if not node.alive or nm.decommissioned:
            # The target died before this fault's time arrived.
            self.skipped.append((self.sim.now, fault.describe()))
            self._emit(fault, False, fault.describe())
            return
        if fault.kind == "degrade":
            node.degrade(cpu_factor=fault.cpu_factor, disk_factor=fault.disk_factor)
            if fault.recover_time > 0:
                # Node.restore() no-ops on a dead node, so a crash that
                # lands in between stays a crash.
                self.sim.call_at(
                    self.sim.now + fault.recover_time, lambda n=node: n.restore()
                )
            self._applied(fault, fault.describe())
        elif fault.kind == "link_degrade":
            network.scale_node_nic(fault.node_id, fault.net_factor)
            if fault.recover_time > 0:
                # restore_node_nic() no-ops once the NIC froze (crash).
                self.sim.call_at(
                    self.sim.now + fault.recover_time,
                    lambda nid=fault.node_id: network.restore_node_nic(nid),
                )
            self._applied(fault, fault.describe())
        elif fault.kind == "link_flaky":
            network.faults.add_flaky_window(
                fault.node_id,
                self.sim.now,
                self.sim.now + fault.duration,
                fault.fail_prob,
            )
            self._applied(fault, fault.describe())
        elif fault.kind == "rack_partition":
            rack = node.rack
            network.partition_rack(rack)
            self.sim.call_at(
                self.sim.now + fault.duration, lambda r=rack: network.heal_rack(r)
            )
            self._applied(fault, fault.describe())
        elif fault.kind == "node_decommission":
            if self.elastic.decommission(fault.node_id):
                self._applied(fault, fault.describe())
            else:
                self.skipped.append((self.sim.now, fault.describe()))
                self._emit(fault, False, fault.describe())
        elif fault.kind == "spot_preempt":
            if self.elastic.preempt_notice(fault.node_id, fault.duration):
                self._applied(fault, fault.describe())
            else:
                self.skipped.append((self.sim.now, fault.describe()))
                self._emit(fault, False, fault.describe())
        else:  # container_kill
            killed = nm.kill_some(
                fault.count,
                KillReason("preempted", f"injected container kill on {node.hostname}"),
            )
            self._applied(fault, f"{fault.describe()} -> {killed} killed")
