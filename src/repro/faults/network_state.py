"""Gray-failure state for the cluster network.

A :class:`NetworkFaultState` is armed on ``cluster.network.faults`` by
the injector when (and only when) the active plan contains network
fault kinds.  It owns the dedicated fetch RNG stream and the set of
``link_flaky`` windows; per-fetch failure draws happen here so the
stream is consumed in a deterministic order and **only** while a flaky
window is open -- outside any window no draw is made at all, keeping
fault-free and legacy-fault digests untouched.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np


class NetworkFaultState:
    """Flaky-link windows plus the fetch-failure RNG stream."""

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        #: node_id -> [(start, end, fail_prob)]
        self._flaky: Dict[int, List[Tuple[float, float, float]]] = {}
        #: Total failure draws that came up "failed" (introspection).
        self.fetch_failures_drawn = 0

    def add_flaky_window(
        self, node_id: int, start: float, end: float, fail_prob: float
    ) -> None:
        if end <= start:
            raise ValueError(f"flaky window must have end > start, got [{start}, {end})")
        if not (0.0 < fail_prob < 1.0):
            raise ValueError(f"fail_prob must be in (0, 1), got {fail_prob}")
        self._flaky.setdefault(node_id, []).append((start, end, fail_prob))

    def failure_prob(self, node_id: int, now: float) -> float:
        """Combined fetch-failure probability for *node_id* at *now*."""
        p = 0.0
        for start, end, prob in self._flaky.get(node_id, ()):
            if start <= now < end:
                p = 1.0 - (1.0 - p) * (1.0 - prob)
        return p

    def draw_fetch_failure(self, src_node_id: int, dst_node_id: int, now: float) -> bool:
        """Decide whether one fetch from src to dst fails right now.

        Either endpoint being inside a flaky window exposes the fetch;
        the combined probability treats the two ends as independent.
        The RNG is consumed only when the probability is nonzero, so
        runs without open windows never touch the stream.
        """
        ps = self.failure_prob(src_node_id, now)
        pd = self.failure_prob(dst_node_id, now)
        p = 1.0 - (1.0 - ps) * (1.0 - pd)
        if p <= 0.0:
            return False
        failed = bool(float(self.rng.random()) < p)
        if failed:
            self.fetch_failures_drawn += 1
        return failed
