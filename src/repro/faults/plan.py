"""Declarative fault plans.

A :class:`FaultPlan` is an immutable, time-sorted list of
:class:`Fault` records -- pure data, picklable, and cheap to compare.
Plans are either built explicitly (tests pin exact scenarios) or drawn
from a dedicated RNG stream by :func:`generate_fault_plan` so the same
seed always yields the same scenario, independently of every other
random draw in the simulation (HDFS placement, dataflow noise, tuner
sampling all keep their own streams).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

import numpy as np

#: The fault kinds the injector understands.
FAULT_KINDS = ("node_crash", "container_kill", "degrade")


@dataclass(frozen=True)
class Fault:
    """One scheduled fault event.

    ``node_crash``
        The node dies permanently at ``time``: its CPU and disks freeze
        and it stops heartbeating; the RM declares it lost after the
        liveness expiry and every container on it is killed.
    ``container_kill``
        ``count`` running containers on the node are killed (transient
        preemption); the node itself stays healthy.
    ``degrade``
        The node's CPU and/or disks are slowed to ``cpu_factor`` /
        ``disk_factor`` of nominal capacity -- a straggler, not a
        failure.
    """

    time: float
    kind: str
    node_id: int
    cpu_factor: float = 1.0
    disk_factor: float = 1.0
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}, want one of {FAULT_KINDS}")
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.node_id < 0:
            raise ValueError(f"node id must be >= 0, got {self.node_id}")
        if not (0.0 < self.cpu_factor <= 1.0 and 0.0 < self.disk_factor <= 1.0):
            raise ValueError("slowdown factors must be in (0, 1]")
        if self.count < 1:
            raise ValueError("container_kill count must be >= 1")

    def describe(self) -> str:
        if self.kind == "node_crash":
            return f"t={self.time:.1f}s crash node {self.node_id}"
        if self.kind == "container_kill":
            return f"t={self.time:.1f}s kill {self.count} container(s) on node {self.node_id}"
        return (
            f"t={self.time:.1f}s degrade node {self.node_id} "
            f"(cpu x{self.cpu_factor:.2f}, disk x{self.disk_factor:.2f})"
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults, sorted by (time, node, kind)."""

    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.faults, key=lambda f: (f.time, f.node_id, f.kind))
        )
        object.__setattr__(self, "faults", ordered)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    @property
    def crashed_nodes(self) -> List[int]:
        return sorted({f.node_id for f in self.faults if f.kind == "node_crash"})

    @property
    def degraded_nodes(self) -> List[int]:
        return sorted({f.node_id for f in self.faults if f.kind == "degrade"})

    def describe(self) -> List[str]:
        return [f.describe() for f in self.faults]


def generate_fault_plan(
    rng: np.random.Generator,
    num_nodes: int,
    horizon: float,
    crashes: int = 0,
    container_kills: int = 0,
    degraded: int = 0,
    degrade_span: Tuple[float, float] = (0.35, 0.75),
) -> FaultPlan:
    """Draw a random fault scenario from *rng*.

    *horizon* is the expected fault-free job duration; crash times land
    in [15%, 60%] of it (late enough to destroy real work, early enough
    that recovery happens within the run), degradations start early
    ([5%, 30%]) so stragglers shape whole waves, and container kills
    spread over [20%, 80%].  Crashed and degraded node sets are
    disjoint, and at least one node is left fully healthy.
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if crashes < 0 or container_kills < 0 or degraded < 0:
        raise ValueError("fault counts must be >= 0")
    if crashes + degraded >= num_nodes:
        raise ValueError(
            f"{crashes} crash(es) + {degraded} degraded node(s) needs at least "
            f"{crashes + degraded + 1} nodes, have {num_nodes}"
        )
    lo, hi = degrade_span
    if not (0.0 < lo <= hi <= 1.0):
        raise ValueError(f"degrade_span must satisfy 0 < lo <= hi <= 1, got {degrade_span}")

    faults: List[Fault] = []
    picked = rng.choice(num_nodes, size=crashes + degraded, replace=False)
    crash_nodes = sorted(int(n) for n in picked[:crashes])
    degrade_nodes = sorted(int(n) for n in picked[crashes:])
    for node_id in crash_nodes:
        t = float(rng.uniform(0.15, 0.60)) * horizon
        faults.append(Fault(time=t, kind="node_crash", node_id=node_id))
    for node_id in degrade_nodes:
        t = float(rng.uniform(0.05, 0.30)) * horizon
        faults.append(
            Fault(
                time=t,
                kind="degrade",
                node_id=node_id,
                cpu_factor=float(rng.uniform(lo, hi)),
                disk_factor=float(rng.uniform(lo, hi)),
            )
        )
    healthy = [n for n in range(num_nodes) if n not in crash_nodes]
    for _ in range(container_kills):
        node_id = int(healthy[int(rng.integers(len(healthy)))])
        t = float(rng.uniform(0.20, 0.80)) * horizon
        faults.append(Fault(time=t, kind="container_kill", node_id=node_id))
    return FaultPlan(tuple(faults))
