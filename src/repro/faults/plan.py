"""Declarative fault plans.

A :class:`FaultPlan` is an immutable, time-sorted list of
:class:`Fault` records -- pure data, picklable, and cheap to compare.
Plans are either built explicitly (tests pin exact scenarios) or drawn
from a dedicated RNG stream by :func:`generate_fault_plan` so the same
seed always yields the same scenario, independently of every other
random draw in the simulation (HDFS placement, dataflow noise, tuner
sampling all keep their own streams).

Plans round-trip through JSON (:func:`plan_to_json` /
:func:`plan_from_json`) so a pinned scenario can be replayed outside
:func:`generate_fault_plan` -- e.g. the ``repro faults --plan-json``
dump/load path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

#: The fault kinds the injector understands.
FAULT_KINDS = (
    "node_crash",
    "container_kill",
    "degrade",
    "link_degrade",
    "link_flaky",
    "rack_partition",
    "node_decommission",
    "node_join",
    "spot_preempt",
    "tuner_crash",
    "monitor_outage",
    "stats_gap",
)

#: Kinds that act on the network fabric rather than a node's CPU/disks.
#: Their presence in a plan arms the gray-failure fetch path (per-fetch
#: shuffle with timeout/retry/penalty-box recovery).
NETWORK_FAULT_KINDS = frozenset({"link_degrade", "link_flaky", "rack_partition"})

#: Kinds that change cluster membership (elastic churn).  Their presence
#: in a plan arms the elastic-cluster machinery (drain states, dynamic
#: registration, capacity-change notifications); fault-free runs and
#: legacy fault plans never construct any of it.
ELASTIC_FAULT_KINDS = frozenset({"node_decommission", "node_join", "spot_preempt"})

#: Kinds that attack the advisory control plane (tuner, central
#: monitor, slave-stats stream) instead of the data plane.  Their
#: presence in a plan arms the :class:`ControlPlaneState` choreography;
#: plans without them never construct any of it, so every pre-existing
#: digest stays byte-identical.
CONTROL_FAULT_KINDS = frozenset({"tuner_crash", "monitor_outage", "stats_gap"})


@dataclass(frozen=True)
class Fault:
    """One scheduled fault event.

    ``node_crash``
        The node dies permanently at ``time``: its CPU and disks freeze
        and it stops heartbeating; the RM declares it lost after the
        liveness expiry and every container on it is killed.
    ``container_kill``
        ``count`` running containers on the node are killed (transient
        preemption); the node itself stays healthy.
    ``degrade``
        The node's CPU and/or disks are slowed to ``cpu_factor`` /
        ``disk_factor`` of nominal capacity -- a straggler, not a
        failure.  With ``recover_time > 0`` the node heals back to
        nominal that many seconds after the fault lands.
    ``link_degrade``
        The node's NIC (TX and RX) is rescaled to ``net_factor`` of
        nominal bandwidth; with ``recover_time > 0`` it heals after
        that long.
    ``link_flaky``
        For ``duration`` seconds, every shuffle fetch touching the node
        fails with probability ``fail_prob`` (drawn from the dedicated
        fault RNG stream) -- a gray failure the flow scheduler cannot
        see, only the fetcher's retry loop.
    ``rack_partition``
        The rack containing the node loses its uplink for ``duration``
        seconds: cross-rack flows stall (rack-local traffic is
        unaffected).
    ``node_decommission``
        Graceful drain starting at ``time``: the node stops accepting
        new containers, running tasks finish undisturbed, and once the
        last one settles the node deregisters and leaves the cluster.
    ``node_join``
        A brand-new node registers at ``time`` and enters scheduling.
        ``node_id`` names an *anchor* node whose rack the newcomer
        joins (the new node itself gets the next sequential id).
    ``spot_preempt``
        A spot-style preemption *notice* at ``time``: the node stops
        accepting containers and ``duration`` seconds later whatever is
        still running on it is hard-killed and the node is reclaimed.
        During the grace window the AM proactively migrates the doomed
        attempts to other nodes.
    ``tuner_crash``
        The online tuner process dies at ``time`` and restarts
        ``duration`` seconds later.  While down, wave gates release
        immediately on the last-known-good configuration; on recovery
        the tuner quarantines (voids) whatever was in flight across the
        outage and resumes the search from its incumbent.  ``node_id``
        is an anchor convention only (the tuner is not node-resident).
    ``monitor_outage``
        The central monitor is unreachable for ``duration`` seconds:
        every slave-stats sample in the window is lost, and the tuner
        treats task measurements spanning the window as suspect.
    ``stats_gap``
        One slave monitor (on ``node_id``) stops reporting for
        ``duration`` seconds -- a gray control-plane failure.  The
        central monitor bridges the gap instead of reading it as idle.
    """

    time: float
    kind: str
    node_id: int
    cpu_factor: float = 1.0
    disk_factor: float = 1.0
    count: int = 1
    net_factor: float = 1.0
    fail_prob: float = 0.0
    duration: float = 0.0
    recover_time: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}, want one of {FAULT_KINDS}")
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.node_id < 0:
            raise ValueError(f"node id must be >= 0, got {self.node_id}")
        if not (0.0 < self.cpu_factor <= 1.0 and 0.0 < self.disk_factor <= 1.0):
            raise ValueError("slowdown factors must be in (0, 1]")
        if self.count < 1:
            raise ValueError("container_kill count must be >= 1")
        if not (0.0 < self.net_factor <= 1.0):
            raise ValueError(f"net_factor must be in (0, 1], got {self.net_factor}")
        if not (0.0 <= self.fail_prob < 1.0):
            raise ValueError(f"fail_prob must be in [0, 1), got {self.fail_prob}")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        if self.recover_time < 0:
            raise ValueError(f"recover_time must be >= 0, got {self.recover_time}")
        if self.kind == "link_flaky":
            if self.fail_prob <= 0.0:
                raise ValueError("link_flaky needs fail_prob > 0")
            if self.duration <= 0.0:
                raise ValueError("link_flaky needs duration > 0")
        if self.kind == "rack_partition" and self.duration <= 0.0:
            raise ValueError("rack_partition needs duration > 0")
        if self.kind == "spot_preempt" and self.duration <= 0.0:
            raise ValueError("spot_preempt needs duration > 0 (the grace window)")
        if self.kind in CONTROL_FAULT_KINDS and self.duration <= 0.0:
            raise ValueError(f"{self.kind} needs duration > 0 (the outage window)")

    def describe(self) -> str:
        if self.kind == "node_crash":
            return f"t={self.time:.1f}s crash node {self.node_id}"
        if self.kind == "container_kill":
            return f"t={self.time:.1f}s kill {self.count} container(s) on node {self.node_id}"
        if self.kind == "link_degrade":
            recov = f", recovers +{self.recover_time:.1f}s" if self.recover_time > 0 else ""
            return (
                f"t={self.time:.1f}s degrade link of node {self.node_id} "
                f"(net x{self.net_factor:.2f}{recov})"
            )
        if self.kind == "link_flaky":
            return (
                f"t={self.time:.1f}s flaky link on node {self.node_id} "
                f"(p={self.fail_prob:.2f} for {self.duration:.1f}s)"
            )
        if self.kind == "rack_partition":
            return (
                f"t={self.time:.1f}s partition rack of node {self.node_id} "
                f"for {self.duration:.1f}s"
            )
        if self.kind == "node_decommission":
            return f"t={self.time:.1f}s decommission node {self.node_id} (graceful drain)"
        if self.kind == "node_join":
            return f"t={self.time:.1f}s join a new node into the rack of node {self.node_id}"
        if self.kind == "spot_preempt":
            return (
                f"t={self.time:.1f}s spot-preempt notice on node {self.node_id} "
                f"(kill after {self.duration:.1f}s grace)"
            )
        if self.kind == "tuner_crash":
            return f"t={self.time:.1f}s tuner crash (restarts +{self.duration:.1f}s)"
        if self.kind == "monitor_outage":
            return f"t={self.time:.1f}s monitor outage for {self.duration:.1f}s"
        if self.kind == "stats_gap":
            return (
                f"t={self.time:.1f}s stats gap on node {self.node_id} "
                f"for {self.duration:.1f}s"
            )
        recov = f", recovers +{self.recover_time:.1f}s" if self.recover_time > 0 else ""
        return (
            f"t={self.time:.1f}s degrade node {self.node_id} "
            f"(cpu x{self.cpu_factor:.2f}, disk x{self.disk_factor:.2f}{recov})"
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults, sorted by (time, node, kind)."""

    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.faults, key=lambda f: (f.time, f.node_id, f.kind))
        )
        object.__setattr__(self, "faults", ordered)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    @property
    def crashed_nodes(self) -> List[int]:
        return sorted({f.node_id for f in self.faults if f.kind == "node_crash"})

    @property
    def degraded_nodes(self) -> List[int]:
        return sorted({f.node_id for f in self.faults if f.kind == "degrade"})

    @property
    def has_network_faults(self) -> bool:
        return any(f.kind in NETWORK_FAULT_KINDS for f in self.faults)

    @property
    def has_elastic_faults(self) -> bool:
        return any(f.kind in ELASTIC_FAULT_KINDS for f in self.faults)

    @property
    def has_control_faults(self) -> bool:
        return any(f.kind in CONTROL_FAULT_KINDS for f in self.faults)

    def describe(self) -> List[str]:
        return [f.describe() for f in self.faults]


#: Fault fields serialized to JSON, in declaration order.  Defaults are
#: elided from the dump so old-kind plans stay compact and forward-
#: compatible dumps are stable under field additions.
_FAULT_FIELD_DEFAULTS = (
    ("cpu_factor", 1.0),
    ("disk_factor", 1.0),
    ("count", 1),
    ("net_factor", 1.0),
    ("fail_prob", 0.0),
    ("duration", 0.0),
    ("recover_time", 0.0),
)


def plan_to_json(plan: FaultPlan) -> str:
    """Serialize *plan* to a stable, human-editable JSON document."""
    records = []
    for f in plan.faults:
        rec = {"time": f.time, "kind": f.kind, "node_id": f.node_id}
        for name, default in _FAULT_FIELD_DEFAULTS:
            value = getattr(f, name)
            if value != default:
                rec[name] = value
        records.append(rec)
    return json.dumps({"faults": records}, indent=2, sort_keys=True)


def plan_from_json(text: str) -> FaultPlan:
    """Parse a :func:`plan_to_json` document back into a plan.

    Validation happens in :class:`Fault`'s ``__post_init__``, so a
    hand-edited document with out-of-range fields fails loudly.
    """
    doc = json.loads(text)
    if not isinstance(doc, dict) or not isinstance(doc.get("faults"), list):
        raise ValueError("fault plan JSON must be an object with a 'faults' list")
    known = {"time", "kind", "node_id"} | {name for name, _ in _FAULT_FIELD_DEFAULTS}
    faults = []
    for rec in doc["faults"]:
        if not isinstance(rec, dict):
            raise ValueError(f"fault record must be an object, got {rec!r}")
        unknown = set(rec) - known
        if unknown:
            raise ValueError(f"unknown fault fields {sorted(unknown)}")
        faults.append(Fault(**rec))
    return FaultPlan(tuple(faults))


def generate_fault_plan(
    rng: np.random.Generator,
    num_nodes: int,
    horizon: float,
    crashes: int = 0,
    container_kills: int = 0,
    degraded: int = 0,
    degrade_span: Tuple[float, float] = (0.35, 0.75),
    link_degraded: int = 0,
    link_flaky: int = 0,
    rack_partitions: int = 0,
    decommissions: int = 0,
    joins: int = 0,
    spot_preempts: int = 0,
    tuner_crashes: int = 0,
    monitor_outages: int = 0,
    stats_gaps: int = 0,
) -> FaultPlan:
    """Draw a random fault scenario from *rng*.

    *horizon* is the expected fault-free job duration; crash times land
    in [15%, 60%] of it (late enough to destroy real work, early enough
    that recovery happens within the run), degradations start early
    ([5%, 30%]) so stragglers shape whole waves, and container kills
    spread over [20%, 80%].  Crashed and degraded node sets are
    disjoint, and at least one node is left fully healthy.

    Network faults (``link_degraded`` NIC rescales, ``link_flaky``
    fetch-failure windows, ``rack_partitions`` uplink stalls) target
    non-crashed nodes and are drawn strictly *after* every legacy draw,
    so a plan generated with only the legacy knobs is bit-identical to
    what earlier versions produced from the same stream.

    Elastic churn (``decommissions`` graceful drains, ``joins`` new
    nodes, ``spot_preempts`` notice-then-kill reclaims) follows the same
    rule: its draws come after every legacy *and* network draw.  Drain
    and preemption targets are distinct non-crashed nodes, and at least
    one seed node always stays in service.

    Control-plane faults (``tuner_crashes`` tuner restarts,
    ``monitor_outages`` central-monitor blackouts, ``stats_gaps``
    single-slave reporting gaps) are the newest family and are drawn
    strictly after every legacy, network, *and* elastic draw, keeping
    every older-knob plan bit-identical from the same stream.
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if crashes < 0 or container_kills < 0 or degraded < 0:
        raise ValueError("fault counts must be >= 0")
    if link_degraded < 0 or link_flaky < 0 or rack_partitions < 0:
        raise ValueError("fault counts must be >= 0")
    if decommissions < 0 or joins < 0 or spot_preempts < 0:
        raise ValueError("fault counts must be >= 0")
    if tuner_crashes < 0 or monitor_outages < 0 or stats_gaps < 0:
        raise ValueError("fault counts must be >= 0")
    if crashes + decommissions + spot_preempts >= num_nodes:
        raise ValueError(
            f"{crashes} crash(es) + {decommissions} decommission(s) + "
            f"{spot_preempts} preemption(s) would empty a {num_nodes}-node cluster"
        )
    if crashes + degraded >= num_nodes:
        raise ValueError(
            f"{crashes} crash(es) + {degraded} degraded node(s) needs at least "
            f"{crashes + degraded + 1} nodes, have {num_nodes}"
        )
    lo, hi = degrade_span
    if not (0.0 < lo <= hi <= 1.0):
        raise ValueError(f"degrade_span must satisfy 0 < lo <= hi <= 1, got {degrade_span}")

    faults: List[Fault] = []
    picked = rng.choice(num_nodes, size=crashes + degraded, replace=False)
    crash_nodes = sorted(int(n) for n in picked[:crashes])
    degrade_nodes = sorted(int(n) for n in picked[crashes:])
    for node_id in crash_nodes:
        t = float(rng.uniform(0.15, 0.60)) * horizon
        faults.append(Fault(time=t, kind="node_crash", node_id=node_id))
    for node_id in degrade_nodes:
        t = float(rng.uniform(0.05, 0.30)) * horizon
        faults.append(
            Fault(
                time=t,
                kind="degrade",
                node_id=node_id,
                cpu_factor=float(rng.uniform(lo, hi)),
                disk_factor=float(rng.uniform(lo, hi)),
            )
        )
    healthy = [n for n in range(num_nodes) if n not in crash_nodes]
    for _ in range(container_kills):
        node_id = int(healthy[int(rng.integers(len(healthy)))])
        t = float(rng.uniform(0.20, 0.80)) * horizon
        faults.append(Fault(time=t, kind="container_kill", node_id=node_id))
    # -- network faults: every draw below is new; keep them after all
    # legacy draws so legacy-knob plans replay bit-identically.
    for _ in range(link_degraded):
        node_id = int(healthy[int(rng.integers(len(healthy)))])
        t = float(rng.uniform(0.10, 0.50)) * horizon
        faults.append(
            Fault(
                time=t,
                kind="link_degrade",
                node_id=node_id,
                net_factor=float(rng.uniform(0.20, 0.60)),
                recover_time=float(rng.uniform(0.20, 0.50)) * horizon,
            )
        )
    for _ in range(link_flaky):
        node_id = int(healthy[int(rng.integers(len(healthy)))])
        t = float(rng.uniform(0.10, 0.60)) * horizon
        faults.append(
            Fault(
                time=t,
                kind="link_flaky",
                node_id=node_id,
                fail_prob=float(rng.uniform(0.30, 0.80)),
                duration=float(rng.uniform(0.20, 0.50)) * horizon,
            )
        )
    for _ in range(rack_partitions):
        node_id = int(healthy[int(rng.integers(len(healthy)))])
        t = float(rng.uniform(0.15, 0.60)) * horizon
        faults.append(
            Fault(
                time=t,
                kind="rack_partition",
                node_id=node_id,
                duration=float(rng.uniform(0.10, 0.30)) * horizon,
            )
        )
    # -- elastic churn: drawn after all legacy and network draws for the
    # same replay-stability reason.  Drain/preemption targets are
    # sampled without replacement so one node is never both gracefully
    # drained and spot-reclaimed in a single scenario.
    if decommissions + spot_preempts > 0:
        leaving = rng.choice(len(healthy), size=decommissions + spot_preempts, replace=False)
        drain_nodes = sorted(int(healthy[i]) for i in leaving[:decommissions])
        preempt_nodes = sorted(int(healthy[i]) for i in leaving[decommissions:])
        for node_id in drain_nodes:
            t = float(rng.uniform(0.15, 0.55)) * horizon
            faults.append(Fault(time=t, kind="node_decommission", node_id=node_id))
        for node_id in preempt_nodes:
            t = float(rng.uniform(0.20, 0.60)) * horizon
            faults.append(
                Fault(
                    time=t,
                    kind="spot_preempt",
                    node_id=node_id,
                    duration=float(rng.uniform(0.08, 0.18)) * horizon,
                )
            )
    for _ in range(joins):
        anchor = int(rng.integers(num_nodes))
        t = float(rng.uniform(0.10, 0.50)) * horizon
        faults.append(Fault(time=t, kind="node_join", node_id=anchor))
    # -- control-plane faults: the newest family, drawn after every
    # legacy, network, and elastic draw so all older-knob plans replay
    # bit-identically from the same stream.  Crash/outage windows land
    # mid-run (late enough that a search is underway, early enough that
    # recovery happens within the horizon).  The tuner and the central
    # monitor are not node-resident; node 0 is an anchor convention.
    for _ in range(tuner_crashes):
        t = float(rng.uniform(0.15, 0.55)) * horizon
        faults.append(
            Fault(
                time=t,
                kind="tuner_crash",
                node_id=0,
                duration=float(rng.uniform(0.15, 0.35)) * horizon,
            )
        )
    for _ in range(monitor_outages):
        t = float(rng.uniform(0.15, 0.55)) * horizon
        faults.append(
            Fault(
                time=t,
                kind="monitor_outage",
                node_id=0,
                duration=float(rng.uniform(0.10, 0.30)) * horizon,
            )
        )
    for _ in range(stats_gaps):
        node_id = int(healthy[int(rng.integers(len(healthy)))])
        t = float(rng.uniform(0.10, 0.60)) * horizon
        faults.append(
            Fault(
                time=t,
                kind="stats_gap",
                node_id=node_id,
                duration=float(rng.uniform(0.10, 0.25)) * horizon,
            )
        )
    return FaultPlan(tuple(faults))


__all__ = [
    "CONTROL_FAULT_KINDS",
    "ELASTIC_FAULT_KINDS",
    "FAULT_KINDS",
    "NETWORK_FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "generate_fault_plan",
    "plan_from_json",
    "plan_to_json",
]
