"""Shared retry-backoff schedules.

Two callers grew ad-hoc copies of the same loop -- the shuffle
fetch-recovery path (`repro.mapreduce.reduce_task`) and the local
backend's worker-retry path -- so the schedule lives here once.

Both generators are deterministic: :meth:`BackoffPolicy.delays` is a
pure function of the policy, and :func:`decorrelated_jitter_delays` is
a pure function of the policy plus the caller-supplied RNG stream.
Nothing here sleeps; callers own the clock (simulated timeouts or
``time.sleep``), which is what keeps digest-pinned simulations and
wall-clock retries on one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class BackoffPolicy:
    """An exponential backoff schedule: ``base, base*factor, ...`` capped.

    The growth step is computed iteratively as ``min(cap, prev * factor)``
    -- bit-identical to the historical inline loops, which pinned digests
    depend on (``base * factor**n`` rounds differently in floating point).
    """

    base: float
    cap: float
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError("backoff base must be positive")
        if self.cap < self.base:
            raise ValueError("backoff cap must be >= base")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")

    def delays(self) -> Iterator[float]:
        """Infinite deterministic delay sequence for one retry episode."""
        delay = self.base
        while True:
            yield delay
            delay = min(self.cap, delay * self.factor)


def decorrelated_jitter_delays(policy: BackoffPolicy, rng) -> Iterator[float]:
    """AWS-style decorrelated jitter: ``min(cap, uniform(base, prev*3))``.

    Spreads concurrent retriers apart (the exponential schedule
    synchronizes them), yet stays deterministic given *rng* -- pass a
    dedicated seeded stream so replays draw the same sleeps.
    """
    delay = policy.base
    while True:
        yield delay
        delay = min(policy.cap, float(rng.uniform(policy.base, delay * 3.0)))
