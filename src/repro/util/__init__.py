"""Small shared utilities with no repro-internal dependencies."""

from repro.util.backoff import BackoffPolicy, decorrelated_jitter_delays

__all__ = ["BackoffPolicy", "decorrelated_jitter_delays"]
