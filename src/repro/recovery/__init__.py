"""Crash recovery: the service's write-ahead journal.

The control plane of a long-running tuning service must survive its own
process dying.  This package provides the compact journal the service
appends to as jobs complete -- every record fsynced before its effects
are observable anywhere else -- and the reader that folds a journal
(possibly ending in a torn line from the crash) back into the state a
resumed run needs: completed jobs in stable (tenant, arrival-index)
identity, finished tuning sessions with their optimizer checkpoints,
per-tenant knowledge-base snapshots, and preemption decisions.

Resume semantics differ by backend, deliberately:

* the **simulator** re-runs the whole trace deterministically and
  cross-validates every replayed completion against the journaled
  prefix (:class:`JournalDivergence` on any mismatch), so a killed and
  recovered run reproduces the uninterrupted
  :class:`~repro.service.report.ServiceReport` digest byte-for-byte;
* the **local backend** genuinely skips journaled jobs (wall-clock work
  is not replayable) and restores the knowledge bases so later warm
  starts still see the pre-crash sessions.

See ``docs/recovery.md`` for the record schema and the crash model.
"""

from repro.recovery.journal import (
    JOURNAL_VERSION,
    JournalDivergence,
    JournalError,
    JournalState,
    ServiceJournal,
    ServiceKilled,
    read_journal,
)

__all__ = [
    "JOURNAL_VERSION",
    "JournalDivergence",
    "JournalError",
    "JournalState",
    "ServiceJournal",
    "ServiceKilled",
    "read_journal",
]
