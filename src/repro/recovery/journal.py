"""The service write-ahead journal: append, fsync, recover.

Layout is JSON Lines, one self-describing record per line, ``kind``
first:

``header``
    Version plus a fingerprint of the :class:`ServiceConfig` identity
    (everything except the journal/kill knobs, which legitimately
    differ between the killed run and its resume).  A journal only ever
    resumes the exact run that wrote it.
``job``
    One completed job -- the fields of
    :class:`~repro.service.report.CompletedJob`, keyed by the stable
    (tenant, arrival-index) identity, never process-global job ids.
``tuning``
    The finished tuning session's summary
    (:class:`~repro.service.tuner_service.JobTuningRecord` fields).
``tuner``
    The session's per-task-type optimizer checkpoints: incumbent point
    and cost, rule-tightened bounds, infeasible regions, and the
    wave-of-best counters (see ``WaveOptimizer.checkpoint``).
``kb``
    The tenant's knowledge base after the session; the latest snapshot
    per tenant wins on replay.
``preemption``
    One scheduler-level preemption decision (time, beneficiary,
    victim tenant).

Every append is flushed and fsynced before the service proceeds --
write-ahead in the only sense that matters here: a record is durable
before its effects show up in the report.  Recovery reads the file
through :func:`repro.telemetry.replay_records`, which tolerates a torn
*final* line (the crash artifact) but treats interior corruption as an
error; :meth:`ServiceJournal.open` then rewrites the surviving prefix
atomically so the repaired file is clean before any new append lands.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, TextIO, Tuple

from repro.service.report import CompletedJob
from repro.service.tuner_service import JobTuningRecord
from repro.telemetry.export import replay_records

JOURNAL_VERSION = 1


class JournalError(RuntimeError):
    """The journal cannot be read, written, or matched to this run."""


class JournalDivergence(JournalError):
    """A resumed run produced different results than the journal.

    The simulator resume path re-executes the trace and checks every
    replayed completion against the journaled prefix; any mismatch
    means the journal belongs to a different computation (config drift,
    code drift, or a corrupted record) and silently continuing would
    fabricate a report no single uninterrupted run could produce.
    """


class ServiceKilled(RuntimeError):
    """A simulated hard crash: the service stopped mid-stream on purpose.

    Raised by the service loop when ``ServiceConfig.kill_after_jobs``
    newly journaled completions have landed.  Everything those jobs
    contributed is already fsynced, so a rerun against the same journal
    resumes exactly where this exception cut the run short.
    """

    def __init__(self, jobs_completed: int) -> None:
        super().__init__(
            f"service killed after {jobs_completed} completed job(s); "
            "rerun with the same journal to resume"
        )
        self.jobs_completed = jobs_completed


@dataclass
class JournalState:
    """A journal folded back into resumable state."""

    fingerprint: str
    #: Every intact record, header included (the repair rewrite source).
    records: List[Dict[str, Any]] = field(default_factory=list)
    jobs: List[CompletedJob] = field(default_factory=list)
    tuning: List[JobTuningRecord] = field(default_factory=list)
    #: (tenant, profile, index) -> per-task-type optimizer checkpoints.
    checkpoints: Dict[Tuple[str, str, int], Dict[str, Any]] = field(
        default_factory=dict
    )
    #: tenant -> knowledge-base entries (latest snapshot wins).
    knowledge: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    preemptions: List[Dict[str, Any]] = field(default_factory=list)

    def completed_keys(self) -> set:
        """The (tenant, arrival-index) pairs already on disk."""
        return {(job.tenant, job.index) for job in self.jobs}

    def next_arrival_index(self, tenant: str) -> int:
        """First arrival index of *tenant* with no journaled completion.

        Jobs complete out of arrival order under fair-share dispatch,
        so this is a lower bound on outstanding work, not a cursor.
        """
        indices = sorted(j.index for j in self.jobs if j.tenant == tenant)
        nxt = 0
        for index in indices:
            if index != nxt:
                break
            nxt += 1
        return nxt


def read_journal(path: str) -> JournalState:
    """Parse *path* into a :class:`JournalState` (torn tail tolerated)."""
    records = replay_records(path)
    if not records or records[0].get("kind") != "header":
        raise JournalError(f"{path} is not a service journal (missing header)")
    header = records[0]
    if header.get("version") != JOURNAL_VERSION:
        raise JournalError(
            f"{path} has unsupported journal version {header.get('version')!r}"
        )
    state = JournalState(fingerprint=str(header["fingerprint"]), records=records)
    for record in records[1:]:
        kind = record.get("kind")
        body = {k: v for k, v in record.items() if k != "kind"}
        if kind == "job":
            state.jobs.append(CompletedJob(**body))
        elif kind == "tuning":
            state.tuning.append(JobTuningRecord(**body))
        elif kind == "tuner":
            key = (record["tenant"], record["profile"], int(record["index"]))
            state.checkpoints[key] = record["searches"]
        elif kind == "kb":
            state.knowledge[record["tenant"]] = record["entries"]
        elif kind == "preemption":
            state.preemptions.append(body)
        else:
            raise JournalError(f"{path}: unknown record kind {kind!r}")
    return state


class ServiceJournal:
    """Append-only writer (and opener/repairer) of one service journal."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: Optional[TextIO] = None
        #: Records appended by *this* process (excludes the recovered
        #: prefix) -- what ``kill_after_jobs`` counts against.
        self.appended = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(self, fingerprint: str) -> JournalState:
        """Open for append; return the recovered prefix (empty when new).

        An existing journal must carry the same config *fingerprint* --
        resuming someone else's run would splice two different traces
        into one file.  A torn final line is repaired by atomically
        rewriting the intact prefix before the append handle opens, so
        a partial record can never sit in the middle of the file.
        """
        if self._fh is not None:
            raise JournalError("journal is already open")
        if os.path.exists(self.path):
            state = read_journal(self.path)
            if state.fingerprint != fingerprint:
                raise JournalError(
                    f"journal {self.path} was written by a different service "
                    f"config (fingerprint {state.fingerprint[:12]}... != "
                    f"{fingerprint[:12]}...)"
                )
            tmp = self.path + ".tmp"
            try:
                with open(tmp, "w") as fh:
                    for record in state.records:
                        fh.write(json.dumps(record, separators=(",", ":")) + "\n")
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
            self._fh = open(self.path, "a")
            return state
        self._fh = open(self.path, "w")
        self._append(
            {"kind": "header", "version": JOURNAL_VERSION, "fingerprint": fingerprint}
        )
        return JournalState(fingerprint=fingerprint)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ServiceJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Appends (each one durable before return)
    # ------------------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            raise JournalError("journal is not open")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.appended += 1

    def record_job(self, job: CompletedJob) -> None:
        self._append({"kind": "job", **asdict(job)})

    def record_tuning(self, record: JobTuningRecord) -> None:
        self._append({"kind": "tuning", **asdict(record)})

    def record_checkpoint(
        self, tenant: str, profile: str, index: int, searches: Dict[str, Any]
    ) -> None:
        self._append(
            {
                "kind": "tuner",
                "tenant": tenant,
                "profile": profile,
                "index": index,
                "searches": searches,
            }
        )

    def record_knowledge(self, tenant: str, knowledge_base) -> None:
        """Snapshot *tenant*'s knowledge base (any object with to_json)."""
        self._append(
            {
                "kind": "kb",
                "tenant": tenant,
                "entries": json.loads(knowledge_base.to_json()),
            }
        )

    def record_preemption(
        self, time: float, tenant: str, victim_tenant: str
    ) -> None:
        self._append(
            {
                "kind": "preemption",
                "time": time,
                "tenant": tenant,
                "victim_tenant": victim_tenant,
            }
        )
