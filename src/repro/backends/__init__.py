"""Execution backends: interchangeable runtimes behind one protocol.

See :mod:`repro.backends.base` for the protocol,
:mod:`repro.backends.sim` for the simulator adapter, and
:mod:`repro.backends.local` for the real local-process runtime.
"""

from repro.backends.base import BACKEND_NAMES, Backend, JobHandle, make_backend

__all__ = ["BACKEND_NAMES", "Backend", "JobHandle", "make_backend"]
