"""The simulator behind the :class:`~repro.backends.base.Backend` protocol.

:class:`SimBackend` is a *thin* adapter over
:class:`~repro.experiments.harness.SimCluster`: construction forwards
the exact constructor arguments in the exact order, submission routes
through ``SimCluster.submit``, and the tuner attachment delegates to
:meth:`OnlineTuner.submit` verbatim.  Nothing here consumes an extra
random draw or schedules an extra event, so every pinned run digest
(fault-free, network-fault, elastic) is byte-identical to the
pre-protocol wiring -- the CI determinism gates prove it on every push.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.experiments.harness import SimCluster
from repro.mapreduce.jobspec import JobSpec
from repro.yarn.app_master import ConfigProvider, JobResult, LaunchGate, MRAppMaster

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import ClusterSpec
    from repro.monitor.central_monitor import CentralMonitor
    from repro.monitor.statistics import TaskStats
    from repro.telemetry.bus import TelemetryBus
    from repro.yarn.app_master import FaultToleranceSettings


class SimJobHandle:
    """A submitted simulated job: wraps its app master."""

    def __init__(self, am: MRAppMaster) -> None:
        self.am = am
        self.spec: JobSpec = am.spec

    @property
    def stats_listeners(self) -> List[Callable[["TaskStats"], None]]:
        return self.am.stats_listeners

    def add_completion_callback(
        self, callback: Callable[[JobResult], None]
    ) -> None:
        self.am.completion.add_callback(lambda ev: callback(ev.value))


class SimBackend:
    """Execute jobs on the deterministic discrete-event simulator.

    Accepts either a pre-built :class:`SimCluster` (``cluster=``) or the
    ``SimCluster`` constructor keywords.  All cluster surface --
    ``hdfs``, ``rm``, ``inject_faults`` -- stays reachable through
    :attr:`cluster` for protocols that need simulator specifics.
    """

    name = "sim"

    def __init__(
        self,
        seed: int = 0,
        cluster_spec: Optional["ClusterSpec"] = None,
        scheduler: str = "fifo",
        monitor_interval: float = 5.0,
        start_monitors: bool = True,
        fault_tolerance: Optional["FaultToleranceSettings"] = None,
        cluster: Optional[SimCluster] = None,
    ) -> None:
        self.seed = seed
        if cluster is not None:
            self.cluster = cluster
        else:
            self.cluster = SimCluster(
                seed=seed,
                cluster_spec=cluster_spec,
                scheduler=scheduler,
                monitor_interval=monitor_interval,
                start_monitors=start_monitors,
                fault_tolerance=fault_tolerance,
            )

    # -- convenience passthroughs ---------------------------------------
    @property
    def sim(self):
        return self.cluster.sim

    @property
    def hdfs(self):
        return self.cluster.hdfs

    @property
    def monitor(self) -> "CentralMonitor":
        return self.cluster.monitor

    @property
    def telemetry(self) -> "TelemetryBus":
        return self.cluster.telemetry

    def inject_faults(self, *args, **kwargs):
        """Arm fault injection on the underlying cluster."""
        return self.cluster.inject_faults(*args, **kwargs)

    # -- Backend protocol -----------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        config_provider: Optional[ConfigProvider] = None,
        gate: Optional[LaunchGate] = None,
    ) -> SimJobHandle:
        am = self.cluster.submit(spec, config_provider=config_provider, gate=gate)
        return SimJobHandle(am)

    def wait(self, handle: SimJobHandle) -> JobResult:
        return self.cluster.sim.run_until_complete(handle.am.completion)

    def run_job(
        self,
        spec: JobSpec,
        config_provider: Optional[ConfigProvider] = None,
        gate: Optional[LaunchGate] = None,
    ) -> JobResult:
        return self.wait(self.submit(spec, config_provider=config_provider, gate=gate))

    def attach_tuner(self, tuner, spec: JobSpec) -> SimJobHandle:
        # Delegate to the tuner's SimCluster-native wiring: it reads the
        # input size off HDFS, registers stats/completion listeners, and
        # hooks elastic capacity changes -- all in the historical order,
        # which the pinned tuned-run digests depend on.
        return SimJobHandle(tuner.submit(self.cluster, spec))

    def close(self) -> None:
        """Nothing to release: the simulator has no external resources."""
