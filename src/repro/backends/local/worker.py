"""Real mapper/reducer task bodies for the local-process backend.

Everything here is a top-level, picklable function or frozen dataclass:
:func:`run_map_task` and :func:`run_reduce_task` execute inside
``ProcessPoolExecutor`` workers, so they receive declarative specs and
return slim reports -- no live backend state crosses the process
boundary.

The task bodies are a faithful miniature of Hadoop's task runtime:

* **Map**: stream the split, collect ``(key, value)`` records into a
  sort buffer; when the buffer passes ``sort_buffer_bytes x
  spill_threshold`` (Table 2: ``io.sort.mb`` x ``sort.spill.percent``),
  sort, run the combiner, and spill a partitioned run to disk.  Spill
  runs merge in passes of at most ``merge_factor`` (``io.sort.factor``)
  into one sorted segment per reducer partition.
* **Reduce**: fetch one segment per map with ``fetch_parallelism``
  concurrent copiers (``shuffle.parallelcopies``); segments accumulate
  in memory until ``inmem_merge_records`` (``merge.inmem.threshold``)
  forces a sorted on-disk run; a final ``heapq.merge`` feeds the reduce
  function key group by key group.

Partitioning uses ``zlib.crc32`` -- the builtin ``hash`` is randomized
per process and would scatter keys differently in every worker.

Attempt isolation mirrors the HDFS commit protocol: every attempt
writes under ``<job dir>/_temporary/<attempt>/`` and commits via atomic
``os.replace`` into its final location, so a killed attempt can never
leave a partial file where committed output lives.
"""

from __future__ import annotations

import heapq
import os
import re
import shutil
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

#: Bytes-per-record bookkeeping overhead in the sort buffer (Hadoop's
#: kvmeta accounting entry is 16 bytes per record).
RECORD_OVERHEAD = 16

#: Resident footprint of the task runtime itself, before any buffer --
#: the KB-scaled stand-in for the JVM + user-code fixed working set.
FIXED_TASK_FOOTPRINT = 64 * 1024

#: Fraction of the container grant usable as heap (mirrors
#: :data:`repro.core.configuration.HEAP_FRACTION`).
HEAP_FRACTION = 0.8

_WORD_RE = re.compile(r"[a-z']+")

#: The text-search (grep) workload's fixed needle, in the spirit of the
#: paper's "text search" benchmark: count matching words.
GREP_NEEDLE = "ing"


# ----------------------------------------------------------------------
# Workload functions (resolved by name inside the worker process)
# ----------------------------------------------------------------------
def _wordcount_map(doc_id: str, text: str) -> Iterator[Tuple[str, str]]:
    for word in _WORD_RE.findall(text.lower()):
        yield word, "1"


def _grep_map(doc_id: str, text: str) -> Iterator[Tuple[str, str]]:
    for word in _WORD_RE.findall(text.lower()):
        if GREP_NEEDLE in word:
            yield word, "1"


def _inverted_index_map(doc_id: str, text: str) -> Iterator[Tuple[str, str]]:
    for word in set(_WORD_RE.findall(text.lower())):
        yield word, doc_id


def _sum_reduce(key: str, values: Iterable[str]) -> Iterator[Tuple[str, str]]:
    yield key, str(sum(int(v) for v in values))


def _postings_reduce(key: str, values: Iterable[str]) -> Iterator[Tuple[str, str]]:
    yield key, ",".join(sorted(set(values)))


def _sum_combine(key: str, values: List[str]) -> List[str]:
    return [str(sum(int(v) for v in values))]


_MAP_FNS: Dict[str, Callable[[str, str], Iterator[Tuple[str, str]]]] = {
    "wordcount": _wordcount_map,
    "grep": _grep_map,
    "inverted-index": _inverted_index_map,
}

_REDUCE_FNS: Dict[str, Callable[[str, Iterable[str]], Iterator[Tuple[str, str]]]] = {
    "sum": _sum_reduce,
    "postings": _postings_reduce,
}

_COMBINE_FNS: Dict[str, Callable[[str, List[str]], List[str]]] = {
    "sum": _sum_combine,
}


@dataclass(frozen=True)
class LocalWorkload:
    """One runnable workload: map/reduce/combine function names."""

    name: str
    map_fn: str
    reduce_fn: str
    combine_fn: Optional[str] = None


#: The three real workloads the local backend executes.
LOCAL_WORKLOADS: Dict[str, LocalWorkload] = {
    "wordcount": LocalWorkload("wordcount", "wordcount", "sum", "sum"),
    "grep": LocalWorkload("grep", "grep", "sum", "sum"),
    "inverted-index": LocalWorkload("inverted-index", "inverted-index", "postings"),
}


# ----------------------------------------------------------------------
# Knobs: Python-level stand-ins for the Table-2 parameters
# ----------------------------------------------------------------------
#: Table-2 "MB" quantities scale to KB here: a toy corpus of tens of
#: kilobytes per split exercises the same spill/merge/OOM mechanics a
#: 128-MB split does on a real cluster, at test-suite speed.
KB_SCALE = 1024


@dataclass(frozen=True)
class TaskKnobs:
    """The per-task execution knobs (decoded from a Configuration)."""

    #: ``io.sort.mb`` x :data:`KB_SCALE`: map sort-buffer capacity.
    sort_buffer_bytes: int
    #: ``map.sort.spill.percent``: buffer fill fraction that spills.
    spill_threshold: float
    #: ``io.sort.factor``: max runs merged per pass.
    merge_factor: int
    #: ``reduce.shuffle.parallelcopies``: concurrent segment fetchers.
    fetch_parallelism: int
    #: ``reduce.merge.inmem.threshold``: in-memory records before an
    #: on-disk run is forced (0 = everything goes to disk).
    inmem_merge_records: int
    #: ``{map,reduce}.memory.mb`` x :data:`KB_SCALE`: container grant.
    container_memory_bytes: int
    #: ``{map,reduce}.cpu.vcores``.
    allocated_cores: float

    @property
    def heap_bytes(self) -> int:
        return int(self.container_memory_bytes * HEAP_FRACTION)


@dataclass(frozen=True)
class MapTaskSpec:
    """Declarative input to :func:`run_map_task`."""

    job_id: str
    index: int
    attempt: int
    input_path: str
    workload: str
    num_partitions: int
    job_dir: str
    knobs: TaskKnobs
    #: The backend's ``time.monotonic()`` epoch; start/end times are
    #: reported relative to it (CLOCK_MONOTONIC is system-wide).
    epoch: float


@dataclass(frozen=True)
class ReduceTaskSpec:
    """Declarative input to :func:`run_reduce_task`."""

    job_id: str
    partition: int
    attempt: int
    num_maps: int
    workload: str
    job_dir: str
    knobs: TaskKnobs
    epoch: float


@dataclass(frozen=True)
class TaskReport:
    """What one attempt reports back across the process boundary."""

    index: int
    attempt: int
    start_time: float
    end_time: float
    cpu_seconds: float
    working_set_bytes: int
    output_records: int = 0
    output_bytes: int = 0
    combine_output_records: int = 0
    spilled_records: int = 0
    merge_passes: int = 0
    shuffled_bytes: int = 0
    reduce_input_records: int = 0
    failed: bool = False
    failure_kind: str = ""
    failure_reason: str = ""


def partition_of(key: str, num_partitions: int) -> int:
    """Deterministic hash partitioner (stable across processes)."""
    return zlib.crc32(key.encode("utf-8")) % num_partitions


def _attempt_dir(job_dir: str, kind: str, index: int, attempt: int) -> str:
    return os.path.join(
        job_dir, "_temporary", f"{kind}_{index:05d}_att{attempt}"
    )


def map_output_path(job_dir: str, map_index: int, partition: int) -> str:
    return os.path.join(
        job_dir, "map", f"m_{map_index:05d}", f"part-{partition:05d}"
    )


def reduce_output_path(job_dir: str, partition: int) -> str:
    return os.path.join(job_dir, "out", f"part-r-{partition:05d}")


def _write_run(path: str, records: List[Tuple[str, str]]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        for key, value in records:
            fh.write(f"{key}\t{value}\n")


def _read_run(path: str) -> Iterator[Tuple[str, str]]:
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            key, _sep, value = line.rstrip("\n").partition("\t")
            yield key, value


def _combine(
    records: List[Tuple[str, str]], combine_fn_name: Optional[str]
) -> Tuple[List[Tuple[str, str]], int]:
    """Run the combiner over a *sorted* record run; returns (run, emitted)."""
    if combine_fn_name is None:
        return records, 0
    combine = _COMBINE_FNS[combine_fn_name]
    out: List[Tuple[str, str]] = []
    i = 0
    while i < len(records):
        j = i
        key = records[i][0]
        while j < len(records) and records[j][0] == key:
            j += 1
        for value in combine(key, [v for _k, v in records[i:j]]):
            out.append((key, value))
        i = j
    return out, len(out)


def _merge_runs(
    run_paths: List[str], scratch_dir: str, merge_factor: int
) -> Tuple[List[str], int, int]:
    """Reduce *run_paths* to at most ``merge_factor`` runs.

    Returns ``(paths, merge_passes, re_spilled_records)`` -- Hadoop
    counts records rewritten by intermediate merge passes as spills.
    """
    passes = 0
    respilled = 0
    merged_seq = 0
    paths = list(run_paths)
    while len(paths) > merge_factor:
        batch, paths = paths[:merge_factor], paths[merge_factor:]
        merged = list(heapq.merge(*(list(_read_run(p)) for p in batch)))
        out = os.path.join(scratch_dir, f"merge_{merged_seq:05d}")
        merged_seq += 1
        _write_run(out, merged)
        for p in batch:
            os.remove(p)
        paths.append(out)
        passes += 1
        respilled += len(merged)
    return paths, passes, respilled


def _commit(src: str, dest: str) -> None:
    """Atomically promote an attempt file to its final location."""
    os.makedirs(os.path.dirname(dest), exist_ok=True)
    os.replace(src, dest)


# ----------------------------------------------------------------------
# Map task
# ----------------------------------------------------------------------
def run_map_task(spec: MapTaskSpec) -> TaskReport:
    start = time.monotonic() - spec.epoch
    cpu0 = time.process_time()
    knobs = spec.knobs
    attempt_dir = _attempt_dir(spec.job_dir, "m", spec.index, spec.attempt)
    os.makedirs(attempt_dir, exist_ok=True)

    def report(**kw) -> TaskReport:
        return TaskReport(
            index=spec.index,
            attempt=spec.attempt,
            start_time=start,
            end_time=time.monotonic() - spec.epoch,
            cpu_seconds=time.process_time() - cpu0,
            **kw,
        )

    # Feasibility boundary: the sort buffer must fit inside the heap
    # with room for the task runtime itself -- the real-execution twin
    # of the simulator's OOM model.  An infeasible sampled config fails
    # here *before* doing work, exactly like a container OOM kill.
    if knobs.sort_buffer_bytes + FIXED_TASK_FOOTPRINT > knobs.heap_bytes:
        return report(
            working_set_bytes=knobs.sort_buffer_bytes + FIXED_TASK_FOOTPRINT,
            failed=True,
            failure_kind="oom",
            failure_reason=(
                f"sort buffer {knobs.sort_buffer_bytes}B exceeds heap "
                f"{knobs.heap_bytes}B"
            ),
        )

    workload = LOCAL_WORKLOADS[spec.workload]
    map_fn = _MAP_FNS[workload.map_fn]
    spill_trigger = max(
        RECORD_OVERHEAD + 1, int(knobs.sort_buffer_bytes * knobs.spill_threshold)
    )
    with open(spec.input_path, encoding="utf-8") as fh:
        text = fh.read()
    doc_id = os.path.splitext(os.path.basename(spec.input_path))[0]

    buffer: List[Tuple[str, str]] = []
    buffer_bytes = 0
    peak_bytes = FIXED_TASK_FOOTPRINT
    output_records = 0
    output_bytes = 0
    combine_records = 0
    spilled = 0
    spill_seq = 0
    #: Per-partition sorted run files produced by spills.
    partition_runs: List[List[str]] = [[] for _ in range(spec.num_partitions)]

    def spill() -> None:
        nonlocal buffer, buffer_bytes, spilled, spill_seq, combine_records
        if not buffer:
            return
        buffer.sort()
        run, emitted = _combine(buffer, workload.combine_fn)
        combine_records += emitted
        by_partition: List[List[Tuple[str, str]]] = [
            [] for _ in range(spec.num_partitions)
        ]
        for key, value in run:
            by_partition[partition_of(key, spec.num_partitions)].append((key, value))
        for p, records in enumerate(by_partition):
            if not records:
                continue
            path = os.path.join(attempt_dir, f"spill_{spill_seq:05d}_p{p:05d}")
            _write_run(path, records)
            partition_runs[p].append(path)
            spilled += len(records)
        spill_seq += 1
        buffer = []
        buffer_bytes = 0

    try:
        for key, value in map_fn(doc_id, text):
            buffer.append((key, value))
            buffer_bytes += len(key) + len(value) + RECORD_OVERHEAD
            output_records += 1
            output_bytes += len(key) + len(value) + 2
            if buffer_bytes >= spill_trigger:
                peak_bytes = max(peak_bytes, FIXED_TASK_FOOTPRINT + buffer_bytes)
                spill()
        peak_bytes = max(peak_bytes, FIXED_TASK_FOOTPRINT + buffer_bytes)
        spill()

        # Merge the spill runs into one sorted segment per partition.
        merge_passes = 0
        for p in range(spec.num_partitions):
            runs = partition_runs[p]
            final = os.path.join(attempt_dir, f"part-{p:05d}")
            if not runs:
                _write_run(final, [])
            elif len(runs) == 1:
                os.replace(runs[0], final)
            else:
                runs, passes, respilled = _merge_runs(
                    runs, attempt_dir, knobs.merge_factor
                )
                merge_passes += passes
                spilled += respilled
                merged = list(heapq.merge(*(list(_read_run(r)) for r in runs)))
                merged, emitted = _combine(merged, workload.combine_fn)
                combine_records += emitted
                _write_run(final, merged)
                merge_passes += 1
                for r in runs:
                    os.remove(r)
            _commit(final, map_output_path(spec.job_dir, spec.index, p))
    except Exception as exc:  # pragma: no cover - defensive
        return report(
            working_set_bytes=peak_bytes,
            failed=True,
            failure_kind="env",
            failure_reason=f"{type(exc).__name__}: {exc}",
        )
    shutil.rmtree(attempt_dir, ignore_errors=True)
    return report(
        working_set_bytes=peak_bytes,
        output_records=output_records,
        output_bytes=output_bytes,
        combine_output_records=combine_records,
        spilled_records=spilled,
        merge_passes=merge_passes,
    )


# ----------------------------------------------------------------------
# Reduce task
# ----------------------------------------------------------------------
def run_reduce_task(spec: ReduceTaskSpec) -> TaskReport:
    start = time.monotonic() - spec.epoch
    cpu0 = time.process_time()
    knobs = spec.knobs
    attempt_dir = _attempt_dir(spec.job_dir, "r", spec.partition, spec.attempt)
    os.makedirs(attempt_dir, exist_ok=True)

    def report(**kw) -> TaskReport:
        return TaskReport(
            index=spec.partition,
            attempt=spec.attempt,
            start_time=start,
            end_time=time.monotonic() - spec.epoch,
            cpu_seconds=time.process_time() - cpu0,
            **kw,
        )

    workload = LOCAL_WORKLOADS[spec.workload]
    reduce_fn = _REDUCE_FNS[workload.reduce_fn]
    segment_paths = [
        map_output_path(spec.job_dir, m, spec.partition)
        for m in range(spec.num_maps)
    ]

    def fetch(path: str) -> bytes:
        if not os.path.exists(path):
            return b""
        with open(path, "rb") as fh:
            return fh.read()

    peak_bytes = FIXED_TASK_FOOTPRINT
    try:
        # The copy phase: parallelcopies concurrent fetchers, results
        # consumed in map order so the merge is deterministic.
        with ThreadPoolExecutor(max_workers=knobs.fetch_parallelism) as pool:
            segments = list(pool.map(fetch, segment_paths))
        shuffled_bytes = sum(len(seg) for seg in segments)

        # In-memory accumulation with threshold-forced disk runs.
        mem_records: List[Tuple[str, str]] = []
        mem_bytes = 0
        disk_runs: List[str] = []
        run_seq = 0
        spilled = 0
        inmem_limit = max(0, knobs.inmem_merge_records)

        def flush_to_disk() -> None:
            nonlocal mem_records, mem_bytes, run_seq, spilled
            if not mem_records:
                return
            mem_records.sort()
            path = os.path.join(attempt_dir, f"run_{run_seq:05d}")
            run_seq += 1
            _write_run(path, mem_records)
            disk_runs.append(path)
            spilled += len(mem_records)
            mem_records = []
            mem_bytes = 0

        reduce_input = 0
        for seg in segments:
            for line in seg.decode("utf-8").splitlines():
                key, _sep, value = line.partition("\t")
                mem_records.append((key, value))
                mem_bytes += len(key) + len(value) + RECORD_OVERHEAD
                reduce_input += 1
            peak_bytes = max(peak_bytes, FIXED_TASK_FOOTPRINT + mem_bytes)
            if inmem_limit and len(mem_records) > inmem_limit:
                flush_to_disk()
            elif not inmem_limit and mem_records:
                flush_to_disk()

        merge_passes = 0
        if disk_runs:
            disk_runs, passes, respilled = _merge_runs(
                disk_runs, attempt_dir, knobs.merge_factor
            )
            merge_passes += passes
            spilled += respilled
        mem_records.sort()
        streams = [iter(mem_records)] + [_read_run(p) for p in disk_runs]
        merged = heapq.merge(*streams)

        # Group by key and reduce.
        out_path = os.path.join(attempt_dir, f"part-r-{spec.partition:05d}")
        output_records = 0
        output_bytes = 0
        with open(out_path, "w", encoding="utf-8") as out:
            current: Optional[str] = None
            values: List[str] = []

            def emit_group() -> None:
                nonlocal output_records, output_bytes
                if current is None:
                    return
                for k, v in reduce_fn(current, values):
                    out.write(f"{k}\t{v}\n")
                    output_records += 1
                    output_bytes += len(k) + len(v) + 2
            for key, value in merged:
                if key != current:
                    emit_group()
                    current = key
                    values = []
                values.append(value)
            emit_group()
        _commit(out_path, reduce_output_path(spec.job_dir, spec.partition))
    except Exception as exc:  # pragma: no cover - defensive
        return report(
            working_set_bytes=peak_bytes,
            failed=True,
            failure_kind="env",
            failure_reason=f"{type(exc).__name__}: {exc}",
        )
    shutil.rmtree(attempt_dir, ignore_errors=True)
    return report(
        working_set_bytes=peak_bytes,
        output_records=output_records,
        output_bytes=output_bytes,
        spilled_records=spilled,
        merge_passes=merge_passes,
        shuffled_bytes=shuffled_bytes,
        reduce_input_records=reduce_input,
    )
