"""A real local-process MapReduce runtime behind the Backend protocol.

:class:`LocalProcessBackend` executes mapper/reducer task bodies in a
``ProcessPoolExecutor`` over local files -- real sorting, real spills,
real merges, real shuffle reads -- and feeds real wall-clock
:class:`~repro.monitor.statistics.TaskStats` into the same
:class:`~repro.monitor.central_monitor.CentralMonitor` and
:class:`~repro.core.tuner.OnlineTuner` the simulator uses.  The paper's
loop closes here: the gray-box hill climber tunes waves of *actual*
task executions.

The tuner's :class:`~repro.yarn.app_master.LaunchGate` contract is
event-based (``admit`` returns a simulator :class:`Event` whose
``succeed`` *schedules* the firing), so the backend keeps a private
:class:`~repro.sim.engine.Simulator` purely as a deterministic callback
pump: after every gate interaction it drains the calendar
(``while sim.step(): ...``) so admissions granted by the tuner fire
before the next scheduling decision.

Determinism caveats (vs the simulator backend): task *outputs*,
counters, and spill counts are bit-deterministic for a fixed corpus and
configuration, but durations, CPU seconds, and therefore tuner *costs*
carry real wall-clock noise -- tests pin outputs exactly and bound
timing-derived quantities instead.  See ``docs/backends.md``.
"""

from __future__ import annotations

import os
import shutil
import signal
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.backends.local.corpus import corpus_splits
from repro.backends.local.worker import (
    KB_SCALE,
    LOCAL_WORKLOADS,
    MapTaskSpec,
    ReduceTaskSpec,
    TaskKnobs,
    TaskReport,
    run_map_task,
    run_reduce_task,
)
from repro.core import parameters as P
from repro.core.configuration import Configuration
from repro.mapreduce.counters import Counter, Counters
from repro.mapreduce.jobspec import JobSpec, TaskId, TaskType
from repro.monitor.central_monitor import CentralMonitor
from repro.monitor.statistics import NodeStats, TaskStats
from repro.sim.engine import Simulator
from repro.sim.rng import derive_seed
from repro.telemetry import TelemetryBus
from repro.telemetry.events import NodeSampled, TaskStatsRecorded, WorkerHang
from repro.util.backoff import BackoffPolicy, decorrelated_jitter_delays
from repro.yarn.app_master import ConfigProvider, JobResult, LaunchGate

#: One retry per task (the Hadoop default is 4; small local jobs need
#: just enough budget to recover an infeasible sampled config).
MAX_ATTEMPTS = 2


@dataclass(frozen=True)
class WatchdogSettings:
    """Wall-clock liveness policy for the hung-worker watchdog.

    A worker process that neither finishes nor dies -- stuck on a
    deadlocked pipe, a runaway loop, an NFS stall -- would otherwise
    wedge the whole phase: ``futures_wait`` has no deadline of its own.
    The watchdog polls the in-flight futures, and any attempt alive past
    its phase deadline is SIGKILLed (taking the shared pool's workers
    with it -- the same blast radius a node loss has in the simulator);
    the hung attempt retries as failure kind ``"hang"``, collateral
    attempts retry as ``"env"``, both within the normal
    :data:`MAX_ATTEMPTS` budget.  A decorrelated-jitter pause
    (:func:`repro.util.backoff.decorrelated_jitter_delays`) spaces out
    pool rebuilds when hangs repeat.
    """

    #: Wall-clock seconds one map attempt may run before it is hung.
    map_deadline: float = 120.0
    #: Reducers merge+fetch, so they get a longer leash.
    reduce_deadline: float = 180.0
    #: How often the watchdog wakes to check deadlines.
    poll_interval: float = 1.0
    #: Pool-rebuild pause schedule (decorrelated jitter over this).
    backoff: BackoffPolicy = BackoffPolicy(base=0.05, cap=0.5)

    def __post_init__(self) -> None:
        if self.map_deadline <= 0 or self.reduce_deadline <= 0:
            raise ValueError("watchdog deadlines must be positive")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")

    def deadline_for(self, task_type: TaskType) -> float:
        return (
            self.map_deadline
            if task_type is TaskType.MAP
            else self.reduce_deadline
        )


def knobs_from_config(config: Configuration, task_type: TaskType) -> TaskKnobs:
    """Decode a Table-2 :class:`Configuration` into local task knobs.

    The "MB" quantities scale to KB (:data:`KB_SCALE`) so toy corpora
    hit the same spill/merge/OOM boundaries real splits do; percents and
    counts map one to one.  See ``docs/backends.md`` for the full table.
    """
    if task_type is TaskType.MAP:
        memory_mb = config[P.MAP_MEMORY_MB]
        cores = config[P.MAP_CPU_VCORES]
    else:
        memory_mb = config[P.REDUCE_MEMORY_MB]
        cores = config[P.REDUCE_CPU_VCORES]
    return TaskKnobs(
        sort_buffer_bytes=int(config[P.IO_SORT_MB]) * KB_SCALE,
        spill_threshold=float(config[P.SORT_SPILL_PERCENT]),
        merge_factor=max(2, int(config[P.IO_SORT_FACTOR])),
        fetch_parallelism=max(1, int(config[P.SHUFFLE_PARALLELCOPIES])),
        inmem_merge_records=max(0, int(config[P.MERGE_INMEM_THRESHOLD])),
        container_memory_bytes=int(memory_mb) * KB_SCALE,
        allocated_cores=float(cores),
    )


class LocalJobHandle:
    """One job submitted to the local backend."""

    def __init__(
        self,
        spec: JobSpec,
        config_provider: Optional[ConfigProvider],
        gate: LaunchGate,
    ) -> None:
        self.spec = spec
        self.config_provider = config_provider
        self.gate = gate
        self.stats_listeners: List[Callable[[TaskStats], None]] = []
        self.result: Optional[JobResult] = None
        self._completion_callbacks: List[Callable[[JobResult], None]] = []

    def add_completion_callback(
        self, callback: Callable[[JobResult], None]
    ) -> None:
        if self.result is not None:
            callback(self.result)
        else:
            self._completion_callbacks.append(callback)

    def _complete(self, result: JobResult) -> None:
        self.result = result
        for callback in self._completion_callbacks:
            callback(result)
        self._completion_callbacks = []


class LocalProcessBackend:
    """Execute MapReduce jobs as real local worker processes.

    Parameters
    ----------
    workspace:
        Scratch directory for job state (map segments, reduce output,
        attempt temporaries).  ``None`` creates a private temp dir that
        :meth:`close` removes.
    slots:
        Concurrent worker processes ("containers").  Defaults to a
        small multiple of the CPU count, capped at 4 so test runs stay
        polite.
    seed:
        Recorded for provenance; the runtime itself draws no random
        numbers for task execution (outputs are corpus + config
        determined).  The watchdog's jittered pool-rebuild pauses draw
        from a stream derived from it.
    watchdog:
        Hung-worker liveness policy; ``None`` disables the watchdog and
        restores unbounded waits.  The defaults are far above any
        healthy task's runtime, so enabling it cannot perturb a
        well-behaved run.
    """

    name = "local"

    def __init__(
        self,
        workspace: Optional[str] = None,
        slots: Optional[int] = None,
        seed: int = 0,
        watchdog: Optional[WatchdogSettings] = WatchdogSettings(),
    ) -> None:
        self.seed = seed
        self.watchdog = watchdog
        self._hang_delays: Optional[Iterator[float]] = None
        if watchdog is not None:
            self._hang_delays = decorrelated_jitter_delays(
                watchdog.backoff,
                np.random.default_rng(derive_seed(seed, "watchdog", "backoff")),
            )
        if workspace is None:
            self.workspace = tempfile.mkdtemp(prefix="repro-local-")
            self._owns_workspace = True
        else:
            self.workspace = workspace
            os.makedirs(self.workspace, exist_ok=True)
            self._owns_workspace = False
        if slots is None:
            slots = max(2, min(4, os.cpu_count() or 2))
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.slots = slots
        #: Private event pump for gate admissions (see module docstring).
        self.sim = Simulator()
        self._epoch = time.monotonic()
        self.telemetry = TelemetryBus(clock=self._now)
        self.sim.attach_telemetry(self.telemetry)
        #: The same monitor class the simulator feeds, subscribed to the
        #: same ``stats``/``node`` bus categories.
        self.monitor = CentralMonitor(self.sim, bus=self.telemetry)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self._handles: List[LocalJobHandle] = []

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _now(self) -> float:
        """Wall-clock seconds since this backend was constructed."""
        return time.monotonic() - self._epoch

    def _pump(self) -> None:
        """Fire every pending gate/tuner callback on the event pump."""
        while self.sim.step():
            pass

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("backend is closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.slots)
        return self._pool

    def _kill_workers(self) -> None:
        """SIGKILL every live worker process of the current pool.

        This is the watchdog's hammer: a hung worker ignores polite
        shutdown by definition.  Killing the workers breaks the whole
        executor (every in-flight future resolves with
        ``BrokenProcessPool``); the caller rebuilds the pool lazily via
        :meth:`_ensure_pool`.
        """
        pool = self._pool
        if pool is None:
            return
        for pid in list(getattr(pool, "_processes", {}) or {}):
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):  # pragma: no cover
                pass

    def job_dir(self, spec: JobSpec) -> str:
        return os.path.join(self.workspace, "jobs", spec.job_id)

    def _sample_node(self, running: int, container_bytes: float) -> None:
        """Publish one host sample on the ``node`` category.

        The local host is node 0; utilization is slot occupancy, the
        honest signal this backend has without per-process sampling.
        """
        stats = NodeStats(
            node_id=0,
            time=self._now(),
            cpu_utilization=min(1.0, running / self.slots),
            memory_utilization=min(1.0, running / self.slots),
            running_containers=running,
        )
        if self.telemetry.wants("node"):
            self.telemetry.emit(NodeSampled(time=stats.time, stats=stats))

    # ------------------------------------------------------------------
    # Backend protocol
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        config_provider: Optional[ConfigProvider] = None,
        gate: Optional[LaunchGate] = None,
    ) -> LocalJobHandle:
        """Register one job; execution is driven by :meth:`wait`."""
        if spec.workload.name.removesuffix("-local") not in LOCAL_WORKLOADS:
            raise ValueError(
                f"workload {spec.workload.name!r} has no local implementation; "
                f"want one of {sorted(LOCAL_WORKLOADS)}"
            )
        handle = LocalJobHandle(spec, config_provider, gate or LaunchGate())
        self._handles.append(handle)
        return handle

    def run_job(
        self,
        spec: JobSpec,
        config_provider: Optional[ConfigProvider] = None,
        gate: Optional[LaunchGate] = None,
    ) -> JobResult:
        return self.wait(
            self.submit(spec, config_provider=config_provider, gate=gate)
        )

    def attach_tuner(self, tuner, spec: JobSpec) -> LocalJobHandle:
        """Wire an :class:`OnlineTuner` to a real job end to end."""
        if tuner.telemetry is None:
            tuner.telemetry = self.telemetry
        input_bytes = float(
            sum(os.path.getsize(p) for p in corpus_splits(spec.input_path))
        )
        provider, gate = tuner.attach_job(spec, input_bytes=input_bytes)
        handle = self.submit(spec, config_provider=provider, gate=gate)
        handle.stats_listeners.append(tuner.on_task_stats)
        handle.add_completion_callback(
            lambda result: tuner.finalize_job(spec.job_id, result)
        )
        return handle

    def wait(self, handle: LocalJobHandle) -> JobResult:
        if handle.result is not None:
            return handle.result
        job_dir = self.job_dir(handle.spec)
        try:
            result = self._execute(handle, job_dir)
        finally:
            # The commit sweep: successful attempts clean up after
            # themselves, but killed/OOM attempts leave temporaries --
            # exactly what the AM sweeps on HDFS.
            self._sweep_temporary(job_dir)
        handle._complete(result)
        return result

    def close(self) -> None:
        """Shut the worker pool down and remove owned scratch space."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        for handle in self._handles:
            self._sweep_temporary(self.job_dir(handle.spec))
        if self._owns_workspace:
            shutil.rmtree(self.workspace, ignore_errors=True)

    def __enter__(self) -> "LocalProcessBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Temp hygiene
    # ------------------------------------------------------------------
    def _sweep_temporary(self, job_dir: str) -> None:
        shutil.rmtree(os.path.join(job_dir, "_temporary"), ignore_errors=True)

    def leaked_temporaries(self) -> List[str]:
        """Paths still under any ``_temporary`` directory (should be [])."""
        leaks: List[str] = []
        for root, _dirs, files in os.walk(self.workspace):
            if "_temporary" in root.split(os.sep):
                leaks.extend(os.path.join(root, name) for name in files)
        return sorted(leaks)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(self, handle: LocalJobHandle, job_dir: str) -> JobResult:
        spec = handle.spec
        splits = corpus_splits(spec.input_path)
        if not splits:
            raise ValueError(f"no input splits under {spec.input_path!r}")
        os.makedirs(job_dir, exist_ok=True)
        workload = spec.workload.name.removesuffix("-local")
        start_time = self._now()
        counters = Counters()
        task_stats: List[TaskStats] = []
        failure_reasons: Dict[str, int] = {}
        counters.increment(
            Counter.MAP_INPUT_BYTES, float(sum(os.path.getsize(p) for p in splits))
        )

        def build_map(index: int, attempt: int, knobs: TaskKnobs) -> MapTaskSpec:
            return MapTaskSpec(
                job_id=spec.job_id,
                index=index,
                attempt=attempt,
                input_path=splits[index],
                workload=workload,
                num_partitions=spec.num_reducers,
                job_dir=job_dir,
                knobs=knobs,
                epoch=self._epoch,
            )

        def build_reduce(index: int, attempt: int, knobs: TaskKnobs) -> ReduceTaskSpec:
            return ReduceTaskSpec(
                job_id=spec.job_id,
                partition=index,
                attempt=attempt,
                num_maps=len(splits),
                workload=workload,
                job_dir=job_dir,
                knobs=knobs,
                epoch=self._epoch,
            )

        map_ok = self._run_phase(
            handle, TaskType.MAP, len(splits), run_map_task, build_map,
            counters, task_stats, failure_reasons,
        )
        # Reducers launch once every map has committed.  (Slowstart
        # overlap is a simulator-only refinement for now; real shuffle
        # segments only exist after the map commit.)
        reduce_ok = map_ok and self._run_phase(
            handle, TaskType.REDUCE, spec.num_reducers, run_reduce_task,
            build_reduce, counters, task_stats, failure_reasons,
        )
        return JobResult(
            job_id=spec.job_id,
            succeeded=map_ok and reduce_ok,
            start_time=start_time,
            end_time=self._now(),
            counters=counters,
            task_stats=task_stats,
            failure_reasons=failure_reasons,
        )

    def _run_phase(
        self,
        handle: LocalJobHandle,
        task_type: TaskType,
        count: int,
        worker_fn: Callable,
        build_spec: Callable[[int, int, TaskKnobs], object],
        counters: Counters,
        task_stats: List[TaskStats],
        failure_reasons: Dict[str, int],
    ) -> bool:
        """Drive one task phase through the gate and the worker pool.

        Returns True when every task committed.  The gate's accounting
        contract is one admission per *attempt*: retries re-enter
        through :meth:`LaunchGate.admit`, and every admitted attempt
        reports exactly one :class:`TaskStats` (failed attempts report
        ``failed=True``), which keeps the tuner's starved-batch detector
        balanced.
        """
        spec = handle.spec
        gate = handle.gate
        provider = handle.config_provider
        self._ensure_pool()
        task_id_of = (
            spec.map_task_id if task_type is TaskType.MAP else spec.reduce_task_id
        )

        admitted: Deque[Tuple[int, int]] = deque()

        def request_admission(index: int) -> None:
            ev = gate.admit(task_type, self.sim)
            ev.add_callback(lambda e, i=index: admitted.append((i, e.value)))

        for index in range(count):
            request_admission(index)
        self._pump()

        running: Dict[object, Tuple[int, int, Configuration, TaskKnobs, float]] = {}
        attempts: Dict[int, int] = {i: 0 for i in range(count)}
        oom_retry: Dict[int, bool] = {}
        #: Indices awaiting their ``hang`` classification after a kill.
        hung_pending: set = set()
        completed = 0
        phase_ok = True

        while completed < count:
            while admitted and len(running) < self.slots:
                index, wave = admitted.popleft()
                if oom_retry.pop(index, False) or provider is None:
                    # Config-induced failure: re-run on the job's own
                    # base configuration (known feasible), mirroring the
                    # AM's config-retry ladder.
                    config = spec.base_config
                else:
                    config = provider.task_config(spec, task_id_of(index))
                knobs = knobs_from_config(config, task_type)
                future = self._ensure_pool().submit(
                    worker_fn, build_spec(index, attempts[index], knobs)
                )
                running[future] = (index, wave, config, knobs, self._now())
                self._sample_node(len(running), knobs.container_memory_bytes)
            if not running:
                if admitted:
                    continue
                raise RuntimeError(
                    f"launch gate starved {spec.job_id} {task_type.value} phase: "
                    f"{completed}/{count} tasks done, none admitted or running"
                )
            if self.watchdog is None:
                done, _pending = futures_wait(running, return_when=FIRST_COMPLETED)
            else:
                done, _pending = futures_wait(
                    running,
                    timeout=self.watchdog.poll_interval,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    deadline = self.watchdog.deadline_for(task_type)
                    overdue = sorted(
                        (state[0], state[4])
                        for state in running.values()
                        if self._now() - state[4] > deadline
                    )
                    if not overdue:
                        continue  # nobody finished, nobody hung: keep polling
                    # A worker past its liveness deadline will never
                    # finish on its own.  SIGKILL the pool (collateral
                    # in-flight attempts die too -- the node-loss blast
                    # radius), classify, pause with jitter, and let the
                    # retry ladder re-admit survivors on a fresh pool.
                    for index, started in overdue:
                        hung_pending.add(index)
                        if self.telemetry.wants("fault"):
                            self.telemetry.emit(
                                WorkerHang(
                                    time=self._now(),
                                    task=str(task_id_of(index)),
                                    deadline=deadline,
                                    attempt=attempts[index],
                                )
                            )
                        self.telemetry.increment("backend.worker_hangs")
                    self._kill_workers()
                    done, _pending = futures_wait(running)
                    pool = self._pool
                    if pool is not None:
                        pool.shutdown(wait=True, cancel_futures=True)
                        self._pool = None
                    time.sleep(next(self._hang_delays))
            # Deterministic handling order regardless of completion order.
            for future in sorted(done, key=lambda f: running[f][0]):
                index, wave, config, knobs, _started = running.pop(future)
                attempts[index] += 1
                try:
                    report: TaskReport = future.result()
                except Exception as exc:
                    hung = index in hung_pending
                    hung_pending.discard(index)
                    report = TaskReport(
                        index=index,
                        attempt=attempts[index] - 1,
                        start_time=self._now(),
                        end_time=self._now(),
                        cpu_seconds=0.0,
                        working_set_bytes=0,
                        failed=True,
                        failure_kind="hang" if hung else "env",
                        failure_reason=(
                            "liveness deadline exceeded; SIGKILLed by watchdog"
                            if hung
                            else f"worker crashed: {exc!r}"
                        ),
                    )
                stats = self._to_task_stats(
                    task_id_of(index), task_type, report, config, knobs, wave
                )
                gate.task_completed(task_type)
                retry = report.failed and attempts[index] < MAX_ATTEMPTS
                if report.failed:
                    counters.increment(Counter.FAILED_TASK_ATTEMPTS)
                    kind = report.failure_kind or "unknown"
                    failure_reasons[kind] = failure_reasons.get(kind, 0) + 1
                    if report.failure_kind == "oom":
                        oom_retry[index] = True
                else:
                    self._accumulate(counters, task_type, report)
                task_stats.append(stats)
                # The stats stream: bus first (monitor and exporters),
                # then direct listeners (the tuner) -- the app master's
                # emission order.
                if self.telemetry.wants("stats"):
                    self.telemetry.emit(
                        TaskStatsRecorded(time=stats.end_time, stats=stats)
                    )
                else:
                    self.monitor.on_task_stats(stats)
                for listener in handle.stats_listeners:
                    listener(stats)
                self._pump()
                if retry:
                    request_admission(index)
                    self._pump()
                else:
                    if report.failed:
                        phase_ok = False
                    completed += 1
                self._sample_node(len(running), knobs.container_memory_bytes)
        return phase_ok

    def _to_task_stats(
        self,
        task_id: TaskId,
        task_type: TaskType,
        report: TaskReport,
        config: Configuration,
        knobs: TaskKnobs,
        wave: int,
    ) -> TaskStats:
        is_map = task_type is TaskType.MAP
        return TaskStats(
            task_id=task_id,
            task_type=task_type,
            node_id=0,
            attempt=report.attempt,
            config=config.as_dict(),
            start_time=report.start_time,
            end_time=report.end_time,
            cpu_seconds=report.cpu_seconds,
            allocated_cores=knobs.allocated_cores,
            working_set_bytes=float(report.working_set_bytes),
            container_memory_bytes=float(knobs.container_memory_bytes),
            spilled_records=report.spilled_records,
            map_output_records=report.output_records if is_map else 0,
            map_output_bytes=float(report.output_bytes) if is_map else 0.0,
            combine_output_records=report.combine_output_records,
            shuffled_bytes=float(report.shuffled_bytes),
            reduce_input_records=report.reduce_input_records,
            failed=report.failed,
            failure_reason=report.failure_reason,
            failure_kind=report.failure_kind,
            wave=wave,
        )

    @staticmethod
    def _accumulate(
        counters: Counters, task_type: TaskType, report: TaskReport
    ) -> None:
        counters.increment(Counter.SPILLED_RECORDS, report.spilled_records)
        counters.increment(Counter.MERGE_PASSES, report.merge_passes)
        counters.increment(Counter.CPU_MILLISECONDS, report.cpu_seconds * 1000.0)
        if task_type is TaskType.MAP:
            counters.increment(Counter.MAP_OUTPUT_RECORDS, report.output_records)
            counters.increment(Counter.MAP_OUTPUT_BYTES, report.output_bytes)
            counters.increment(
                Counter.COMBINE_OUTPUT_RECORDS, report.combine_output_records
            )
        else:
            counters.increment(Counter.SHUFFLED_BYTES, report.shuffled_bytes)
            counters.increment(
                Counter.REDUCE_INPUT_RECORDS, report.reduce_input_records
            )
            counters.increment(Counter.REDUCE_OUTPUT_RECORDS, report.output_records)
            counters.increment(Counter.REDUCE_OUTPUT_BYTES, report.output_bytes)

    # ------------------------------------------------------------------
    # Output access (tests, drivers)
    # ------------------------------------------------------------------
    def read_output(self, spec: JobSpec) -> Dict[str, str]:
        """The committed reduce output of *spec* as one key->value dict."""
        out: Dict[str, str] = {}
        out_dir = os.path.join(self.job_dir(spec), "out")
        if not os.path.isdir(out_dir):
            return out
        for name in sorted(os.listdir(out_dir)):
            with open(os.path.join(out_dir, name), encoding="utf-8") as fh:
                for line in fh:
                    key, _sep, value = line.rstrip("\n").partition("\t")
                    out[key] = value
        return out
