"""Local-process execution backend: real MapReduce over local files."""

from repro.backends.local.backend import (
    LocalJobHandle,
    LocalProcessBackend,
    WatchdogSettings,
    knobs_from_config,
)
from repro.backends.local.corpus import (
    corpus_splits,
    generate_corpus,
    local_job_spec,
    local_workload_profile,
)
from repro.backends.local.worker import LOCAL_WORKLOADS, TaskKnobs

__all__ = [
    "LOCAL_WORKLOADS",
    "LocalJobHandle",
    "LocalProcessBackend",
    "TaskKnobs",
    "WatchdogSettings",
    "corpus_splits",
    "generate_corpus",
    "knobs_from_config",
    "local_job_spec",
    "local_workload_profile",
]
