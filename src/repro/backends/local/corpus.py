"""Deterministic synthetic text corpora for the local-process backend.

Real executions need real input files.  :func:`generate_corpus` writes
a seeded synthetic text corpus -- Zipf-flavored draws over a fixed
vocabulary -- as one file per map split, and
:func:`local_job_spec` packages a split directory into the same
:class:`~repro.mapreduce.jobspec.JobSpec` the simulator consumes, so
one spec shape flows through every backend.
"""

from __future__ import annotations

import os
import random
from typing import List, Optional

from repro.backends.local.worker import LOCAL_WORKLOADS
from repro.core.configuration import Configuration
from repro.mapreduce.jobspec import JobSpec, WorkloadProfile

#: A fixed bigram-ish vocabulary: common English glue words plus
#: generated stems, some carrying the grep needle ("ing") so the
#: text-search workload always has matches.
_COMMON = (
    "the of and to in a is that it was for on are with as his they at be "
    "this have from or one had by word but not what all were when your can "
    "said there use an each which she how their time if will way about many "
    "then them write would like these her long make thing see him two has "
    "look more day could go come did number sound most people over know "
    "water than call first who may down side been now find running testing "
    "tuning mapping reducing sorting merging spilling shuffling working"
).split()

_STEM_PARTS = (
    "ban", "cor", "dal", "fen", "gor", "hul", "jar", "kel", "lom", "mer",
    "nop", "pag", "quin", "ros", "sil", "tam", "urn", "vex", "wol", "yar",
)


def _vocabulary(rng: random.Random, extra_words: int = 160) -> List[str]:
    vocab = list(_COMMON)
    for _ in range(extra_words):
        word = "".join(rng.choice(_STEM_PARTS) for _ in range(rng.randint(1, 3)))
        if rng.random() < 0.25:
            word += "ing"
        vocab.append(word)
    return vocab


def generate_corpus(
    directory: str,
    num_splits: int,
    split_kb: int = 32,
    seed: int = 1,
) -> List[str]:
    """Write ``num_splits`` text files of ~``split_kb`` KB each.

    Fully determined by *seed*: the same arguments always produce the
    same bytes, so local-backend tests can assert exact outputs.
    Returns the split paths in order.
    """
    if num_splits < 1:
        raise ValueError("num_splits must be >= 1")
    if split_kb < 1:
        raise ValueError("split_kb must be >= 1")
    os.makedirs(directory, exist_ok=True)
    rng = random.Random(seed)
    vocab = _vocabulary(rng)
    # Zipf-flavored weights: rank r gets weight 1/(r+1).
    weights = [1.0 / (rank + 1) for rank in range(len(vocab))]
    paths = []
    target = split_kb * 1024
    for i in range(num_splits):
        path = os.path.join(directory, f"split_{i:05d}.txt")
        lines = []
        size = 0
        while size < target:
            words = rng.choices(vocab, weights=weights, k=rng.randint(6, 14))
            line = " ".join(words)
            lines.append(line)
            size += len(line) + 1
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines))
            fh.write("\n")
        paths.append(path)
    return paths


def corpus_splits(directory: str) -> List[str]:
    """The split files of a corpus directory, in deterministic order."""
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".txt")
    )


def local_workload_profile(workload: str) -> WorkloadProfile:
    """A :class:`WorkloadProfile` naming one of the local workloads.

    The dataflow-model ratios are irrelevant for real execution (the
    actual map/reduce functions define them); only the name travels, so
    the tuner's knowledge base keys match across backends.
    """
    if workload not in LOCAL_WORKLOADS:
        raise KeyError(
            f"unknown local workload {workload!r}, "
            f"want one of {sorted(LOCAL_WORKLOADS)}"
        )
    return WorkloadProfile(
        name=f"{workload}-local",
        map_output_ratio=1.0,
        map_output_record_size=22.0,
    )


def local_job_spec(
    workload: str,
    input_dir: str,
    num_reducers: int,
    base_config: Optional[Configuration] = None,
    name: Optional[str] = None,
) -> JobSpec:
    """Build a submittable spec for a corpus directory.

    ``input_path`` points at the split *directory*; the backend maps one
    task per split file.
    """
    return JobSpec(
        name=name or f"{workload}-local",
        workload=local_workload_profile(workload),
        input_path=input_dir,
        num_reducers=num_reducers,
        base_config=base_config or Configuration(),
    )
