"""The execution-backend protocol: one tuner, interchangeable runtimes.

MRONLINE's loop -- submit a job with per-task configurations, stream
task/node statistics into the :class:`CentralMonitor`, gate launches at
wave boundaries -- does not care *what* executes the tasks.  This module
names that seam:

* :class:`JobHandle` -- a submitted job: its spec, a mutable list of
  task-statistics listeners, and completion callbacks delivering the
  final :class:`~repro.yarn.app_master.JobResult`;
* :class:`Backend` -- a deployment that can :meth:`~Backend.submit`
  jobs, :meth:`~Backend.wait` for them, and wire an
  :class:`~repro.core.tuner.OnlineTuner` end to end via
  :meth:`~Backend.attach_tuner`.

Two implementations ship today: :class:`~repro.backends.sim.SimBackend`
(the discrete-event simulator, byte-identical to the pre-protocol
wiring) and :class:`~repro.backends.local.LocalProcessBackend` (real
mapper/reducer worker processes over local files).  Future runtimes
(a distributed cluster, trace replay) implement the same protocol.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

try:  # Python 3.8+ always has Protocol; keep the guard for safety.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    from typing_extensions import Protocol, runtime_checkable  # type: ignore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapreduce.jobspec import JobSpec
    from repro.monitor.central_monitor import CentralMonitor
    from repro.monitor.statistics import TaskStats
    from repro.telemetry.bus import TelemetryBus
    from repro.yarn.app_master import ConfigProvider, JobResult, LaunchGate


#: Names accepted by :func:`make_backend` (and the CLI's ``--backend``).
BACKEND_NAMES: Tuple[str, ...] = ("sim", "local")


@runtime_checkable
class JobHandle(Protocol):
    """One submitted job, independent of what runs it.

    ``stats_listeners`` is a mutable list: append a callable to receive
    every completed attempt's :class:`TaskStats` (the tuner's feed).
    Completion callbacks receive the final :class:`JobResult`.
    """

    spec: "JobSpec"
    stats_listeners: List[Callable[["TaskStats"], None]]

    def add_completion_callback(
        self, callback: Callable[["JobResult"], None]
    ) -> None: ...


@runtime_checkable
class Backend(Protocol):
    """A deployment that executes MapReduce jobs for the tuner.

    Implementations own a :class:`TelemetryBus` and a
    :class:`CentralMonitor` subscribed to its ``stats``/``node``
    categories, so every backend feeds the same monitoring pipeline.
    """

    #: Registry name (``"sim"``, ``"local"``, ...).
    name: str

    @property
    def monitor(self) -> "CentralMonitor": ...

    @property
    def telemetry(self) -> "TelemetryBus": ...

    def submit(
        self,
        spec: "JobSpec",
        config_provider: Optional["ConfigProvider"] = None,
        gate: Optional["LaunchGate"] = None,
    ) -> JobHandle:
        """Submit one job; it starts executing under this backend."""
        ...

    def wait(self, handle: JobHandle) -> "JobResult":
        """Drive execution until *handle*'s job completes."""
        ...

    def run_job(
        self,
        spec: "JobSpec",
        config_provider: Optional["ConfigProvider"] = None,
        gate: Optional["LaunchGate"] = None,
    ) -> "JobResult":
        """Submit one job and wait for it (``wait(submit(...))``)."""
        ...

    def attach_tuner(self, tuner, spec: "JobSpec") -> JobHandle:
        """Submit *spec* with *tuner* fully wired (provider, gate, stats)."""
        ...

    def close(self) -> None:
        """Release backend resources (worker pools, scratch space)."""
        ...


def make_backend(name: str, **kwargs) -> Backend:
    """Build a backend by registry name.

    ``"sim"`` accepts the :class:`~repro.experiments.harness.SimCluster`
    constructor keywords (``seed``, ``scheduler``, ...); ``"local"``
    accepts the :class:`~repro.backends.local.LocalProcessBackend`
    keywords (``workspace``, ``slots``, ...).
    """
    if name == "sim":
        from repro.backends.sim import SimBackend

        return SimBackend(**kwargs)
    if name == "local":
        from repro.backends.local import LocalProcessBackend

        return LocalProcessBackend(**kwargs)
    raise ValueError(f"unknown backend {name!r}, want one of {BACKEND_NAMES}")
