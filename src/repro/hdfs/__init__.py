"""A block-level HDFS model: placement, replication, locality.

Only what the MapReduce engine and the tuner observe is modelled:
block-to-node maps (for split locality), rack-aware replica placement,
and the I/O cost of reading splits and writing replicated output.
File *contents* are never materialized -- datasets are described by
sizes and record statistics (see :mod:`repro.workloads.datasets`).
"""

from repro.hdfs.block import Block, BlockLocation
from repro.hdfs.filesystem import HdfsFile, HdfsFileSystem

__all__ = ["Block", "BlockLocation", "HdfsFile", "HdfsFileSystem"]
