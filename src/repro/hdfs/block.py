"""HDFS blocks and replica locations."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence, Tuple

_block_ids = itertools.count(1)


@dataclass(frozen=True)
class BlockLocation:
    """One replica of a block."""

    node_id: int
    rack: int


class Block:
    """A fixed-size chunk of an HDFS file with replicated locations."""

    __slots__ = ("block_id", "size_bytes", "locations")

    def __init__(self, size_bytes: int, locations: Sequence[BlockLocation]) -> None:
        if size_bytes <= 0:
            raise ValueError(f"block size must be positive, got {size_bytes}")
        if not locations:
            raise ValueError("a block needs at least one replica location")
        self.block_id = next(_block_ids)
        self.size_bytes = size_bytes
        self.locations: Tuple[BlockLocation, ...] = tuple(locations)

    def hosted_on(self, node_id: int) -> bool:
        return any(loc.node_id == node_id for loc in self.locations)

    def racks(self) -> Tuple[int, ...]:
        return tuple(sorted({loc.rack for loc in self.locations}))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        hosts = ",".join(str(loc.node_id) for loc in self.locations)
        return f"<Block #{self.block_id} {self.size_bytes}B on [{hosts}]>"
