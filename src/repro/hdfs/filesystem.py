"""The HDFS namespace: files, rack-aware placement, and I/O costing.

Placement follows the standard HDFS policy: replica 1 on the writer's
node (or a random node for externally loaded data), replica 2 on a
random node in a *different* rack, replica 3 on a different node in the
same rack as replica 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.hdfs.block import Block, BlockLocation
from repro.sim.events import AllOf, Event

DEFAULT_BLOCK_SIZE = 128 * 1024 * 1024  # the paper uses 128 MB blocks


@dataclass
class HdfsFile:
    """A file in the namespace: an ordered list of blocks."""

    path: str
    blocks: List["Block"] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return sum(b.size_bytes for b in self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)


class HdfsFileSystem:
    """Namespace + placement + replicated I/O cost model."""

    def __init__(
        self,
        cluster: Cluster,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.cluster = cluster
        self.block_size = block_size
        self.replication = min(replication, len(cluster.nodes))
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._files: Dict[str, HdfsFile] = {}

    # ------------------------------------------------------------------
    # Namespace
    # ------------------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._files

    def get(self, path: str) -> HdfsFile:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def delete(self, path: str) -> None:
        self._files.pop(path, None)

    def delete_prefix(self, prefix: str) -> int:
        """Delete every path under *prefix* (a directory-tree remove).

        Used to discard a killed or failed attempt's temporary output.
        Returns the number of files removed.
        """
        doomed = [p for p in self._files if p.startswith(prefix)]
        for p in doomed:
            del self._files[p]
        return len(doomed)

    def rename(self, src: str, dst: str) -> None:
        """Atomically move *src* to *dst* (HDFS renames are metadata-only).

        This is the commit primitive: attempts write to a temporary path
        and the winner renames into place.  Fails if *dst* exists -- the
        caller lost the commit race and must clean up its own output.
        """
        if src not in self._files:
            raise FileNotFoundError(src)
        if dst in self._files:
            raise FileExistsError(dst)
        f = self._files.pop(src)
        f.path = dst
        self._files[dst] = f

    def list_files(self) -> List[str]:
        return sorted(self._files)

    def list_prefix(self, prefix: str) -> List[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _choose_locations(self, writer: Optional[Node]) -> List[BlockLocation]:
        # Dead nodes take no new replicas (the NameNode stops placing on
        # datanodes that miss heartbeats).  Filtering only kicks in once a
        # node has actually died, so fault-free RNG draws are unchanged.
        nodes = [n for n in self.cluster.nodes if n.alive] or self.cluster.nodes
        first = writer if writer is not None else nodes[self.rng.integers(len(nodes))]
        chosen: List[Node] = [first]
        if self.replication >= 2:
            other_rack = [n for n in nodes if n.rack != first.rack and n is not first]
            pool = other_rack or [n for n in nodes if n is not first]
            if pool:
                second = pool[self.rng.integers(len(pool))]
                chosen.append(second)
                if self.replication >= 3:
                    same_rack = [
                        n for n in nodes if n.rack == second.rack and n not in chosen
                    ]
                    pool3 = same_rack or [n for n in nodes if n not in chosen]
                    if pool3:
                        chosen.append(pool3[self.rng.integers(len(pool3))])
        # Any additional replicas: random distinct nodes.
        while len(chosen) < self.replication:
            remaining = [n for n in nodes if n not in chosen]
            if not remaining:
                break
            chosen.append(remaining[self.rng.integers(len(remaining))])
        return [BlockLocation(n.node_id, n.rack) for n in chosen]

    def create_file(
        self, path: str, size_bytes: int, writer: Optional[Node] = None
    ) -> HdfsFile:
        """Register *path* with placement, without charging I/O time.

        Used to pre-load input datasets; use :meth:`write_file` from task
        code when the write cost matters.
        """
        if path in self._files:
            raise FileExistsError(path)
        f = HdfsFile(path)
        remaining = int(size_bytes)
        while remaining > 0:
            chunk = min(self.block_size, remaining)
            f.blocks.append(Block(chunk, self._choose_locations(writer)))
            remaining -= chunk
        self._files[path] = f
        return f

    # ------------------------------------------------------------------
    # I/O cost model
    # ------------------------------------------------------------------
    def read_block(self, block: Block, reader: Node) -> Event:
        """Read one block from the nearest replica.

        Local replica: a disk read on the reader.  Remote replica: the
        serving node's disk read runs concurrently with (and is usually
        hidden by) the network transfer; we charge the network path plus
        the reader-side buffer drain, which dominates in practice.
        """
        if block.hosted_on(reader.node_id) and reader.alive:
            return reader.disk_read(block.size_bytes, label=f"hdfs.rd.b{block.block_id}")
        # Prefer a rack-local replica, skipping dead datanodes.  If every
        # replica host is dead we fall back to the full list (the read
        # stalls on the frozen node -- data loss is out of scope; fault
        # plans never crash more nodes than the replication factor).
        live = [
            loc for loc in block.locations if self.cluster.node(loc.node_id).alive
        ] or list(block.locations)
        candidates = sorted(
            live, key=lambda loc: (loc.rack != reader.rack, loc.node_id)
        )
        src = self.cluster.node(candidates[0].node_id)
        src.disk_read(block.size_bytes, label=f"hdfs.serve.b{block.block_id}")
        return self.cluster.network.transfer(
            src, reader, block.size_bytes, label=f"hdfs.net.b{block.block_id}"
        )

    def write_file(self, path: str, size_bytes: int, writer: Node) -> Event:
        """Write a replicated file through the standard pipeline.

        The pipeline writes the local replica to disk while streaming
        the same bytes to the off-rack replica (which itself forwards to
        the third).  We charge the local disk write and the first
        network hop concurrently; downstream hops replicate in the
        background and do not gate job completion (matching Hadoop's
        acked-pipeline behaviour at the granularity we need).
        """
        f = self.create_file(path, size_bytes, writer=writer)
        waits: List[Event] = []
        for block in f.blocks:
            waits.append(writer.disk_write(block.size_bytes, label=f"hdfs.wr.b{block.block_id}"))
            remote = [loc for loc in block.locations if loc.node_id != writer.node_id]
            if remote:
                dst = self.cluster.node(remote[0].node_id)
                waits.append(
                    self.cluster.network.transfer(
                        writer, dst, block.size_bytes, label=f"hdfs.repl.b{block.block_id}"
                    )
                )
                # Remote replica disk write happens off the critical path.
                dst.disk_write(block.size_bytes, label=f"hdfs.rwr.b{block.block_id}")
        return AllOf(self.cluster.sim, waits)
