"""Runtime monitoring: per-task and per-node statistics.

Mirrors the paper's monitor split: slave monitors gather task and node
statistics on each node manager; the central monitor aggregates them
and feeds the tuner (Figure 2).
"""

from repro.monitor.central_monitor import CentralMonitor
from repro.monitor.slave_monitor import SlaveMonitor
from repro.monitor.statistics import NodeStats, TaskStats, UtilizationTimeline

__all__ = [
    "CentralMonitor",
    "NodeStats",
    "SlaveMonitor",
    "TaskStats",
    "UtilizationTimeline",
]
