"""The central monitor: aggregates task and node statistics.

The per-node slave monitors push :class:`NodeStats` samples here; app
masters push :class:`TaskStats` on task completion.  The tuner reads
both through query methods -- it never touches simulator internals.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.mapreduce.jobspec import TaskType
from repro.monitor.statistics import NodeStats, TaskStats, UtilizationTimeline
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import TelemetryBus
    from repro.telemetry.events import TelemetryEvent


class CentralMonitor:
    """Aggregation point for all runtime statistics.

    Ingestion happens two ways: direct calls to :meth:`on_task_stats` /
    :meth:`on_node_stats` (standalone use, tests), or as a telemetry-bus
    subscriber on the ``stats`` and ``node`` categories (how
    :class:`~repro.experiments.harness.SimCluster` wires it).
    """

    def __init__(self, sim: Simulator, bus: Optional["TelemetryBus"] = None) -> None:
        self.sim = sim
        self.task_stats: List[TaskStats] = []
        self.node_samples: List[NodeStats] = []
        self.cpu_timelines: Dict[int, UtilizationTimeline] = defaultdict(UtilizationTimeline)
        self.mem_timelines: Dict[int, UtilizationTimeline] = defaultdict(UtilizationTimeline)
        #: Subscribers notified of every completed task (the tuner).
        self.task_listeners: List[Callable[[TaskStats], None]] = []
        #: Per-job count of fetch-retry-inflated measurements; these are
        #: flagged so the tuner's cost evaluation can discount them.
        self.fetch_inflated_count: Dict[str, int] = defaultdict(int)
        #: Elastic membership: node_id -> time it left / joined.  Fed by
        #: ``capacity_change`` telemetry so aggregation tracks the live
        #: set instead of averaging over ghosts.
        self.departed_nodes: Dict[int, float] = {}
        self.joined_nodes: Dict[int, float] = {}
        #: Blackout windows ``(node_id-or-None, start, end)`` opened by
        #: injected monitor outages / stats gaps.  Node samples inside
        #: an applicable window are dropped on ingestion.
        self.gaps: List[Tuple[Optional[int], float, float]] = []
        if bus is not None:
            self.subscribe_to(bus)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def subscribe_to(self, bus: "TelemetryBus") -> None:
        """Consume the monitor feeds (``stats`` + ``node``) from *bus*."""
        bus.subscribe(self.on_event, categories=("stats", "node"))

    def on_event(self, event: "TelemetryEvent") -> None:
        from repro.telemetry.events import (
            CapacityChange,
            NodeSampled,
            TaskStatsRecorded,
        )

        if isinstance(event, TaskStatsRecorded):
            self.on_task_stats(event.stats)
        elif isinstance(event, NodeSampled):
            self.on_node_stats(event.stats)
        elif isinstance(event, CapacityChange):
            self.on_capacity_change(event.node_id, event.action, event.time)

    def on_capacity_change(self, node_id: int, action: str, time: float) -> None:
        """Track elastic membership so queries follow the live set."""
        if action == "depart":
            self.departed_nodes.setdefault(node_id, time)
        elif action == "join":
            self.joined_nodes.setdefault(node_id, time)

    def on_task_stats(self, stats: TaskStats) -> None:
        self.task_stats.append(stats)
        if stats.fetch_retries > 0:
            self.fetch_inflated_count[stats.task_id.job_id] += 1
        for listener in self.task_listeners:
            listener(stats)

    def begin_gap(
        self, start: float, end: float, node_id: Optional[int] = None
    ) -> None:
        """Black out node-sample ingestion over ``[start, end]``.

        ``node_id=None`` means cluster-wide (a central-monitor outage);
        a specific id silences one slave monitor.  Task statistics keep
        flowing -- they arrive through the app masters' completion path,
        which buffers until the monitor answers -- but utilization
        samples inside the window are lost for good, so the timelines
        bridge the gap with the last pre-window level.
        """
        self.gaps.append((node_id, start, end))

    def _in_gap(self, node_id: int, time: float) -> bool:
        return any(
            (gap_node is None or gap_node == node_id) and start <= time <= end
            for gap_node, start, end in self.gaps
        )

    def on_node_stats(self, sample: NodeStats) -> None:
        if self.gaps and self._in_gap(sample.node_id, sample.time):
            return
        self.node_samples.append(sample)
        self.cpu_timelines[sample.node_id].add(sample.time, sample.cpu_utilization)
        self.mem_timelines[sample.node_id].add(sample.time, sample.memory_utilization)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def stats_for_job(self, job_id: str, task_type: Optional[TaskType] = None) -> List[TaskStats]:
        out = [s for s in self.task_stats if s.task_id.job_id == job_id]
        if task_type is not None:
            out = [s for s in out if s.task_type is task_type]
        return out

    def fetch_inflated_fraction(self, job_id: str) -> float:
        """Fraction of *job_id*'s measurements inflated by fetch retries."""
        total = sum(1 for s in self.task_stats if s.task_id.job_id == job_id)
        if total == 0:
            return 0.0
        return self.fetch_inflated_count[job_id] / total

    def mean_cpu_utilization(self, since: float = 0.0) -> float:
        return self._mean_over(self.cpu_timelines, since)

    def mean_memory_utilization(self, since: float = 0.0) -> float:
        return self._mean_over(self.mem_timelines, since)

    def _mean_over(
        self, timelines: Dict[int, UtilizationTimeline], since: float
    ) -> float:
        """Per-node time-weighted means averaged over *current* capacity.

        A node that departed before the window opened contributes
        nothing; one that departed mid-window contributes only up to its
        departure.  Joined nodes start contributing from their first
        sample, so the denominator always tracks the live membership.
        """
        values = []
        for node_id in sorted(timelines):
            departed = self.departed_nodes.get(node_id)
            if departed is not None and departed <= since:
                continue
            values.append(timelines[node_id].mean(since, until=departed))
        return sum(values) / len(values) if values else 0.0

    def hot_nodes(self, cpu_threshold: float = 0.9) -> List[int]:
        """Nodes whose latest CPU sample exceeds *cpu_threshold* (hot spots)."""
        hot = []
        for node_id, tl in self.cpu_timelines.items():
            if node_id in self.departed_nodes:
                continue  # a ghost's stale last sample is not a hot spot
            latest = tl.latest()
            if latest is not None and latest >= cpu_threshold:
                hot.append(node_id)
        return sorted(hot)
