"""Per-node slave monitor: samples node statistics periodically."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.monitor.statistics import NodeStats
from repro.sim.engine import Simulator
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - avoids a monitor <-> yarn cycle
    from repro.yarn.node_manager import NodeManager

DEFAULT_SAMPLE_INTERVAL = 5.0


class SlaveMonitor:
    """Gathers node statistics and forwards them to the central monitor.

    Mirrors the paper's slave monitors running inside each node manager
    (Section 3): they sample local CPU/memory/network state and push it
    upstream on a fixed period.  With an explicit *sink* the sample is
    handed to that callable; without one, each sample is published on
    the simulator's telemetry bus as a ``node``-category
    :class:`~repro.telemetry.events.NodeSampled` event (dropped when no
    bus -- or no subscriber -- is attached).
    """

    def __init__(
        self,
        sim: Simulator,
        node_manager: "NodeManager",
        sink: Optional[Callable[[NodeStats], None]] = None,
        interval: float = DEFAULT_SAMPLE_INTERVAL,
        network=None,
    ) -> None:
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.sim = sim
        self.nm = node_manager
        self.sink = sink
        self.interval = interval
        self.network = network
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.process(self._loop(), name=f"slave-mon-{self.nm.node.node_id}")

    def stop(self) -> None:
        self._running = False

    def sample(self) -> NodeStats:
        node = self.nm.node
        rx = tx = 0.0
        if self.network is not None:
            rx, tx = self.network.nic_utilization(node)
        return NodeStats(
            node_id=node.node_id,
            time=self.sim.now,
            cpu_utilization=self.nm.cpu_utilization(),
            memory_utilization=self.nm.memory_utilization(),
            running_containers=self.nm.running_containers,
            rx_utilization=rx,
            tx_utilization=tx,
        )

    def _publish(self, sample: NodeStats) -> None:
        if self.sink is not None:
            self.sink(sample)
            return
        tel = self.sim.telemetry
        if tel is not None and tel.wants("node"):
            from repro.telemetry.events import NodeSampled

            tel.emit(NodeSampled(time=sample.time, stats=sample))

    def _loop(self) -> Generator[Event, object, None]:
        while self._running:
            self._publish(self.sample())
            yield self.sim.timeout(self.interval)
