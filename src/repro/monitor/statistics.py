"""Statistics records exchanged between monitors and the tuner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mapreduce.jobspec import TaskId, TaskType


@dataclass
class TaskStats:
    """Everything the monitor reports about one finished task attempt.

    This is deliberately restricted to signals a real YARN deployment
    exposes (job counters + container utilization); the tuner is
    gray-box, not omniscient.
    """

    task_id: TaskId
    task_type: TaskType
    node_id: int
    attempt: int
    config: Dict[str, float]
    start_time: float
    end_time: float
    #: Core-seconds of CPU actually consumed.
    cpu_seconds: float
    #: Core-capacity the container was entitled to (cores).
    allocated_cores: float
    #: Peak resident working set in bytes.
    working_set_bytes: float
    container_memory_bytes: float
    spilled_records: int = 0
    map_output_records: int = 0
    map_output_bytes: float = 0.0
    combine_output_records: int = 0
    shuffled_bytes: float = 0.0
    reduce_input_records: int = 0
    failed: bool = False
    failure_reason: str = ""
    #: Wave index assigned by the launch gate (aggressive tuning).
    wave: int = -1

    @property
    def duration(self) -> float:
        return max(0.0, self.end_time - self.start_time)

    @property
    def memory_utilization(self) -> float:
        """u_mem in Equation 1: peak working set over the container grant."""
        if self.container_memory_bytes <= 0:
            return 0.0
        return min(1.0, self.working_set_bytes / self.container_memory_bytes)

    @property
    def cpu_utilization(self) -> float:
        """u_cpu in Equation 1: CPU consumed over the container's entitlement."""
        denom = self.duration * self.allocated_cores
        if denom <= 0:
            return 0.0
        return min(1.0, self.cpu_seconds / denom)

    @property
    def spill_ratio(self) -> float:
        """Spilled records over map/combine output records (Equation 1).

        For reduce tasks the denominator is the shuffled record count.
        """
        if self.task_type is TaskType.MAP:
            denom = self.combine_output_records or self.map_output_records
        else:
            denom = self.reduce_input_records
        if denom <= 0:
            return 0.0 if self.spilled_records == 0 else 1.0
        return self.spilled_records / denom


@dataclass
class NodeStats:
    """A point-in-time sample of one node's resource state."""

    node_id: int
    time: float
    cpu_utilization: float
    memory_utilization: float
    running_containers: int
    rx_utilization: float = 0.0
    tx_utilization: float = 0.0


@dataclass
class UtilizationTimeline:
    """Accumulates utilization samples; reports time-weighted means."""

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def add(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def mean(self, since: float = 0.0) -> float:
        pairs = [(t, v) for t, v in zip(self.times, self.values) if t >= since]
        if not pairs:
            return 0.0
        if len(pairs) == 1:
            return pairs[0][1]
        total = 0.0
        span = pairs[-1][0] - pairs[0][0]
        if span <= 0:
            return sum(v for _, v in pairs) / len(pairs)
        for (t0, v0), (t1, _v1) in zip(pairs, pairs[1:]):
            total += v0 * (t1 - t0)
        return total / span

    def latest(self) -> Optional[float]:
        return self.values[-1] if self.values else None
