"""Statistics records exchanged between monitors and the tuner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mapreduce.jobspec import TaskId, TaskType


@dataclass
class TaskStats:
    """Everything the monitor reports about one finished task attempt.

    This is deliberately restricted to signals a real YARN deployment
    exposes (job counters + container utilization); the tuner is
    gray-box, not omniscient.
    """

    task_id: TaskId
    task_type: TaskType
    node_id: int
    attempt: int
    config: Dict[str, float]
    start_time: float
    end_time: float
    #: Core-seconds of CPU actually consumed.
    cpu_seconds: float
    #: Core-capacity the container was entitled to (cores).
    allocated_cores: float
    #: Peak resident working set in bytes.
    working_set_bytes: float
    container_memory_bytes: float
    spilled_records: int = 0
    map_output_records: int = 0
    map_output_bytes: float = 0.0
    combine_output_records: int = 0
    shuffled_bytes: float = 0.0
    reduce_input_records: int = 0
    failed: bool = False
    failure_reason: str = ""
    #: Classifies a failure for the tuner: ``"oom"`` is config-induced
    #: (the sampled point is infeasible), while ``"preempted"``,
    #: ``"node_lost"`` and ``"speculation"`` are environmental -- the
    #: config is not to blame and is penalized more gently.
    failure_kind: str = ""
    #: True for backup attempts launched by speculative execution; their
    #: stats bypass the tuner's wave accounting entirely.
    speculative: bool = False
    #: Wave index assigned by the launch gate (aggressive tuning).
    wave: int = -1
    #: Failed shuffle fetch attempts (timeouts/connection errors) this
    #: attempt retried through -- nonzero marks the measurement as
    #: fetch-inflated for the tuner's stat discounting.
    fetch_retries: int = 0
    #: Simulated seconds this attempt spent in fetch backoff sleeps.
    fetch_penalty_seconds: float = 0.0

    @property
    def duration(self) -> float:
        return max(0.0, self.end_time - self.start_time)

    @property
    def memory_utilization(self) -> float:
        """u_mem in Equation 1: peak working set over the container grant."""
        if self.container_memory_bytes <= 0:
            return 0.0
        return min(1.0, self.working_set_bytes / self.container_memory_bytes)

    @property
    def cpu_utilization(self) -> float:
        """u_cpu in Equation 1: CPU consumed over the container's entitlement."""
        denom = self.duration * self.allocated_cores
        if denom <= 0:
            return 0.0
        return min(1.0, self.cpu_seconds / denom)

    @property
    def spill_ratio(self) -> float:
        """Spilled records over map/combine output records (Equation 1).

        For reduce tasks the denominator is the shuffled record count.
        """
        if self.task_type is TaskType.MAP:
            denom = self.combine_output_records or self.map_output_records
        else:
            denom = self.reduce_input_records
        if denom <= 0:
            return 0.0 if self.spilled_records == 0 else 1.0
        return self.spilled_records / denom


@dataclass
class AttemptProgress:
    """A running attempt's live progress (feeds LATE-style speculation)."""

    task_id: TaskId
    task_type: TaskType
    attempt: int
    node_id: int
    start_time: float
    fraction: float = 0.0  # 0..1, updated at phase boundaries

    def progress_rate(self, now: float) -> float:
        """Progress per second since launch (LATE's scoring metric)."""
        elapsed = now - self.start_time
        if elapsed <= 0:
            return float("inf")
        return self.fraction / elapsed

    def estimated_remaining(self, now: float) -> float:
        """Time left at the observed rate; infinite while rate is ~zero."""
        rate = self.progress_rate(now)
        if rate <= 1e-12:
            return float("inf")
        return (1.0 - self.fraction) / rate


class ProgressBoard:
    """Tracks per-attempt progress fractions for one job.

    Task models report coarse fractions at phase boundaries (read, sort,
    shuffle, merge, reduce); the app master's speculator reads the board
    to find stragglers.  This mirrors what Hadoop's AM learns from task
    heartbeats, not an omniscient view.
    """

    def __init__(self) -> None:
        self._running: Dict[tuple, AttemptProgress] = {}

    def start(self, task_id: TaskId, attempt: int, task_type: TaskType,
              node_id: int, now: float) -> None:
        key = (str(task_id), attempt)
        self._running[key] = AttemptProgress(
            task_id=task_id, task_type=task_type, attempt=attempt,
            node_id=node_id, start_time=now,
        )

    def update(self, task_id: TaskId, attempt: int, fraction: float) -> None:
        entry = self._running.get((str(task_id), attempt))
        if entry is not None:
            entry.fraction = max(entry.fraction, min(1.0, fraction))

    def finish(self, task_id: TaskId, attempt: int) -> None:
        self._running.pop((str(task_id), attempt), None)

    def running(self) -> List[AttemptProgress]:
        """All live attempts, in deterministic (task, attempt) order."""
        return [self._running[k] for k in sorted(self._running)]

    def attempts_of(self, task_id: TaskId) -> List[AttemptProgress]:
        tid = str(task_id)
        return [p for (t, _a), p in sorted(self._running.items()) if t == tid]


@dataclass
class NodeStats:
    """A point-in-time sample of one node's resource state."""

    node_id: int
    time: float
    cpu_utilization: float
    memory_utilization: float
    running_containers: int
    rx_utilization: float = 0.0
    tx_utilization: float = 0.0


@dataclass
class UtilizationTimeline:
    """Accumulates utilization samples; reports time-weighted means."""

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def add(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def mean(self, since: float = 0.0, until: Optional[float] = None) -> float:
        pairs = []
        boundary = None  # last sample at or before the window start
        for t, v in zip(self.times, self.values):
            if until is not None and t > until:
                # Samples are appended in time order; everything past the
                # cap (a node's departure, say) is outside the window.
                break
            if t >= since:
                pairs.append((t, v))
            else:
                boundary = v
        if boundary is not None and (not pairs or pairs[0][0] > since):
            # The level in effect at the window start comes from the last
            # pre-window sample; without it, short windows ignore whatever
            # utilization was already established when the window opened.
            pairs.insert(0, (since, boundary))
        if not pairs:
            return 0.0
        if len(pairs) == 1:
            return pairs[0][1]
        total = 0.0
        span = pairs[-1][0] - pairs[0][0]
        if span <= 0:
            return sum(v for _, v in pairs) / len(pairs)
        for (t0, v0), (t1, _v1) in zip(pairs, pairs[1:]):
            total += v0 * (t1 - t0)
        return total / span

    def latest(self) -> Optional[float]:
        return self.values[-1] if self.values else None
