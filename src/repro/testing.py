"""Assertion helpers shared by the test suites and benchmarks."""

from __future__ import annotations

import os
from typing import List, Union

from repro.hdfs.filesystem import HdfsFileSystem


def leaked_temporaries(target) -> List[str]:
    """Every uncommitted temporary left behind under *target*.

    Two kinds of debris count, covering both staging conventions in the
    codebase:

    - files under an attempt-staging ``_temporary`` directory (both
      runtimes rename a winning attempt's directory into place and
      sweep the rest);
    - ``*.tmp`` siblings of the atomic tmp-then-rename writers (the
      telemetry exporters and the recovery journal's repair rewrite
      stage through ``<path>.tmp`` and must rename or unlink it).

    A :class:`~repro.backends.local.LocalProcessBackend` is asked for
    its own ``leaked_temporaries()``; anything else is treated as a
    directory path and walked on disk.
    """
    if hasattr(target, "leaked_temporaries"):
        return sorted(target.leaked_temporaries())
    leaks = []
    for root, _dirs, files in os.walk(str(target)):
        staged = "_temporary" in root.split(os.sep)
        for name in files:
            if staged or name.endswith(".tmp"):
                leaks.append(os.path.join(root, name))
    return sorted(leaks)


def assert_no_output_leaks(target: Union[HdfsFileSystem, str, object]) -> None:
    """Assert every staged temporary was committed or deleted.

    Both runtimes stage attempt output under a ``_temporary`` directory
    and either rename it into place (the winning attempt) or sweep it
    (failed, killed, and superseded attempts), so "anything left under
    ``_temporary`` is a cleanup leak" is backend-independent:

    - an :class:`HdfsFileSystem` (the simulator's store) is scanned via
      ``list_files()``;
    - a :class:`~repro.backends.local.LocalProcessBackend` is asked for
      its :meth:`leaked_temporaries`;
    - a plain path (e.g. a backend workspace that already closed, or a
      directory holding journals/exports) is checked through
      :func:`leaked_temporaries`, which also flags orphaned ``*.tmp``
      files from the atomic-rename writers.
    """
    if isinstance(target, HdfsFileSystem):
        stale = [path for path in target.list_files() if "/_temporary/" in path]
        assert not stale, f"leaked attempt-temporary HDFS files: {stale}"
        return
    stale = leaked_temporaries(target)
    assert not stale, f"leaked temporary files: {stale}"
