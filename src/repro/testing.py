"""Assertion helpers shared by the test suites and benchmarks."""

from __future__ import annotations

import os
from typing import Union

from repro.hdfs.filesystem import HdfsFileSystem


def _local_backend_leaks(target) -> list:
    """Leaked attempt-temporaries of a LocalProcessBackend or directory."""
    if hasattr(target, "leaked_temporaries"):
        return list(target.leaked_temporaries())
    leaks = []
    for root, _dirs, files in os.walk(str(target)):
        if "_temporary" in root.split(os.sep):
            leaks.extend(os.path.join(root, name) for name in files)
    return sorted(leaks)


def assert_no_output_leaks(target: Union[HdfsFileSystem, str, object]) -> None:
    """Assert every attempt-temporary file was committed or deleted.

    Both runtimes stage attempt output under a ``_temporary`` directory
    and either rename it into place (the winning attempt) or sweep it
    (failed, killed, and superseded attempts), so "anything left under
    ``_temporary`` is a cleanup leak" is backend-independent:

    - an :class:`HdfsFileSystem` (the simulator's store) is scanned via
      ``list_files()``;
    - a :class:`~repro.backends.local.LocalProcessBackend` is asked for
      its :meth:`leaked_temporaries`;
    - a plain path (e.g. a backend workspace that already closed) is
      walked on disk.
    """
    if isinstance(target, HdfsFileSystem):
        stale = [path for path in target.list_files() if "/_temporary/" in path]
        assert not stale, f"leaked attempt-temporary HDFS files: {stale}"
        return
    stale = _local_backend_leaks(target)
    assert not stale, f"leaked attempt-temporary local files: {stale}"
