"""Assertion helpers shared by the test suites and benchmarks."""

from __future__ import annotations

from repro.hdfs.filesystem import HdfsFileSystem


def assert_no_output_leaks(hdfs: HdfsFileSystem) -> None:
    """Assert every attempt-temporary HDFS file was committed or deleted.

    Reduce attempts write under ``{output}/_temporary/{task}_att{n}/``
    and either rename into place (the winner) or are swept by the app
    master (failed, killed, and superseded attempts).  Anything still
    under a ``_temporary`` directory after a job is a cleanup leak.
    """
    stale = [path for path in hdfs.list_files() if "/_temporary/" in path]
    assert not stale, f"leaked attempt-temporary HDFS files: {stale}"
