"""Figure 10: Terasort, fast single run (conservative tuning) vs default.

Paper shape: a single co-tuned run beats the default run outright --
no prior test runs needed.
"""

from benchmarks.bench_common import emit, mean, run_once, seeds
from repro.experiments.reporting import FigureReport
from repro.experiments.single_run import run_single_run_over_seeds
from repro.workloads.suite import case_by_name


def test_fig10_terasort_single_run(benchmark):
    def experiment():
        return run_single_run_over_seeds(case_by_name("terasort"), seeds())

    results = run_once(benchmark, experiment)
    report = FigureReport("Fig 10", "Terasort, fast single run", ["Terasort"])
    report.add_series("Default", [mean([r.default_time for r in results])])
    report.add_series("MRONLINE", [mean([r.mronline_time for r in results])])
    emit(report)

    assert report.series["MRONLINE"][0] < report.series["Default"][0] * 0.97
