"""Table 3: benchmark characteristics (input/shuffle/output, task counts).

Prints every row of Table 3 as modelled (analytic dataflow
expectations), then validates one representative row end-to-end by
actually running the job and comparing its counters.
"""

import numpy as np
import pytest

from benchmarks.bench_common import BASE_SEED, run_once
from repro.experiments.harness import SimCluster
from repro.experiments.reporting import format_table
from repro.mapreduce.counters import Counter
from repro.mapreduce.dataflow import JobDataflow
from repro.workloads.suite import case_by_name, make_job_spec, table3_cases

GB = 10**9


def test_table3_characteristics(benchmark):
    def build_table():
        sc = SimCluster(seed=BASE_SEED, start_monitors=False)
        rows = []
        for case in table3_cases():
            spec = make_job_spec(case, sc.hdfs)
            df = JobDataflow(
                spec, sc.hdfs.get(spec.input_path), rng=np.random.default_rng(0)
            )
            rows.append(
                [
                    case.name,
                    f"{df.total_input_bytes / GB:.1f}",
                    f"{df.expected_shuffle_bytes / GB:.2f}",
                    f"{df.expected_output_bytes / GB:.2f}",
                    df.num_maps,
                    df.num_reducers,
                    case.job_type.value,
                ]
            )
        return rows

    rows = run_once(benchmark, build_table)
    table = format_table(
        ["Benchmark", "Input (GB)", "Shuffle (GB)", "Output (GB)", "#Map", "#Reduce", "Type"],
        rows,
    )
    print("\n== Table 3: benchmark characteristics ==\n" + table)
    from benchmarks.bench_common import RESULTS_DIR

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "table3.txt").write_text(table + "\n")

    # Shape assertions against the paper's row values.
    by_name = {r[0]: r for r in rows}
    assert by_name["bigram-wikipedia"][4] == 676
    assert by_name["terasort"][5] == 200
    assert float(by_name["wordcount-wikipedia"][2]) == pytest.approx(30.3, rel=0.05)
    assert float(by_name["bigram-freebase"][3]) == pytest.approx(77.8, rel=0.07)


def test_table3_measured_counters_match_model(benchmark):
    """Run word count end-to-end: measured counters vs the Table-3 row."""

    def run():
        sc = SimCluster(seed=BASE_SEED, start_monitors=False)
        case = case_by_name("wordcount-wikipedia")
        spec = make_job_spec(case, sc.hdfs)
        return case, sc.run_job(spec)

    case, result = run_once(benchmark, run)
    shuffled = result.counters[Counter.SHUFFLED_BYTES]
    assert shuffled == pytest.approx(case.expected_shuffle_bytes, rel=0.08)
    assert len(result.task_stats) >= case.num_maps
