"""Resilience under injected faults: recovery keeps jobs successful and
the tuner's gain does not collapse when nodes crash and straggle.

Not a paper figure -- MRONLINE ran on a real testbed whose failures the
paper never isolates -- but the protocol mirrors the evaluation style:
fault-free baseline vs injected fault levels, default vs tuned arms.
"""

from benchmarks.bench_common import BASE_SEED, emit, run_once
from repro.experiments.faults import run_fault_experiment
from repro.experiments.reporting import FigureReport


def test_faults_resilience(benchmark):
    def experiment():
        return run_fault_experiment(
            case_name="terasort",
            seed=BASE_SEED,
            levels=("none", "low", "high"),
            tuning="conservative",
        )

    report_data = run_once(benchmark, experiment)
    levels = [row.level for row in report_data.rows]
    report = FigureReport("Resilience", "Terasort under injected faults", levels)
    report.add_series("Default", [row.default.job_time for row in report_data.rows])
    report.add_series("MRONLINE", [row.tuned.job_time for row in report_data.rows])
    emit(report)

    for row in report_data.rows:
        # Re-execution and speculation must keep every arm successful.
        assert row.default.succeeded, f"default run failed at level {row.level}"
        assert row.tuned.succeeded, f"tuned run failed at level {row.level}"
    high = report_data.rows[-1]
    assert high.default.killed_attempts >= 1, "faults never destroyed an attempt"
    # Faults cost time but not an order of magnitude (recovery works).
    assert high.default.job_time < 2.0 * report_data.baseline.job_time
    # The tuner still helps under the heaviest fault level.
    assert high.tuner_gain > 0.0
