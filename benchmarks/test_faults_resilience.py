"""Resilience under injected faults: recovery keeps jobs successful and
the tuner's gain does not collapse when nodes crash and straggle.

Not a paper figure -- MRONLINE ran on a real testbed whose failures the
paper never isolates -- but the protocol mirrors the evaluation style:
fault-free baseline vs injected fault levels, default vs tuned arms.
"""

from benchmarks.bench_common import BASE_SEED, emit, run_once
from repro.experiments.faults import run_fault_experiment
from repro.experiments.reporting import FigureReport


def test_faults_resilience(benchmark):
    def experiment():
        return run_fault_experiment(
            case_name="terasort",
            seed=BASE_SEED,
            levels=("none", "low", "high"),
            tuning="conservative",
        )

    report_data = run_once(benchmark, experiment)
    levels = [row.level for row in report_data.rows]
    report = FigureReport("Resilience", "Terasort under injected faults", levels)
    report.add_series("Default", [row.default.job_time for row in report_data.rows])
    report.add_series("MRONLINE", [row.tuned.job_time for row in report_data.rows])
    emit(report)

    for row in report_data.rows:
        # Re-execution and speculation must keep every arm successful.
        assert row.default.succeeded, f"default run failed at level {row.level}"
        assert row.tuned.succeeded, f"tuned run failed at level {row.level}"
    high = report_data.rows[-1]
    assert high.default.killed_attempts >= 1, "faults never destroyed an attempt"
    # Faults cost time but not an order of magnitude (recovery works).
    assert high.default.job_time < 2.0 * report_data.baseline.job_time
    # The tuner still helps under the heaviest fault level.
    assert high.tuner_gain > 0.0


def _replay_fetch_telemetry(plan_json: str):
    """Replay a serialized plan in-process and return (result, counters).

    Mirrors ``execute_request``'s default (untuned, faulted) arm exactly
    -- same seed, same fault-tolerance settings, same shrunk case -- but
    keeps the live :class:`SimCluster`, because ``RunOutcome`` does not
    carry the telemetry bus counters the smoke assertion needs.
    """
    from repro.experiments.harness import SimCluster
    from repro.experiments.parallel import RunRequest, resolve_case
    from repro.faults import plan_from_json
    from repro.workloads.suite import make_job_spec
    from repro.yarn.app_master import FaultToleranceSettings, SpeculationSettings

    request = RunRequest.build(
        "terasort", BASE_SEED, tuning="none", num_blocks=8, num_reducers=4,
        faults={"plan": plan_json},
    )
    sc = SimCluster(
        seed=BASE_SEED,
        fault_tolerance=FaultToleranceSettings(speculation=SpeculationSettings()),
    )
    sc.inject_faults(plan=plan_from_json(plan_json))
    spec = make_job_spec(resolve_case(request), sc.hdfs)
    result = sc.run_job(spec)
    return result, dict(sc.telemetry.counters)


def test_network_faults_smoke(benchmark):
    """Link-fault scenarios: jobs survive and fetch recovery actually ran.

    The smoke arm of the network-fault model (``repro faults --kinds
    link_flaky,rack_partition``): every level must finish successfully,
    and replaying the heaviest plan in-process must show nonzero
    ``shuffle.fetch_retries`` telemetry -- success without retries would
    mean the fault windows never intersected the shuffle and the run
    proved nothing.
    """

    def experiment():
        report = run_fault_experiment(
            case_name="terasort",
            seed=BASE_SEED,
            levels=("none", "low", "high"),
            tuning="conservative",
            num_blocks=8,
            num_reducers=4,
            kinds=("link_flaky", "rack_partition"),
        )
        plans = dict(report.plans_json)
        replay, counters = _replay_fetch_telemetry(plans["high"])
        return report, replay, counters

    report_data, replay, counters = run_once(benchmark, experiment)
    levels = [row.level for row in report_data.rows]
    report = FigureReport(
        "Network faults", "Terasort under link faults", levels
    )
    report.add_series("Default", [row.default.job_time for row in report_data.rows])
    report.add_series("MRONLINE", [row.tuned.job_time for row in report_data.rows])
    emit(report)

    for row in report_data.rows:
        assert row.default.succeeded, f"default run failed at level {row.level}"
        assert row.tuned.succeeded, f"tuned run failed at level {row.level}"
    assert replay.succeeded, "high-level plan replay failed"
    retries = int(counters.get("shuffle.fetch_retries", 0))
    assert retries > 0, "link faults injected but no fetch was ever retried"
