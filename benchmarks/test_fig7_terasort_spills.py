"""Figure 7: Terasort map-side spill records, expedited use case.

Optimal (combiner/map output spilled once) vs default vs offline vs
MRONLINE.  Paper shape: default spills a small-integer multiple of
optimal; both offline tuning and MRONLINE reduce spills to ~optimal.
"""

from benchmarks.bench_common import PAPER_HILL_CLIMB, emit, mean, run_once, seeds
from repro.experiments.expedited import run_expedited_over_seeds
from repro.experiments.reporting import FigureReport
from repro.workloads.suite import case_by_name


def test_fig7_terasort_spills(benchmark):
    def experiment():
        return run_expedited_over_seeds(
            case_by_name("terasort"), seeds(), PAPER_HILL_CLIMB
        )

    results = run_once(benchmark, experiment)
    report = FigureReport(
        "Fig 7", "Terasort map spill records (1e9)", ["Terasort"], unit="1e9 records"
    )
    for series, attr in (
        ("Optimal", "optimal_spills"),
        ("Default", "default_spills"),
        ("Offline Tuning", "offline_spills"),
        ("MRONLINE", "mronline_spills"),
    ):
        report.add_series(series, [mean([getattr(r, attr) for r in results]) / 1e9])
    emit(report)

    optimal = report.series["Optimal"][0]
    default = report.series["Default"][0]
    mronline = report.series["MRONLINE"][0]
    # Paper: spills "effectively reduced to optimal" by MRONLINE.
    assert default > optimal * 1.5
    assert mronline <= optimal * 1.1
