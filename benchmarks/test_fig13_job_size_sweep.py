"""Figure 13: effect of job size on tuning effectiveness.

Terasort from 2 GB to 100 GB, reducers ~ maps/4.  Paper shape: tuning
is marginal below ~10 GB (too few tasks to search with), becomes
effective around 20 GB (~21%), and stays in the ~20% band at 60 and
100 GB without further improvement.
"""

from benchmarks.bench_common import PAPER_HILL_CLIMB, emit, mean, run_once, seeds
from repro.experiments.jobsize import PAPER_SIZES_GB, run_sweep_over_seeds
from repro.experiments.reporting import FigureReport


def test_fig13_job_size_sweep(benchmark):
    def experiment():
        return run_sweep_over_seeds(seeds(), PAPER_SIZES_GB, PAPER_HILL_CLIMB)

    per_seed = run_once(benchmark, experiment)
    labels = [f"{int(s)}GB" for s in PAPER_SIZES_GB]
    report = FigureReport("Fig 13", "Terasort execution time vs job size", labels)
    report.add_series(
        "Default",
        [
            mean([run[i].default_time for run in per_seed])
            for i in range(len(PAPER_SIZES_GB))
        ],
    )
    report.add_series(
        "MRONLINE",
        [
            mean([run[i].mronline_time for run in per_seed])
            for i in range(len(PAPER_SIZES_GB))
        ],
    )
    emit(report)

    improvements = report.improvement_over("Default", "MRONLINE")
    small = {label: imp for label, imp in zip(labels, improvements)}
    # Crossover: small jobs barely improve, large jobs improve clearly.
    assert small["2GB"] < 0.12
    large_gain = mean([small["20GB"], small["60GB"], small["100GB"]])
    small_gain = mean([small["2GB"], small["6GB"]])
    assert large_gain > small_gain
    assert large_gain > 0.10
