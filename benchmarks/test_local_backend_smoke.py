"""Local-process backend throughput smoke.

Not a paper figure: a nightly canary for the *real* execution path.
One small wordcount wave (every task fits in a single pool dispatch)
runs on :class:`LocalProcessBackend`, the output is checked against a
pure-Python reference, and the measured tasks/sec lands in
``benchmarks/results/BENCH_local_backend.json``.  Absolute throughput
is machine-dependent -- the JSON exists to expose *trends* across
nightly runs, while the assertions only guard sanity (the job
completes, produces correct output, and is not absurdly slow).
"""

from __future__ import annotations

import collections
import os
import re
import tempfile
import time

from repro.backends.local import (
    LocalProcessBackend,
    generate_corpus,
    local_job_spec,
)
from repro.mapreduce.counters import Counter

from benchmarks.bench_common import record_bench

#: Small wordcount wave: 8 maps + 2 reducers = 10 real tasks.
NUM_SPLITS = 8
SPLIT_KB = 16
NUM_REDUCERS = 2

#: Sanity floor: even a slow CI box clears 2 tasks/sec on 16 KB splits
#: by a wide margin (local runs measure hundreds).
MIN_TASKS_PER_SEC = 2.0

BEST_OF = 3


def test_local_backend_wordcount_wave_throughput():
    with tempfile.TemporaryDirectory(prefix="repro-bench-local-") as td:
        corpus = os.path.join(td, "corpus")
        generate_corpus(corpus, num_splits=NUM_SPLITS, split_kb=SPLIT_KB, seed=1)

        best_wall = float("inf")
        result = None
        backend = None
        for i in range(BEST_OF):
            spec = local_job_spec("wordcount", corpus, num_reducers=NUM_REDUCERS)
            backend = LocalProcessBackend(workspace=os.path.join(td, f"ws{i}"))
            try:
                start = time.perf_counter()
                result = backend.run_job(spec)
                wall = time.perf_counter() - start
            finally:
                out = backend.read_output(spec)
                backend.close()
            assert result.succeeded, result.failure_reasons
            best_wall = min(best_wall, wall)

        # Correctness before speed: the committed output must match a
        # single-process reference count.
        reference = collections.Counter()
        for name in sorted(os.listdir(corpus)):
            with open(os.path.join(corpus, name), encoding="utf-8") as fh:
                reference.update(re.findall(r"[a-z']+", fh.read().lower()))
        assert {k: int(v) for k, v in out.items()} == dict(reference)

        num_tasks = NUM_SPLITS + NUM_REDUCERS
        tasks_per_sec = num_tasks / best_wall
        assert tasks_per_sec >= MIN_TASKS_PER_SEC, (
            f"local backend ran {tasks_per_sec:.1f} tasks/sec "
            f"(floor {MIN_TASKS_PER_SEC})"
        )
        record_bench(
            "local_backend",
            wall_time_s=round(best_wall, 4),
            extra={
                "workload": "wordcount",
                "num_maps": NUM_SPLITS,
                "num_reducers": NUM_REDUCERS,
                "split_kb": SPLIT_KB,
                "tasks_per_sec": round(tasks_per_sec, 1),
                "map_output_records": result.counters.get(
                    Counter.MAP_OUTPUT_RECORDS
                ),
                "spilled_records": result.counters.get(Counter.SPILLED_RECORDS),
                "best_of": BEST_OF,
            },
        )
