"""Figure 11: Wikipedia apps, fast single run (conservative) vs default.

Paper shape: 8% (word count) to ~19% improvement, every app positive.
"""

from benchmarks.bench_common import emit, mean, run_once, seeds
from repro.experiments.reporting import FigureReport
from repro.experiments.single_run import run_single_run_over_seeds
from repro.workloads.suite import case_by_name

APPS = [
    ("bigram-wikipedia", "Bigram"),
    ("inverted-index-wikipedia", "InvertedIndex"),
    ("wordcount-wikipedia", "WC"),
    ("text-search-wikipedia", "TextSearch"),
]


def test_fig11_wikipedia_single_run(benchmark):
    def experiment():
        return {
            name: run_single_run_over_seeds(case_by_name(name), seeds())
            for name, _label in APPS
        }

    results = run_once(benchmark, experiment)
    report = FigureReport(
        "Fig 11", "Wikipedia apps, fast single run", [label for _n, label in APPS]
    )
    report.add_series(
        "Default",
        [mean([r.default_time for r in results[name]]) for name, _l in APPS],
    )
    report.add_series(
        "MRONLINE",
        [mean([r.mronline_time for r in results[name]]) for name, _l in APPS],
    )
    emit(report)

    improvements = report.improvement_over("Default", "MRONLINE")
    assert all(imp > 0.0 for imp in improvements)
