"""Figure 6: Freebase applications, expedited test-runs use case.

Paper shape: MRONLINE improves over default by 30/18/20/25% for
bigram / inverted index / word count / text search.
"""

from benchmarks.bench_common import PAPER_HILL_CLIMB, emit, mean, run_once, seeds
from repro.experiments.expedited import run_expedited_over_seeds
from repro.experiments.reporting import FigureReport
from repro.workloads.suite import case_by_name

APPS = [
    ("bigram-freebase", "Bigram"),
    ("inverted-index-freebase", "InvertedIndex"),
    ("wordcount-freebase", "WC"),
    ("text-search-freebase", "TextSearch"),
]


def test_fig6_freebase_expedited(benchmark):
    def experiment():
        return {
            name: run_expedited_over_seeds(case_by_name(name), seeds(), PAPER_HILL_CLIMB)
            for name, _label in APPS
        }

    results = run_once(benchmark, experiment)
    report = FigureReport(
        "Fig 6",
        "Freebase apps execution time, expedited test runs",
        [label for _n, label in APPS],
    )
    for series, attr in (
        ("Default", "default_time"),
        ("Offline Tuning", "offline_time"),
        ("MRONLINE", "mronline_time"),
    ):
        report.add_series(
            series,
            [mean([getattr(r, attr) for r in results[name]]) for name, _l in APPS],
        )
    emit(report)

    improvements = report.improvement_over("Default", "MRONLINE")
    # Word count on Freebase is the one app whose default is already
    # near-optimal under this substrate (its combiner crushes the spill
    # *bytes* even when the spill *records* double), so individual apps
    # are allowed a noise-level regression; the suite must clearly win.
    assert all(imp > -0.05 for imp in improvements)
    assert mean(improvements) > 0.08
    assert max(improvements) > 0.15
