"""Figure 16: multi-tenant CPU utilization per role.

Paper shape: under defaults all roles except BBP's mappers idle below
~25% CPU, while BBP-m saturates its allocation (~99%); MRONLINE
rebalances allocations (more cores to the compute-bound BBP mappers,
leaner grants elsewhere).
"""

from benchmarks.bench_common import PAPER_HILL_CLIMB, emit, mean, run_once, seeds
from repro.experiments.multitenant import ROLES, run_multitenant_over_seeds
from repro.experiments.reporting import FigureReport


def test_fig16_multitenant_cpu(benchmark):
    def experiment():
        return run_multitenant_over_seeds(seeds(), PAPER_HILL_CLIMB)

    outcomes = run_once(benchmark, experiment)
    report = FigureReport(
        "Fig 16", "Multi-tenant CPU utilization", list(ROLES), unit="frac"
    )
    report.add_series(
        "Default",
        [mean([d.utilization.cpu[r] for d, _t in outcomes]) for r in ROLES],
    )
    report.add_series(
        "MRONLINE",
        [mean([t.utilization.cpu[r] for _d, t in outcomes]) for r in ROLES],
    )
    emit(report)

    default = dict(zip(ROLES, report.series["Default"]))
    # BBP's mappers are the one CPU-saturated role under defaults.
    assert default["BBP-m"] > 0.9
    assert default["Terasort-r"] < 0.3
    assert default["BBP-r"] < 0.3
