"""Figure 4: Terasort execution time, expedited test-runs use case.

Default YARN vs offline tuning guide vs MRONLINE (aggressive tuning,
then re-run with the recommended configuration).  Paper shape: MRONLINE
~23% faster than default and comparable to offline tuning.
"""

from benchmarks.bench_common import PAPER_HILL_CLIMB, emit, mean, run_once, seeds
from repro.experiments.expedited import run_expedited_over_seeds
from repro.experiments.reporting import FigureReport
from repro.workloads.suite import case_by_name


def test_fig4_terasort_expedited(benchmark):
    def experiment():
        return run_expedited_over_seeds(
            case_by_name("terasort"), seeds(), PAPER_HILL_CLIMB
        )

    results = run_once(benchmark, experiment)
    report = FigureReport(
        "Fig 4",
        "Terasort job execution time, expedited test runs",
        ["Terasort"],
    )
    report.add_series("Default", [mean([r.default_time for r in results])])
    report.add_series("Offline Tuning", [mean([r.offline_time for r in results])])
    report.add_series("MRONLINE", [mean([r.mronline_time for r in results])])
    report.notes.append(
        f"tuning run itself took {mean([r.tuning_run_time for r in results]):.0f} s "
        "(aggressive tuning trades one slower test run for the search)"
    )
    emit(report)

    default = report.series["Default"][0]
    mronline = report.series["MRONLINE"][0]
    offline = report.series["Offline Tuning"][0]
    # Paper: 23% improvement over default; offline comparable to MRONLINE.
    assert mronline < default * 0.95
    assert abs(mronline - offline) < 0.25 * default
