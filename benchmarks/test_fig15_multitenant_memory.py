"""Figure 15: multi-tenant memory utilization per role.

Paper shape: under the default configuration both applications sit
below 50% memory utilization; MRONLINE lifts map and reduce containers
above ~80%.
"""

from benchmarks.bench_common import PAPER_HILL_CLIMB, emit, mean, run_once, seeds
from repro.experiments.multitenant import ROLES, run_multitenant_over_seeds
from repro.experiments.reporting import FigureReport


def test_fig15_multitenant_memory(benchmark):
    def experiment():
        return run_multitenant_over_seeds(seeds(), PAPER_HILL_CLIMB)

    outcomes = run_once(benchmark, experiment)
    report = FigureReport(
        "Fig 15", "Multi-tenant memory utilization", list(ROLES), unit="frac"
    )
    report.add_series(
        "Default",
        [mean([d.utilization.memory[r] for d, _t in outcomes]) for r in ROLES],
    )
    report.add_series(
        "MRONLINE",
        [mean([t.utilization.memory[r] for _d, t in outcomes]) for r in ROLES],
    )
    emit(report)

    default = dict(zip(ROLES, report.series["Default"]))
    tuned = dict(zip(ROLES, report.series["MRONLINE"]))
    # Map containers: paper reports <50% default, >80% under MRONLINE
    # (our resident-set model is a little stingier; require a clear lift
    # past the 65% line).
    for role in ("Terasort-m", "BBP-m"):
        assert default[role] < 0.55
    assert tuned["Terasort-m"] > 0.65
    # BBP has only 100 maps -- four search waves -- so its container
    # sizing stays coarser than Terasort's (cf. the Section-8.4 job-size
    # effect); it must still clearly beat the default.
    assert tuned["BBP-m"] > default["BBP-m"] + 0.15
    # No role with a meaningful task population regresses.  (BBP has a
    # single reducer: one task cannot be tuned online, so its container
    # is whatever the first sampled configuration happened to be.)
    for role in ("Terasort-m", "Terasort-r", "BBP-m"):
        assert tuned[role] >= default[role] - 0.05
