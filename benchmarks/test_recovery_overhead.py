"""Nightly cost-of-crash-tolerance case for the tuning service.

Not a paper figure: the write-ahead journal and the control-plane
fault machinery both ride the service's hot completion path, so this
benchmark prices them.  One seeded stream runs four ways -- plain,
journaled, killed-and-resumed, and under a tuner-crash plan -- and the
wall times land in ``benchmarks/results/BENCH_recovery.json`` so
nightly runs expose the journal's overhead ratio and the degraded-mode
slowdown as trends, not anecdotes.

Assertions guard the recovery contract itself: the journaled digest
matches the plain one (arming the journal must not perturb the
stream), the resumed digest matches the uninterrupted one (the
byte-identical-resume guarantee), and the faulted stream still
completes every job on last-known-good configurations.
"""

import time

import pytest

from repro.faults import Fault, FaultPlan, plan_to_json
from repro.recovery import ServiceKilled, read_journal
from repro.service import ServiceConfig, default_tenants, run_service

from benchmarks.bench_common import record_bench, run_once

NUM_TENANTS = 2
JOBS_PER_TENANT = 6
SEED = 1
KILL_AFTER = 4

CRASH_PLAN = plan_to_json(
    FaultPlan(
        faults=(
            Fault(time=400.0, kind="tuner_crash", node_id=0, duration=120.0),
            Fault(time=900.0, kind="monitor_outage", node_id=0, duration=60.0),
        )
    )
)


def make_config(**overrides) -> ServiceConfig:
    base = dict(
        tenants=default_tenants(NUM_TENANTS, rate=1.0 / 300.0),
        jobs_per_tenant=JOBS_PER_TENANT,
        seed=SEED,
        capacity=2,
    )
    base.update(overrides)
    return ServiceConfig(**base)


def timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def test_recovery_overhead(benchmark, tmp_path):
    plain, plain_wall = timed(lambda: run_service(make_config()))
    assert plain.jobs_completed == NUM_TENANTS * JOBS_PER_TENANT

    # Journal armed, no kill: same stream, plus one fsynced record
    # group per completion.
    journal = str(tmp_path / "svc.journal")
    t0 = time.perf_counter()
    journaled = run_once(
        benchmark,
        lambda: run_service(make_config(journal_path=journal)),
    )
    journaled_wall = time.perf_counter() - t0
    assert journaled.digest() == plain.digest()
    state = read_journal(journal)
    assert len(state.jobs) == plain.jobs_completed

    # Kill mid-stream, then resume against the same journal: the
    # resumed report must be byte-identical to the uninterrupted one.
    killed_journal = str(tmp_path / "killed.journal")
    t0 = time.perf_counter()
    with pytest.raises(ServiceKilled):
        run_service(
            make_config(journal_path=killed_journal, kill_after_jobs=KILL_AFTER)
        )
    resumed = run_service(make_config(journal_path=killed_journal))
    resume_wall = time.perf_counter() - t0
    assert resumed.digest() == plain.digest()

    # Tuner crash + monitor outage mid-stream: degraded mode must
    # still complete every job.
    faulted, faulted_wall = timed(
        lambda: run_service(make_config(fault_plan=CRASH_PLAN))
    )
    assert faulted.jobs_completed == plain.jobs_completed

    record_bench(
        "recovery",
        journaled_wall,
        extra={
            "jobs_completed": plain.jobs_completed,
            "plain_wall_s": round(plain_wall, 6),
            "journal_overhead_ratio": round(
                journaled_wall / max(plain_wall, 1e-9), 3
            ),
            "journal_records": len(state.records),
            "kill_after_jobs": KILL_AFTER,
            "kill_and_resume_wall_s": round(resume_wall, 6),
            "resume_digest_matches": resumed.digest() == plain.digest(),
            "faulted_wall_s": round(faulted_wall, 6),
            "faulted_jobs_completed": faulted.jobs_completed,
        },
    )
