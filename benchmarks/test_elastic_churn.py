"""Elastic churn: jobs survive decommission, join, and spot preemption.

Not a paper figure -- MRONLINE's testbed was a fixed 32-node cluster --
but the protocol extends the evaluation style to elastic capacity:
fault-free baseline vs churn levels across the six workload profiles,
plus an in-process replay proving the grace-window migration path
actually fires (success without migrations would mean every preemption
hit an idle node and the run proved nothing).
"""

from benchmarks.bench_common import BASE_SEED, emit, run_once
from repro.experiments.elastic import run_elastic_experiment
from repro.experiments.reporting import FigureReport


def test_elastic_churn(benchmark):
    def experiment():
        return run_elastic_experiment(seed=BASE_SEED, levels=("low", "high"))

    report_data = run_once(benchmark, experiment)
    cases = sorted({row.case_name for row in report_data.rows})
    report = FigureReport(
        "Elastic churn", "Job slowdown under cluster churn", cases
    )
    for level in ("low", "high"):
        report.add_series(
            level,
            [
                next(
                    row.slowdown
                    for row in report_data.rows
                    if row.case_name == case and row.level == level
                )
                for case in cases
            ],
        )
    emit(report)

    for _, baseline in report_data.baselines:
        assert baseline.succeeded
    for row in report_data.rows:
        # Re-execution, speculation, and migration keep every arm alive.
        assert row.churned.succeeded, (
            f"{row.case_name} failed under {row.level} churn"
        )
        # Churn costs time but never an order of magnitude.
        assert row.slowdown < 2.0, (
            f"{row.case_name}/{row.level} slowed {row.slowdown:.2f}x"
        )
    high = [row for row in report_data.rows if row.level == "high"]
    assert any(row.churned.killed_attempts >= 1 for row in high), (
        "high churn never reclaimed a node with work running"
    )


def _replay_preempt_migration():
    """Drive a preemption into a busy wave and return (result, elastic).

    Deterministic by construction: both preempted nodes host reduces
    when the notice lands, so the AM must migrate within the grace
    window for the job to finish without crash-style re-execution.
    """
    from repro.experiments.harness import SimCluster
    from repro.experiments.parallel import RunRequest, resolve_case
    from repro.faults import Fault, FaultPlan
    from repro.workloads.suite import make_job_spec
    from repro.yarn.app_master import FaultToleranceSettings, SpeculationSettings

    request = RunRequest.build(
        "terasort", BASE_SEED, tuning="none", num_blocks=24, num_reducers=8
    )
    sc = SimCluster(
        seed=BASE_SEED,
        fault_tolerance=FaultToleranceSettings(speculation=SpeculationSettings()),
    )
    plan = FaultPlan(
        (
            Fault(time=6.0, kind="spot_preempt", node_id=3, duration=4.0),
            Fault(time=7.0, kind="spot_preempt", node_id=7, duration=4.0),
        )
    )
    sc.inject_faults(plan=plan)
    spec = make_job_spec(resolve_case(request), sc.hdfs)
    result = sc.run_job(spec)
    return result, sc.fault_injector.elastic


def test_preempt_migration_smoke(benchmark):
    """The bench-smoke churn case: nonzero migrations, job success."""
    result, elastic = run_once(benchmark, _replay_preempt_migration)
    assert result.succeeded, "job failed under spot preemption"
    assert elastic.migrations > 0, (
        "preemptions landed but the grace-window migration never fired"
    )
    assert [node_id for node_id, kind in elastic.departed] == [3, 7]
    assert all(kind == "spot_preempt" for _, kind in elastic.departed)
