"""Ablation X4: simulation-based what-if tuning of category-1 params.

The paper's future work (Sections 2.2, 10): the number of reducers and
slowstart cannot be tuned online; a simulation tool must sweep them.
This bench runs the advisor's grid on a 20 GB Terasort and checks the
textbook shape: a single reducer strangles the job, reducer counts near
the cluster's wave capacity win, and over-provisioning reducers brings
no further gain.
"""

from benchmarks.bench_common import BASE_SEED, emit, run_once
from repro.core.whatif import CategoryOneAdvisor, CategoryOneCandidate
from repro.experiments.reporting import FigureReport
from repro.workloads.datasets import teragen_dataset
from repro.workloads.terasort import terasort_profile

REDUCER_GRID = [1, 10, 40, 80, 160]


def test_ablation_whatif_category1(benchmark):
    dataset = teragen_dataset(20.0)

    def experiment():
        advisor = CategoryOneAdvisor(seed=BASE_SEED)
        candidates = [CategoryOneCandidate(r, 0.05) for r in REDUCER_GRID]
        return advisor.advise(terasort_profile(), dataset, candidates=candidates)

    advice = run_once(benchmark, experiment)
    report = FigureReport(
        "Ablation X4",
        "What-if: Terasort 20GB duration vs reducer count",
        [f"{r} red" for r in REDUCER_GRID],
    )
    durations = {
        e.candidate.num_reducers: e.predicted_duration for e in advice.evaluations
    }
    report.add_series("Predicted", [durations[r] for r in REDUCER_GRID])
    report.notes.append(
        f"advisor recommends {advice.best.num_reducers} reducers "
        f"(slowstart {advice.best.slowstart})"
    )
    emit(report)

    best = advice.predicted_duration
    assert durations[1] > best * 1.3  # one reducer is a bottleneck
    assert advice.best.num_reducers > 1
