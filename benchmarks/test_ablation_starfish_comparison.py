"""Ablation X5: MRONLINE vs a Starfish-style cost-based optimizer.

Section 9's contrast: Starfish [15] predicts configuration quality with
an analytic what-if engine, whose accuracy bounds the outcome; MRONLINE
measures real (simulated) executions.  Both get one profiling/tuning
run on a 60 GB Terasort; the recommendations are then validated on the
simulator.
"""

import numpy as np

from benchmarks.bench_common import PAPER_HILL_CLIMB, emit, mean, run_once, seeds
from repro.baselines.starfish import starfish_tune
from repro.experiments.expedited import (
    run_aggressive_tuning,
    run_default,
    run_with_config,
)
from repro.experiments.reporting import FigureReport
from repro.workloads.suite import terasort_case


def test_ablation_starfish_comparison(benchmark):
    case = terasort_case(60.0)

    def experiment():
        rows = {"Default": [], "Starfish-style": [], "MRONLINE": []}
        for seed in seeds():
            profiling = run_default(case, seed)
            rows["Default"].append(profiling.duration)
            rec = starfish_tune(profiling, np.random.default_rng(seed))
            rows["Starfish-style"].append(
                run_with_config(case, seed, rec.config).duration
            )
            _t, cfg = run_aggressive_tuning(case, seed, PAPER_HILL_CLIMB)
            rows["MRONLINE"].append(run_with_config(case, seed, cfg).duration)
        return rows

    rows = run_once(benchmark, experiment)
    report = FigureReport(
        "Ablation X5",
        "Validated job time: measurement-based vs cost-model-based tuning",
        ["Terasort 60GB"],
    )
    for label, values in rows.items():
        report.add_series(label, [mean(values)])
    emit(report)

    default = report.series["Default"][0]
    starfish = report.series["Starfish-style"][0]
    mronline = report.series["MRONLINE"][0]
    # Both tuners beat the default; MRONLINE is at least competitive
    # with the model-based recommendation it needs no model for.
    assert starfish < default * 1.02
    assert mronline < default
    assert mronline < starfish * 1.10
