"""Sim-kernel speed microbenchmarks with a CI regression gate.

Three measurements, each reported as events/sec and persisted to
``benchmarks/results/BENCH_*.json`` via :func:`bench_common.record_bench`:

* **flow churn** -- concurrent capped/uncapped multi-link transfers
  with monitor-style utilization polling, the pattern every disk, CPU,
  and network scheduler in the cluster layers exercises;
* **semaphore contention** -- thousands of processes funnelling through
  a small-permit semaphore (container-slot style);
* **end-to-end TeraSort** -- a full shrunk cluster run through the
  experiment harness.

The churn and semaphore benchmarks run both the optimized kernel and a
verbatim replica of the *pre-optimization* ("legacy") kernel kept in
this file, and gate on the speedup ratio -- a relative measure that is
robust to slow CI machines.  If the gate fails, a kernel change
regressed the hot paths; see ``docs/performance.md``.

Determinism guard: both kernels must execute the *same number of
events* on the same workload -- a cheap cross-check that the optimized
kernel changed no behaviour (the byte-level check lives in
``tests/sim/test_kernel_equivalence.py``).
"""

import random
import time
from typing import Dict, List, Optional, Sequence

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Event
from repro.sim.resources import _EPS, Flow, FlowScheduler, Link, Semaphore

from benchmarks.bench_common import record_bench

#: Required optimized/legacy events-per-second ratio on flow churn.
FLOW_CHURN_MIN_SPEEDUP = 1.5

#: The semaphore path's win (deque vs list.pop(0)) is algorithmic --
#: O(1) vs O(queue) per grant -- so it only dominates once the waiter
#: queue is deep; the workload below queues ~60k waiters, where the
#: legacy kernel measures ~1.6x slower.  Gate with margin.
SEMAPHORE_MIN_SPEEDUP = 1.3

BEST_OF = 3


# ----------------------------------------------------------------------
# Verbatim replica of the pre-optimization kernel hot paths (the
# "pre-PR kernel" baseline the gate compares against).
# ----------------------------------------------------------------------
def _legacy_maxmin_rates(flows: Sequence[Flow]) -> Dict[Flow, float]:
    rates: Dict[Flow, float] = {}
    if not flows:
        return rates
    active: List[Flow] = list(flows)
    cap_left: Dict[Link, float] = {}
    counts: Dict[Link, int] = {}
    for f in active:
        for link in f.links:
            cap_left.setdefault(link, link.capacity)
            counts[link] = counts.get(link, 0) + 1

    while active:
        water = float("inf")
        for link, n in counts.items():
            if n > 0:
                share = cap_left[link] / n
                if share < water:
                    water = share
        if water == float("inf"):
            for f in active:
                rates[f] = f.cap
            break
        capped = [f for f in active if f.cap <= water + _EPS]
        if capped:
            frozen = capped
            frozen_rates = {f: min(f.cap, water) for f in frozen}
        else:
            bottlenecks = {
                link
                for link, n in counts.items()
                if n > 0 and cap_left[link] / n <= water + _EPS
            }
            frozen = [f for f in active if any(lnk in bottlenecks for lnk in f.links)]
            frozen_rates = {f: water for f in frozen}
        for f in frozen:
            r = frozen_rates[f]
            rates[f] = r
            for link in f.links:
                cap_left[link] = max(0.0, cap_left[link] - r)
                counts[link] -= 1
        active = [f for f in active if f not in rates]
    return rates


class LegacyFlowScheduler:
    """The pre-optimization scheduler: full recomputes, dict rates,
    ``list.remove`` removals, no epoch cache."""

    def __init__(self, sim: Simulator, name: str = "flows") -> None:
        self.sim = sim
        self.name = name
        self._flows: List[Flow] = []
        self._last_update = 0.0
        self._token = 0
        self.completed_work = 0.0
        self.completed_flows = 0

    def transfer(self, links, amount, cap=None, label=""):
        if amount < 0:
            raise SimulationError(f"negative transfer amount {amount}")
        done = self.sim.event()
        if amount <= _EPS:
            done.succeed(0.0)
            return done
        flow = Flow(links, amount, done, cap=cap, label=label)
        flow.started_at = self.sim.now
        self._advance()
        self._flows.append(flow)
        self._reschedule()
        return done

    def utilization(self, link):
        rates = _legacy_maxmin_rates(self._flows)
        for f in self._flows:
            f.rate = rates.get(f, 0.0)
        used = sum(f.rate for f in self._flows if link in f.links)
        return min(1.0, used / link.capacity)

    def _advance(self):
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0:
            for f in self._flows:
                f.remaining = max(0.0, f.remaining - f.rate * dt)
        self._last_update = now

    def _reschedule(self):
        self._token += 1
        token = self._token
        rates = _legacy_maxmin_rates(self._flows)
        soonest = None
        soonest_t = float("inf")
        for f in self._flows:
            f.rate = rates.get(f, 0.0)
            if f.rate > _EPS:
                t = f.remaining / f.rate
                if t < soonest_t:
                    soonest_t = t
                    soonest = f
        if soonest is None:
            if self._flows:
                raise SimulationError("no flow can make progress")
            return
        self.sim.call_at(self.sim.now + soonest_t, lambda: self._on_completion(token))

    def _on_completion(self, token):
        if token != self._token:
            return
        self._advance()
        finished = [f for f in self._flows if f.remaining <= _EPS * max(1.0, f.total)]
        if not finished:
            finished = [min(self._flows, key=lambda f: f.remaining)]
        for f in finished:
            self._flows.remove(f)
            self.completed_work += f.total
            self.completed_flows += 1
            f.event.succeed(self.sim.now - f.started_at)
        self._reschedule()


class LegacySemaphore:
    """The pre-optimization semaphore: ``list.pop(0)`` FIFO."""

    def __init__(self, sim: Simulator, capacity: int) -> None:
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: List[tuple] = []

    def acquire(self, count: int = 1) -> Event:
        ev = self.sim.event()
        self._waiters.append((count, ev))
        self._drain()
        return ev

    def release(self, count: int = 1) -> None:
        self.in_use -= count
        self._drain()

    def _drain(self) -> None:
        while self._waiters:
            count, ev = self._waiters[0]
            if self.in_use + count > self.capacity:
                break
            self._waiters.pop(0)
            self.in_use += count
            ev.succeed(count)


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def _run_flow_churn(scheduler_cls, n_transfers=4000, concurrency=48, n_links=6):
    """Concurrent multi-link transfers plus monitor-style polling.

    Returns ``(events_executed, wall_seconds)``.  The RNG drives only
    workload *generation* and is identically seeded for both kernels,
    so the two runs simulate the same event stream.
    """
    sim = Simulator()
    sched = scheduler_cls(sim)
    links = [Link(f"l{i}", 100.0) for i in range(n_links)]
    rng = random.Random(1234)

    def worker(wid):
        for k in range(n_transfers // concurrency):
            picks = rng.sample(links, rng.randint(1, 3))
            amount = 50.0 + 150.0 * rng.random()
            cap = None if rng.random() < 0.5 else 20.0 + 40.0 * rng.random()
            yield sched.transfer(picks, amount, cap=cap, label=f"w{wid}.{k}")

    def monitor():
        while True:
            yield sim.timeout(0.25)
            for link in links:
                sched.utilization(link)

    for w in range(concurrency):
        sim.process(worker(w))
    sim.process(monitor())
    start = time.perf_counter()
    sim.run(until=10_000.0)
    return sim.events_executed, time.perf_counter() - start


def _run_semaphore_contention(semaphore_cls, n_workers=60_000, permits=8):
    sim = Simulator()
    sem = semaphore_cls(sim, permits)

    def worker():
        yield sem.acquire()
        yield sim.timeout(1.0)
        sem.release()

    for _ in range(n_workers):
        sim.process(worker())
    start = time.perf_counter()
    sim.run()
    return sim.events_executed, time.perf_counter() - start


def _best_events_per_sec(run, *args):
    """Best-of-N events/sec (and the event count, asserted stable)."""
    best = 0.0
    events: Optional[int] = None
    for _ in range(BEST_OF):
        n, wall = run(*args)
        if events is None:
            events = n
        else:
            assert n == events, "benchmark workload is nondeterministic"
        best = max(best, n / wall)
    return events, best


# ----------------------------------------------------------------------
# Gated benchmarks
# ----------------------------------------------------------------------
def test_flow_churn_speedup_gate():
    events_new, new_eps = _best_events_per_sec(_run_flow_churn, FlowScheduler)
    events_old, old_eps = _best_events_per_sec(_run_flow_churn, LegacyFlowScheduler)
    assert events_new == events_old, (
        "optimized kernel executed a different number of events than the "
        f"legacy kernel on the same workload: {events_new} != {events_old}"
    )
    speedup = new_eps / old_eps
    record_bench(
        "sim_kernel_flow_churn",
        wall_time_s=events_new / new_eps,
        events_executed=events_new,
        extra={
            "events_per_sec_legacy": round(old_eps, 1),
            "speedup_vs_legacy": round(speedup, 2),
        },
    )
    assert speedup >= FLOW_CHURN_MIN_SPEEDUP, (
        f"flow-churn speedup {speedup:.2f}x fell below the "
        f"{FLOW_CHURN_MIN_SPEEDUP}x regression gate "
        f"({new_eps:,.0f} vs {old_eps:,.0f} events/s)"
    )


def test_semaphore_contention_speedup_gate():
    events_new, new_eps = _best_events_per_sec(_run_semaphore_contention, Semaphore)
    events_old, old_eps = _best_events_per_sec(_run_semaphore_contention, LegacySemaphore)
    assert events_new == events_old
    speedup = new_eps / old_eps
    record_bench(
        "sim_kernel_semaphore",
        wall_time_s=events_new / new_eps,
        events_executed=events_new,
        extra={
            "events_per_sec_legacy": round(old_eps, 1),
            "speedup_vs_legacy": round(speedup, 2),
        },
    )
    assert speedup >= SEMAPHORE_MIN_SPEEDUP, (
        f"semaphore speedup {speedup:.2f}x fell below the "
        f"{SEMAPHORE_MIN_SPEEDUP}x regression gate"
    )


def test_terasort_end_to_end_events_per_sec():
    """A full (shrunk) TeraSort through the harness, events/sec recorded.

    The digest of this exact run is pinned by
    ``tests/sim/test_kernel_equivalence.py``; here we only track the
    throughput trajectory.
    """
    from repro.experiments.harness import SimCluster
    from repro.workloads.suite import make_job_spec, terasort_case

    sc = SimCluster(seed=1)
    case = terasort_case(4.0)
    spec = make_job_spec(case, sc.hdfs)
    start = time.perf_counter()
    result = sc.run_job(spec)
    wall = time.perf_counter() - start
    assert result.succeeded
    events = sc.sim.events_executed
    record_bench(
        "sim_kernel_terasort_e2e",
        wall_time_s=wall,
        events_executed=events,
        extra={"sim_job_time_s": round(result.duration, 3)},
    )
    # Sanity floor only -- absolute throughput is machine-dependent.
    assert events / wall > 1_000
