"""Telemetry overhead guard: a disabled bus must be (near) free.

The bus promises zero-overhead-when-disabled: with no subscriber for a
category, emission sites reduce to an attribute load and a ``wants``
check, and the engine's hot loop to one flag read.  This smoke case
prices that promise on the simulator's event loop -- the tightest loop
in the codebase -- and fails if an attached-but-unsubscribed bus costs
more than 5% of the bare-engine events/sec baseline.

Timing uses best-of-N minima (the standard way to strip scheduler noise
from microbenchmarks); the deterministic workload makes the two arms
execute byte-identical simulations.
"""

import time

from repro.sim import Simulator
from repro.telemetry import TelemetryBus

#: Calendar events per timed arm.
EVENTS = 30_000
#: Best-of rounds per arm (minima damp CI scheduler noise).
ROUNDS = 5
#: Allowed slowdown of the disabled-bus arm vs the bare baseline.
MAX_OVERHEAD = 0.05


def drive(attach_bus: bool) -> float:
    """One simulation of EVENTS chained timeouts; returns seconds."""
    sim = Simulator()
    if attach_bus:
        sim.attach_telemetry(TelemetryBus(clock=lambda: sim.now))

    def chain():
        for _ in range(EVENTS):
            yield sim.timeout(1.0)

    sim.process(chain())
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert sim.events_executed >= EVENTS
    return elapsed


def best_of(attach_bus: bool) -> float:
    return min(drive(attach_bus) for _ in range(ROUNDS))


def test_disabled_bus_within_five_percent(benchmark):
    # Interleave a warmup of both arms so allocator/JIT-warm effects
    # (bytecode caches, freelists) do not bias whichever runs first.
    drive(False)
    drive(True)
    baseline = best_of(False)
    with_bus = benchmark.pedantic(lambda: best_of(True), rounds=1, iterations=1)
    base_rate = EVENTS / baseline
    bus_rate = EVENTS / with_bus
    overhead = (baseline and (with_bus - baseline) / baseline) or 0.0
    print(
        f"\nbare engine : {base_rate:,.0f} events/s"
        f"\nidle bus    : {bus_rate:,.0f} events/s"
        f"\noverhead    : {100 * overhead:+.2f}%"
    )
    assert with_bus <= baseline * (1.0 + MAX_OVERHEAD), (
        f"disabled-bus run is {100 * overhead:.1f}% slower than baseline "
        f"(budget: {100 * MAX_OVERHEAD:.0f}%)"
    )
