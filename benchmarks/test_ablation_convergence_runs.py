"""Ablation X1: test runs to converge -- MRONLINE vs a Gunther-style GA.

Section 7's overhead claim: MRONLINE finishes its search within a
single test run, where offline search tuners like Gunther [25] spend
20-40 full test runs (one configuration per run).  We reproduce the
comparison on a 20 GB Terasort: the GA's best-so-far trajectory vs the
quality MRONLINE reaches after its one (slower) tuning run.
"""

import numpy as np

from benchmarks.bench_common import BASE_SEED, PAPER_HILL_CLIMB, emit, run_once
from repro.baselines.gunther import GeneticTuner, GuntherSettings
from repro.experiments.expedited import run_aggressive_tuning, run_with_config
from repro.experiments.reporting import FigureReport
from repro.workloads.suite import terasort_case


def test_ablation_convergence_runs(benchmark):
    case = terasort_case(20.0)

    def experiment():
        # MRONLINE: one aggressive tuning run, then one measured run.
        _tuning, config = run_aggressive_tuning(case, BASE_SEED, PAPER_HILL_CLIMB)
        mronline_time = run_with_config(case, BASE_SEED, config).duration

        # Gunther: every fitness evaluation is a full test run.  A run
        # whose configuration kills tasks (OOM) must not look "fast"
        # just because the job aborts early.
        def evaluate(cfg):
            result = run_with_config(case, BASE_SEED, cfg)
            if not result.succeeded:
                return result.duration + 10_000.0
            return result.duration

        ga = GeneticTuner(
            evaluate,
            np.random.default_rng(BASE_SEED),
            GuntherSettings(population=8, generations=4),
        )
        ga.run()
        return mronline_time, ga

    mronline_time, ga = run_once(benchmark, experiment)
    checkpoints = [4, 8, 16, 24, 32]
    report = FigureReport(
        "Ablation X1",
        "Best job time vs number of test runs consumed",
        [f"{k} runs" for k in checkpoints],
    )
    report.add_series("Gunther (GA)", [ga.best_after_runs(k) for k in checkpoints])
    report.add_series("MRONLINE", [mronline_time] * len(checkpoints))
    report.notes.append(
        "MRONLINE consumed 1 test run (its tuning run); Gunther consumes "
        f"{ga.settings.total_runs} runs for its full search (paper: 20-40)."
    )
    emit(report)

    # Shape: the GA needs many runs to reach MRONLINE's single-run quality.
    assert ga.best_after_runs(4) > mronline_time * 0.95
    assert ga.best_after_runs(32) < ga.best_after_runs(4) * 1.001
