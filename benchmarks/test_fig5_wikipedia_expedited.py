"""Figure 5: Wikipedia applications, expedited test-runs use case.

Bigram / inverted index / word count / text search on the Wikipedia
data set: default vs offline guide vs MRONLINE.  Paper shape: MRONLINE
improves over default by 25/11/14/19% respectively and tracks offline
tuning closely.
"""

from benchmarks.bench_common import PAPER_HILL_CLIMB, emit, mean, run_once, seeds
from repro.experiments.expedited import run_expedited_over_seeds
from repro.experiments.reporting import FigureReport
from repro.workloads.suite import case_by_name

APPS = [
    ("bigram-wikipedia", "Bigram"),
    ("inverted-index-wikipedia", "InvertedIndex"),
    ("wordcount-wikipedia", "WC"),
    ("text-search-wikipedia", "TextSearch"),
]


def test_fig5_wikipedia_expedited(benchmark):
    def experiment():
        return {
            name: run_expedited_over_seeds(case_by_name(name), seeds(), PAPER_HILL_CLIMB)
            for name, _label in APPS
        }

    results = run_once(benchmark, experiment)
    report = FigureReport(
        "Fig 5",
        "Wikipedia apps execution time, expedited test runs",
        [label for _n, label in APPS],
    )
    for series, attr in (
        ("Default", "default_time"),
        ("Offline Tuning", "offline_time"),
        ("MRONLINE", "mronline_time"),
    ):
        report.add_series(
            series,
            [mean([getattr(r, attr) for r in results[name]]) for name, _l in APPS],
        )
    emit(report)

    improvements = report.improvement_over("Default", "MRONLINE")
    # Paper band: 11-25% improvement across the four apps.
    assert all(imp > 0.0 for imp in improvements)
    assert max(improvements) > 0.10
