"""Ablation X3: LHS vs plain uniform random sampling.

Smart hill climbing's property 3 (Section 5): weighted LHS improves
sampling quality and convergence speed.  We measure the best objective
value reached per sample budget on a deterministic surrogate of the
configuration-cost landscape, over many seeds -- isolating the sampler
from simulator noise.
"""

import numpy as np

from benchmarks.bench_common import emit, run_once
from repro.core import parameters as P
from repro.core.hill_climbing import GrayBoxHillClimber, HillClimbSettings
from repro.core.parameters import PARAMETER_SPACE
from repro.experiments.reporting import FigureReport

SUBSPACE = PARAMETER_SPACE.subspace(
    [P.IO_SORT_MB, P.SORT_SPILL_PERCENT, P.SHUFFLE_INPUT_BUFFER_PERCENT, P.MAP_CPU_VCORES]
)

#: A bowl with a ridge: good configs need *every* dimension right.
TARGET = np.array([0.62, 0.95, 0.8, 0.1])


def objective(point: np.ndarray) -> float:
    err = np.abs(point - TARGET)
    return float(err.sum() + 3.0 * err.max())


def best_after(use_lhs: bool, seed: int, budget: int) -> float:
    climber = GrayBoxHillClimber(
        SUBSPACE,
        np.random.default_rng(seed),
        HillClimbSettings(use_lhs=use_lhs),
    )
    evaluated = 0
    best = float("inf")
    while evaluated < budget and not climber.finished:
        for sample in climber.propose():
            cost = objective(sample.point)
            best = min(best, cost)
            climber.observe(sample.sample_id, cost)
            evaluated += 1
            if evaluated >= budget:
                break
    return best


def test_ablation_lhs_vs_random(benchmark):
    budgets = [24, 64, 128]
    n_seeds = 40

    def experiment():
        rows = {}
        for label, use_lhs in (("Uniform random", False), ("Weighted LHS", True)):
            rows[label] = [
                float(
                    np.mean([best_after(use_lhs, s, budget) for s in range(n_seeds)])
                )
                for budget in budgets
            ]
        return rows

    rows = run_once(benchmark, experiment)
    report = FigureReport(
        "Ablation X3",
        "Mean best objective vs sample budget (lower is better)",
        [f"{b} samples" for b in budgets],
        unit="cost",
    )
    for label, values in rows.items():
        report.add_series(label, values)
    emit(report)

    for i, _budget in enumerate(budgets):
        assert rows["Weighted LHS"][i] <= rows["Uniform random"][i] * 1.02
    # Once the local phase kicks in, stratification must clearly win.
    assert rows["Weighted LHS"][-1] < rows["Uniform random"][-1] * 0.95
