"""Figure 14: multi-tenant execution time (Terasort + BBP, fair share).

Paper shape: MRONLINE reduces both jobs' execution times when they
co-run under the fair scheduler (13% Terasort, 28% BBP on the paper's
testbed), and Terasort's map spill records drop roughly 3x.
"""

from benchmarks.bench_common import PAPER_HILL_CLIMB, emit, mean, run_once, seeds
from repro.experiments.multitenant import run_multitenant_over_seeds
from repro.experiments.reporting import FigureReport


def test_fig14_multitenant_exec(benchmark):
    def experiment():
        return run_multitenant_over_seeds(seeds(), PAPER_HILL_CLIMB)

    outcomes = run_once(benchmark, experiment)
    report = FigureReport(
        "Fig 14", "Multi-tenant job execution time", ["Terasort", "BBP"]
    )
    report.add_series(
        "Default",
        [
            mean([d.terasort_time for d, _t in outcomes]),
            mean([d.bbp_time for d, _t in outcomes]),
        ],
    )
    report.add_series(
        "MRONLINE",
        [
            mean([t.terasort_time for _d, t in outcomes]),
            mean([t.bbp_time for _d, t in outcomes]),
        ],
    )
    spills_default = mean([d.terasort_map_spills for d, _t in outcomes]) / 1e9
    spills_tuned = mean([t.terasort_map_spills for _d, t in outcomes]) / 1e9
    report.notes.append(
        f"Terasort map spill records: {spills_default:.2f}e9 -> {spills_tuned:.2f}e9 "
        "(paper: 1.8e9 -> 0.6e9)"
    )
    emit(report)

    improvements = report.improvement_over("Default", "MRONLINE")
    assert all(imp > 0.05 for imp in improvements)
    assert spills_tuned < spills_default
