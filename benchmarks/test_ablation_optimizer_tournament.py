"""Ablation X6: the optimizer tournament -- is smart hill climbing worth it?

Section 5 argues for gray-box smart hill climbing qualitatively (LHS
coverage, noise-tolerant incumbent re-evaluation, shrinking local
neighborhoods).  This benchmark makes the argument quantitative: every
registered search backend (:data:`repro.core.optimizers.
OPTIMIZER_BACKENDS`) runs the same small-budget aggressive tuning
session on the same three workload profiles and seeds, scored on best
Equation-1 cost, tuned job time, and samples-to-target (convergence
speed).

Two gates ride on the results:

* every backend must finish every lane with a successful job and a
  scored best cost (no backend crashes behind the protocol);
* the hill climber's seed-1 best costs are pinned exactly -- the
  search trajectory is deterministic, so any drift means the refactored
  climber no longer reproduces Algorithm 1 (the CI ``tuner-tournament``
  job runs this same check on one seed).

Per-backend ``BENCH_optimizer_tournament_<backend>.json`` artifacts
persist the scores (schema v2 adds ``samples_to_target``) so
successive PRs leave a comparable optimizer-quality trajectory.
"""

import time

from benchmarks.bench_common import (
    BASE_SEED,
    emit,
    mean,
    record_bench,
    run_once,
    seeds,
)
from repro.core.optimizers import OPTIMIZER_BACKENDS
from repro.experiments.reporting import FigureReport
from repro.experiments.tournament import run_tournament

#: The raced workloads: one per profile family (map-heavy terasort,
#: shuffle-heavy wikipedia, compute-heavy freebase), sized so every
#: backend's waves fill from real tasks (48 maps / 16 reducers covers
#: the largest small-budget wave with room for several rounds).
TOURNAMENT_CASES = (
    ("terasort", 48, 16),
    ("wordcount-wikipedia", 48, 16),
    ("bigram-freebase", 48, 16),
)

#: Pinned seed-1 best costs of the hill-climber backend, exact to the
#: last bit: the search is deterministic, so equality is the contract.
#: Re-pin ONLY for a change that intentionally alters the Algorithm-1
#: trajectory (and say so in the commit).
PINNED_HILL_CLIMB_BEST_COST = {
    "terasort": 4.718322164504105,
    "wordcount-wikipedia": 3.719735584804292,
    "bigram-freebase": 3.326305795891373,
}


def _backend_rows(report, backend):
    return [r for r in report.rows if r.backend == backend]


def test_optimizer_tournament(benchmark):
    start = time.perf_counter()
    report = run_once(
        benchmark,
        lambda: run_tournament(TOURNAMENT_CASES, seeds(), budget="small"),
    )
    wall = time.perf_counter() - start

    case_names = [name for name, _b, _r in TOURNAMENT_CASES]
    expected = len(OPTIMIZER_BACKENDS) * len(case_names) * len(seeds())
    assert len(report.rows) == expected

    # Gate 1: no backend crashes, every lane scores.
    for row in report.rows:
        assert row.succeeded, f"{row.backend} failed on {row.case_name} seed {row.seed}"
        assert row.best_cost is not None, (
            f"{row.backend} finished without a scored best cost on "
            f"{row.case_name} seed {row.seed}"
        )
        assert row.samples_proposed > 0

    # Gate 2: the refactored hill climber still walks Algorithm 1's
    # exact trajectory (pinned per-case seed-1 best costs).
    if BASE_SEED == 1:
        for row in _backend_rows(report, "hill_climb"):
            if row.seed != 1:
                continue
            pinned = PINNED_HILL_CLIMB_BEST_COST[row.case_name]
            assert row.best_cost == pinned, (
                f"hill climber best cost drifted on {row.case_name}: "
                f"{row.best_cost!r} != pinned {pinned!r}"
            )

    fig = FigureReport(
        "Ablation X6",
        "Optimizer tournament: mean best cost per backend (lower is better)",
        case_names,
        unit="cost",
    )
    for backend in OPTIMIZER_BACKENDS:
        rows = _backend_rows(report, backend)
        fig.add_series(
            backend,
            [
                mean([r.best_cost for r in rows if r.case_name == case])
                for case in case_names
            ],
        )
    emit(fig)

    for backend in OPTIMIZER_BACKENDS:
        rows = _backend_rows(report, backend)
        reached = [r.samples_to_target for r in rows if r.samples_to_target is not None]
        record_bench(
            f"optimizer_tournament_{backend}",
            wall_time_s=wall,
            samples_to_target=round(mean(reached)) if reached else None,
            extra={
                "budget": report.budget,
                "seeds": seeds(),
                "lanes": len(rows),
                "lanes_reaching_target": len(reached),
                "mean_best_cost": {
                    case: round(
                        mean([r.best_cost for r in rows if r.case_name == case]), 6
                    )
                    for case in case_names
                },
                "mean_tuned_job_time_s": round(
                    mean([r.tuned_job_time for r in rows]), 3
                ),
                "mean_samples_proposed": round(
                    mean([r.samples_proposed for r in rows]), 1
                ),
                "wall_scope": "full_tournament_grid",
            },
        )

    # Shape: the paper's choice must not lose the tournament it hosts --
    # the hill climber's mean best cost leads every baseline backend.
    hill = mean([r.best_cost for r in _backend_rows(report, "hill_climb")])
    for backend in OPTIMIZER_BACKENDS:
        if backend == "hill_climb":
            continue
        other = mean([r.best_cost for r in _backend_rows(report, backend)])
        assert hill <= other * 1.02, (
            f"hill climber (mean cost {hill:.3f}) lost to {backend} ({other:.3f})"
        )
