"""Nightly steady-state case for the multi-tenant tuning service.

Not a paper figure: the acceptance-scale service trace (3 tenants,
210 Poisson/diurnal arrivals, warm-started tuning) timed end to end.
The simulated-time service metrics (jobs/sec, p95 latency, SLO
attainment) land in ``benchmarks/results/BENCH_service.json`` next to
the measured wall time, so nightly runs expose both simulator-cost
trends and service-quality trends in one record.

Assertions only guard sanity plus the pinned report digest (the same
pin as ``tests/service/test_service.py``): if the digest moves here but
not there, the bench and test environments diverged.
"""

import time

from repro.backends.sim import SimBackend
from repro.service import ServiceConfig, default_tenants, run_service

from benchmarks.bench_common import record_bench, run_once

from tests.service.test_service import SERVICE_DIGEST_3X70_SEED1

NUM_TENANTS = 3
JOBS_PER_TENANT = 70
SEED = 1


def test_service_steadystate(benchmark):
    backend = SimBackend(seed=SEED, scheduler="fair")
    config = ServiceConfig(
        tenants=default_tenants(NUM_TENANTS),
        jobs_per_tenant=JOBS_PER_TENANT,
        seed=SEED,
    )

    t0 = time.perf_counter()
    report = run_once(benchmark, lambda: run_service(config, backend=backend))
    wall = time.perf_counter() - t0

    assert report.jobs_completed == NUM_TENANTS * JOBS_PER_TENANT
    assert report.digest() == SERVICE_DIGEST_3X70_SEED1
    assert report.throughput_jobs_per_sec > 0

    record_bench(
        "service",
        wall,
        events_executed=backend.cluster.sim.events_executed,
        extra={
            "jobs_completed": report.jobs_completed,
            "jobs_per_sec": round(report.throughput_jobs_per_sec, 6),
            "p50_latency_s": round(report.p50_latency, 3),
            "p95_latency_s": round(report.p95_latency, 3),
            "slo_attainment": round(report.slo_attainment, 4),
            "preemptions": report.preemptions,
            "warm_sessions": report.warm_sessions,
            "cold_sessions": report.cold_sessions,
        },
    )
