"""Figure 9: Freebase applications' map spill records, expedited case."""

from benchmarks.bench_common import PAPER_HILL_CLIMB, emit, mean, run_once, seeds
from repro.experiments.expedited import run_expedited_over_seeds
from repro.experiments.reporting import FigureReport
from repro.workloads.suite import case_by_name

APPS = [
    ("bigram-freebase", "Bigram"),
    ("inverted-index-freebase", "InvertedIndex"),
    ("wordcount-freebase", "WC"),
    ("text-search-freebase", "TextSearch"),
]


def test_fig9_freebase_spills(benchmark):
    def experiment():
        return {
            name: run_expedited_over_seeds(case_by_name(name), seeds(), PAPER_HILL_CLIMB)
            for name, _label in APPS
        }

    results = run_once(benchmark, experiment)
    report = FigureReport(
        "Fig 9",
        "Freebase apps map spill records (1e9)",
        [label for _n, label in APPS],
        unit="1e9 records",
    )
    for series, attr in (
        ("Optimal", "optimal_spills"),
        ("Default", "default_spills"),
        ("Offline Tuning", "offline_spills"),
        ("MRONLINE", "mronline_spills"),
    ):
        report.add_series(
            series,
            [
                mean([getattr(r, attr) for r in results[name]]) / 1e9
                for name, _l in APPS
            ],
        )
    emit(report)

    for idx in range(len(APPS)):
        assert report.series["MRONLINE"][idx] <= report.series["Default"][idx] * 1.01
        assert report.series["MRONLINE"][idx] <= report.series["Optimal"][idx] * 1.15
