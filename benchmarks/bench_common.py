"""Shared infrastructure for the per-figure benchmarks.

Every benchmark regenerates one table or figure of the paper's
evaluation: it runs the corresponding experiment protocol over seed
replicas, prints the same rows/series the paper plots (via
:class:`FigureReport`), and persists the rendered report under
``benchmarks/results/`` for EXPERIMENTS.md.

Environment knobs:

* ``REPRO_REPLICAS`` -- seed replicas per measurement (default 2; the
  paper averages 4 runs -- raise it when wall time permits).
* ``REPRO_BASE_SEED`` -- first replica seed (default 1).
* ``REPRO_WORKERS`` -- worker processes for seed fan-out (default: the
  CPU count; ``1`` forces the exact legacy in-process serial path).
  Replicas are independently seeded, so parallel results are
  bit-identical to serial ones.

We do not expect absolute seconds to match the authors' testbed; the
assertions in these benchmarks check the *shape*: who wins, by roughly
what factor, and where crossovers fall.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
from typing import Callable, List, Optional, Sequence

from repro.core.hill_climbing import HillClimbSettings
from repro.experiments.reporting import FigureReport

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Seed replicas per measurement ("we repeat each experiment four
#: times"; default 2 keeps the full bench suite's wall time modest).
REPLICAS = int(os.environ.get("REPRO_REPLICAS", "2"))
BASE_SEED = int(os.environ.get("REPRO_BASE_SEED", "1"))

#: The paper's Algorithm-1 constants (Section 5).
PAPER_HILL_CLIMB = HillClimbSettings()


def seeds() -> List[int]:
    return [BASE_SEED + i for i in range(REPLICAS)]


def mean(values: Sequence[float]) -> float:
    return statistics.fmean(values)


def map_over_seeds(fn: Callable[[int], object]) -> List:
    """Run picklable ``fn(seed)`` per replica seed, pool-backed.

    Results come back in seed order; with ``REPRO_WORKERS=1`` this is
    exactly the legacy ``[fn(seed) for seed in seeds()]`` loop.
    """
    from repro.experiments.parallel import map_seeds

    return map_seeds(fn, seeds())


def mean_over_seeds(fn: Callable[[int], float]) -> float:
    return mean([float(v) for v in map_over_seeds(fn)])


def emit(report: FigureReport) -> str:
    """Print the report and persist it for EXPERIMENTS.md."""
    text = report.render()
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = report.figure.lower().replace(" ", "_")
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
    return text


#: Version of the ``BENCH_*.json`` result schema.  v1 records wall time
#: and -- when the caller passes the simulator's event counter --
#: derived events/sec, so successive PRs leave a comparable perf
#: trajectory under ``benchmarks/results/``.  v2 adds the optional
#: ``samples_to_target`` field for search benchmarks (evaluations until
#: the running best cost first enters the target band -- the optimizer
#: tournament's convergence-speed metric).
BENCH_SCHEMA_VERSION = 2


def record_bench(
    name: str,
    wall_time_s: float,
    events_executed: Optional[int] = None,
    extra: Optional[dict] = None,
    samples_to_target: Optional[int] = None,
) -> pathlib.Path:
    """Persist one measurement as ``benchmarks/results/BENCH_<name>.json``.

    ``events_executed`` is the simulator's diagnostic counter for the
    measured run; events/sec is derived from it so throughput survives
    alongside raw wall time (wall time alone is meaningless across
    machines, events/sec at least normalises per-event cost).
    ``samples_to_target`` carries a search benchmark's convergence
    speed: cost evaluations spent before reaching the target band
    (``None`` = not a search benchmark, or never reached).
    """
    events_per_sec = None
    if events_executed is not None and wall_time_s > 0:
        events_per_sec = round(events_executed / wall_time_s, 1)
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": name,
        "wall_time_s": round(float(wall_time_s), 6),
        "events_executed": events_executed,
        "events_per_sec": events_per_sec,
        "samples_to_target": samples_to_target,
    }
    if extra:
        payload.update(extra)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations; repeating them only
    multiplies wall time without adding information.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
