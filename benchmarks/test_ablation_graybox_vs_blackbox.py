"""Ablation X2: gray-box rules on vs off (pure black-box hill climbing).

Section 5 claims the tuning rules "improve search quality and reduce
convergence iterations".  Same aggressive search, same budget, with and
without the Section-6 bound-tightening rules; compare the quality of
the recommended configuration on a re-run.
"""

import numpy as np

from benchmarks.bench_common import emit, mean, run_once, seeds
from repro.core.tuner import OnlineTuner, TunerSettings, TuningStrategy
from repro.experiments.expedited import run_default, run_with_config
from repro.experiments.harness import SimCluster
from repro.experiments.reporting import FigureReport
from repro.sim.rng import derive_seed
from repro.workloads.suite import make_job_spec, terasort_case


def tune(case, seed, use_rules):
    sc = SimCluster(seed=seed)
    spec = make_job_spec(case, sc.hdfs)
    tuner = OnlineTuner(
        TuningStrategy.AGGRESSIVE,
        settings=TunerSettings(use_knowledge_base=False),
        rng=np.random.default_rng(derive_seed(seed, "ablation", use_rules)),
        rules=None if use_rules else [],
    )
    am = tuner.submit(sc, spec)
    sc.sim.run_until_complete(am.completion)
    return tuner.recommended_config(spec.job_id)


def test_ablation_graybox_vs_blackbox(benchmark):
    case = terasort_case(60.0)

    def experiment():
        rows = {"Default": [], "Black-box": [], "Gray-box (MRONLINE)": []}
        for seed in seeds():
            rows["Default"].append(run_default(case, seed).duration)
            for label, use_rules in (
                ("Black-box", False),
                ("Gray-box (MRONLINE)", True),
            ):
                config = tune(case, seed, use_rules)
                rows[label].append(run_with_config(case, seed, config).duration)
        return rows

    rows = run_once(benchmark, experiment)
    report = FigureReport(
        "Ablation X2",
        "Recommended-config job time: gray-box vs black-box search",
        ["Terasort 60GB"],
    )
    for label, values in rows.items():
        report.add_series(label, [mean(values)])
    emit(report)

    gray = report.series["Gray-box (MRONLINE)"][0]
    black = report.series["Black-box"][0]
    default = report.series["Default"][0]
    # The rules must not hurt, and gray-box must beat the default.
    assert gray <= black * 1.03
    assert gray < default
