"""Tests for the comparison baselines."""

import numpy as np
import pytest

from repro.baselines.default_config import default_configuration
from repro.baselines.gunther import GeneticTuner, GuntherSettings
from repro.baselines.offline_guide import offline_guide_config
from repro.baselines.random_search import random_configurations, random_points
from repro.core import parameters as P
from repro.core.configuration import is_feasible
from repro.workloads.suite import case_by_name, table3_cases


class TestDefault:
    def test_is_table2(self):
        cfg = default_configuration()
        assert cfg[P.IO_SORT_MB] == 100
        assert cfg[P.SHUFFLE_PARALLELCOPIES] == 5


class TestOfflineGuide:
    @pytest.mark.parametrize("case", table3_cases(), ids=lambda c: c.name)
    def test_feasible_for_every_case(self, case):
        assert is_feasible(offline_guide_config(case))

    def test_terasort_buffer_covers_map_output(self):
        cfg = offline_guide_config(case_by_name("terasort"))
        # 128 MiB map output: the guide sizes the buffer above it.
        assert cfg[P.IO_SORT_MB] >= 134

    def test_shuffle_heavy_job_gets_bigger_reducers(self):
        bigram = offline_guide_config(case_by_name("bigram-freebase"))
        grep = offline_guide_config(case_by_name("text-search-freebase"))
        assert bigram[P.REDUCE_MEMORY_MB] > grep[P.REDUCE_MEMORY_MB]

    def test_parallelcopies_scales_with_cluster(self):
        cfg = offline_guide_config(case_by_name("terasort"), num_nodes=30)
        assert cfg[P.SHUFFLE_PARALLELCOPIES] == 30


class TestRandomSearch:
    def test_points_in_unit_cube(self):
        pts = random_points(np.random.default_rng(0), 50, 4)
        assert pts.shape == (50, 4)
        assert (pts >= 0).all() and (pts <= 1).all()

    def test_bounds_respected(self):
        pts = random_points(np.random.default_rng(0), 50, 2, bounds=[(0.4, 0.6), (0, 1)])
        assert (pts[:, 0] >= 0.4).all() and (pts[:, 0] <= 0.6).all()

    def test_configurations_feasible(self):
        for cfg in random_configurations(np.random.default_rng(1), 20):
            assert is_feasible(cfg)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_points(np.random.default_rng(0), 0, 2)


class TestGunther:
    def synthetic_fitness(self):
        """Quadratic bowl over two decoded parameters."""
        target_sort = 400.0
        target_copies = 30.0

        def evaluate(cfg):
            return (
                ((cfg[P.IO_SORT_MB] - target_sort) / 100.0) ** 2
                + ((cfg[P.SHUFFLE_PARALLELCOPIES] - target_copies) / 10.0) ** 2
            )

        return evaluate

    def test_runs_budgeted_evaluations(self):
        st = GuntherSettings(population=6, generations=3)
        tuner = GeneticTuner(
            self.synthetic_fitness(), np.random.default_rng(0), st
        )
        tuner.run()
        assert len(tuner.evaluations) == st.total_runs == 18

    def test_improves_over_generations(self):
        st = GuntherSettings(population=8, generations=5)
        tuner = GeneticTuner(self.synthetic_fitness(), np.random.default_rng(0), st)
        _best_cfg, best_fit = tuner.run()
        first_gen_best = min(v for _c, v in tuner.evaluations[: st.population])
        assert best_fit <= first_gen_best

    def test_best_after_runs_monotone(self):
        tuner = GeneticTuner(
            self.synthetic_fitness(),
            np.random.default_rng(2),
            GuntherSettings(population=6, generations=4),
        )
        tuner.run()
        series = [tuner.best_after_runs(k) for k in range(1, 25)]
        assert all(a >= b for a, b in zip(series, series[1:]))

    def test_best_after_runs_requires_run(self):
        tuner = GeneticTuner(lambda c: 0.0, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            tuner.best_after_runs(5)

    def test_default_settings_in_paper_band(self):
        # Gunther is reported at 20-40 test runs.
        assert 20 <= GuntherSettings().total_runs <= 40

    def test_returned_config_feasible(self):
        tuner = GeneticTuner(
            self.synthetic_fitness(),
            np.random.default_rng(3),
            GuntherSettings(population=4, generations=2),
        )
        best_cfg, _fit = tuner.run()
        assert is_feasible(best_cfg)
