"""Tests for the Starfish-style cost-based baseline."""

import numpy as np
import pytest

from repro.baselines.starfish import (
    AnalyticWhatIfEngine,
    CostBasedOptimizer,
    JobProfile,
    starfish_tune,
)
from repro.core import parameters as P
from repro.core.configuration import Configuration, is_feasible
from repro.experiments.expedited import run_default, run_with_config
from repro.workloads.suite import terasort_case

MB = 1024**2


def small_profile(**over):
    base = dict(
        num_maps=80,
        num_reducers=20,
        map_input_bytes=128 * MB,
        map_output_bytes=134 * MB,
        map_output_records=1_340_000,
        combiner_byte_ratio=1.0,
        combiner_record_ratio=1.0,
        has_combiner=False,
        reduce_input_bytes=500 * MB,
        reduce_output_bytes=500 * MB,
        map_cpu_seconds=7.0,
        reduce_cpu_seconds=20.0,
    )
    base.update(over)
    return JobProfile(**base)


class TestWhatIfEngine:
    def test_bigger_sort_buffer_predicts_faster_maps(self):
        engine = AnalyticWhatIfEngine(small_profile())
        small = engine.map_task_time(Configuration({P.IO_SORT_MB: 100}))
        big = engine.map_task_time(
            Configuration({P.MAP_MEMORY_MB: 1024, P.IO_SORT_MB: 170, P.SORT_SPILL_PERCENT: 0.99})
        )
        assert big < small

    def test_more_parallelcopies_predicts_faster_shuffle(self):
        engine = AnalyticWhatIfEngine(small_profile())
        slow = engine.reduce_task_time(Configuration({P.SHUFFLE_PARALLELCOPIES: 2}))
        fast = engine.reduce_task_time(Configuration({P.SHUFFLE_PARALLELCOPIES: 20}))
        assert fast < slow

    def test_bigger_containers_predict_fewer_slots(self):
        engine = AnalyticWhatIfEngine(small_profile(num_maps=400))
        lean = engine.predict(Configuration())
        bloated = engine.predict(Configuration({P.MAP_MEMORY_MB: 4096}))
        assert bloated > lean

    def test_prediction_positive_for_defaults(self):
        engine = AnalyticWhatIfEngine(small_profile())
        assert engine.predict(Configuration()) > 0

    def test_profile_from_result(self):
        result = run_default(terasort_case(4.0), seed=1)
        profile = JobProfile.from_result(result)
        assert profile.num_maps == 32
        assert profile.num_reducers == 8
        assert profile.map_output_bytes == pytest.approx(134 * MB, rel=0.1)

    def test_profile_requires_tasks(self):
        result = run_default(terasort_case(2.0), seed=1)
        result.task_stats.clear()
        with pytest.raises(ValueError):
            JobProfile.from_result(result)


class TestOptimizer:
    def test_recommendation_feasible_and_better_than_default(self):
        engine = AnalyticWhatIfEngine(small_profile(num_maps=400, num_reducers=100))
        opt = CostBasedOptimizer(engine, np.random.default_rng(0), budget=500)
        rec = opt.optimize()
        assert is_feasible(rec.config)
        assert rec.predicted_time <= engine.predict(Configuration())
        assert rec.evaluations <= 520

    def test_deterministic_under_seed(self):
        engine = AnalyticWhatIfEngine(small_profile())
        a = CostBasedOptimizer(engine, np.random.default_rng(3), budget=300).optimize()
        b = CostBasedOptimizer(engine, np.random.default_rng(3), budget=300).optimize()
        assert a.config == b.config


class TestEndToEnd:
    def test_starfish_improves_over_default_on_simulator(self):
        """Profile one run, optimize analytically, validate on the sim.

        The analytic engine ignores contention, so it won't match
        MRONLINE -- but it must still beat the default configuration.
        """
        case = terasort_case(10.0)
        profiling = run_default(case, seed=2)
        rec = starfish_tune(profiling, np.random.default_rng(2), budget=600)
        validated = run_with_config(case, 2, rec.config)
        assert validated.succeeded
        assert validated.duration < profiling.duration * 1.02
