"""Tests for HDFS placement, namespace, and I/O costing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.node import MB
from repro.cluster.topology import Cluster, ClusterSpec
from repro.hdfs.block import Block, BlockLocation
from repro.hdfs.filesystem import DEFAULT_BLOCK_SIZE, HdfsFileSystem
from repro.sim import Simulator


def make_fs(num_slaves=6, racks=(3, 3), replication=3, seed=0):
    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec(num_slaves=num_slaves, racks=racks))
    fs = HdfsFileSystem(cluster, replication=replication, rng=np.random.default_rng(seed))
    return sim, cluster, fs


class TestBlock:
    def test_block_requires_location(self):
        with pytest.raises(ValueError):
            Block(100, [])

    def test_block_requires_positive_size(self):
        with pytest.raises(ValueError):
            Block(0, [BlockLocation(0, 0)])

    def test_hosted_on(self):
        b = Block(100, [BlockLocation(1, 0), BlockLocation(4, 1)])
        assert b.hosted_on(1) and b.hosted_on(4)
        assert not b.hosted_on(2)

    def test_racks_sorted_unique(self):
        b = Block(100, [BlockLocation(1, 1), BlockLocation(4, 0), BlockLocation(5, 1)])
        assert b.racks() == (0, 1)


class TestNamespace:
    def test_create_and_get(self):
        _sim, _c, fs = make_fs()
        f = fs.create_file("/data/x", 300 * MB)
        assert fs.exists("/data/x")
        assert fs.get("/data/x") is f

    def test_missing_file_raises(self):
        _sim, _c, fs = make_fs()
        with pytest.raises(FileNotFoundError):
            fs.get("/nope")

    def test_duplicate_create_rejected(self):
        _sim, _c, fs = make_fs()
        fs.create_file("/x", 10)
        with pytest.raises(FileExistsError):
            fs.create_file("/x", 10)

    def test_delete(self):
        _sim, _c, fs = make_fs()
        fs.create_file("/x", 10)
        fs.delete("/x")
        assert not fs.exists("/x")

    def test_block_count_and_sizes(self):
        _sim, _c, fs = make_fs()
        f = fs.create_file("/x", int(2.5 * DEFAULT_BLOCK_SIZE))
        assert len(f.blocks) == 3
        assert f.blocks[0].size_bytes == DEFAULT_BLOCK_SIZE
        assert f.blocks[2].size_bytes == DEFAULT_BLOCK_SIZE // 2
        assert f.size_bytes == int(2.5 * DEFAULT_BLOCK_SIZE)

    def test_list_files_sorted(self):
        _sim, _c, fs = make_fs()
        fs.create_file("/b", 1)
        fs.create_file("/a", 1)
        assert fs.list_files() == ["/a", "/b"]


class TestPlacement:
    def test_replica_count(self):
        _sim, _c, fs = make_fs(replication=3)
        f = fs.create_file("/x", DEFAULT_BLOCK_SIZE * 10)
        for b in f.blocks:
            assert len(b.locations) == 3

    def test_replicas_on_distinct_nodes(self):
        _sim, _c, fs = make_fs(replication=3)
        f = fs.create_file("/x", DEFAULT_BLOCK_SIZE * 20)
        for b in f.blocks:
            nodes = [loc.node_id for loc in b.locations]
            assert len(set(nodes)) == len(nodes)

    def test_rack_aware_spread(self):
        # With 3 replicas across 2 racks, every block must span both racks.
        _sim, _c, fs = make_fs(replication=3)
        f = fs.create_file("/x", DEFAULT_BLOCK_SIZE * 20)
        for b in f.blocks:
            assert len(b.racks()) == 2

    def test_writer_gets_first_replica(self):
        _sim, cluster, fs = make_fs()
        writer = cluster.nodes[2]
        f = fs.create_file("/x", DEFAULT_BLOCK_SIZE * 5, writer=writer)
        for b in f.blocks:
            assert b.locations[0].node_id == writer.node_id

    def test_replication_capped_at_cluster_size(self):
        _sim, _c, fs = make_fs(num_slaves=2, racks=(1, 1), replication=3)
        f = fs.create_file("/x", DEFAULT_BLOCK_SIZE)
        assert len(f.blocks[0].locations) == 2

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_placement_invariants_hold_for_any_seed(self, seed):
        _sim, _c, fs = make_fs(seed=seed)
        f = fs.create_file("/x", DEFAULT_BLOCK_SIZE * 4)
        for b in f.blocks:
            nodes = [loc.node_id for loc in b.locations]
            assert len(set(nodes)) == 3
            assert len(b.racks()) == 2


class TestIoCosting:
    def test_local_read_uses_reader_disk(self):
        sim, cluster, fs = make_fs()
        writer = cluster.nodes[0]
        f = fs.create_file("/x", 110 * MB, writer=writer)
        done = fs.read_block(f.blocks[0], writer)
        sim.run_until_complete(done)
        assert sim.now == pytest.approx(1.0)  # 110 MB at 110 MB/s

    def test_remote_read_charges_network(self):
        sim, cluster, fs = make_fs()
        writer = cluster.nodes[0]
        f = fs.create_file("/x", 117 * MB, writer=writer)
        block = f.blocks[0]
        reader = next(
            n for n in cluster.nodes if not block.hosted_on(n.node_id)
        )
        done = fs.read_block(block, reader)
        sim.run_until_complete(done)
        assert sim.now > 0.9  # bounded by ~1 Gbps NIC

    def test_write_file_registers_and_costs(self):
        sim, cluster, fs = make_fs()
        writer = cluster.nodes[0]
        done = fs.write_file("/out", 90 * MB, writer)
        sim.run_until_complete(done)
        assert fs.exists("/out")
        assert sim.now >= 1.0  # 90 MB at 90 MB/s local write minimum
